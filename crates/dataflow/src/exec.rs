//! Plan execution as simulated MapReduce jobs.
//!
//! Every shuffle boundary (GROUP, JOIN, ORDER, DISTINCT) is one MapReduce
//! job. Map-task counts come from input blocks ("tens of thousands of
//! mappers", §4.1), shuffle volume from serialized tuple sizes ("the early
//! projection and filtering keeps the amount of data shuffling … to a
//! reasonable amount", §4.1), and a [`CostModel`] converts the counts into
//! estimated cluster milliseconds, charging Hadoop's "relatively high
//! \[task\] startup costs" (§4.2).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use uli_obs::{Counter, Gauge, Registry};
use uli_warehouse::{
    sniff_columnar, ColumnarFile, FileBlocks, MemoryTracker, Parallelism, ScanPool, Warehouse,
    ZoneMapPruner,
};

use crate::batch::scan_group;
use crate::error::{DataflowError, DataflowResult};
use crate::expr::Expr;
use crate::loader::{BlockPruner, Loader};
use crate::plan::{Agg, Plan, PlanNode, SortOrder};
use crate::pushdown::{
    collect_columns, expr_has_udf, total_boolean, zone_constraints, Pushdown, ScanSpec, ZoneColumn,
};
use crate::spill::{AggSpiller, RowOrder, RowSpillSorter};
use crate::udf::AggState;
use crate::value::{tuple_wire_size, Tuple, Value};

/// Counters for one executed query (possibly several chained MR jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobStats {
    /// MapReduce jobs launched.
    pub mr_jobs: u64,
    /// Map tasks across all jobs — the paper's "mappers spawned".
    pub map_tasks: u64,
    /// Reduce tasks across all jobs.
    pub reduce_tasks: u64,
    /// Records read from the warehouse.
    pub input_records: u64,
    /// Blocks read from the warehouse (input splits).
    pub input_blocks: u64,
    /// Blocks skipped via index pushdown.
    pub blocks_skipped: u64,
    /// Compressed bytes read.
    pub input_bytes_compressed: u64,
    /// Uncompressed bytes processed by mappers.
    pub input_bytes_uncompressed: u64,
    /// Records entering the shuffle after any combiner.
    pub shuffle_records: u64,
    /// Bytes entering the shuffle.
    pub shuffle_bytes: u64,
    /// Rows produced by the query.
    pub output_records: u64,
    /// Records decoded then dropped by a pushed-down predicate before any
    /// tuple reached the plan.
    pub records_skipped_by_predicate: u64,
    /// Fields a lazy loader skipped without materializing (projection
    /// pushdown).
    pub fields_skipped: u64,
    /// Run files spilled by budgeted operators (0 without a memory budget).
    pub spill_runs: u64,
    /// Bytes written to spill run files.
    pub spill_bytes: u64,
    /// Peak operator-buffer bytes, in the deterministic wire-size cost
    /// currency (0 without a memory budget).
    pub mem_high_water_bytes: u64,
}

/// Cluster constants turning [`JobStats`] into estimated milliseconds.
///
/// Defaults model a few-hundred-node 2012 cluster coarsely; the point of the
/// model is *relative* cost (raw logs vs session sequences), not absolute
/// accuracy.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Concurrent task slots available.
    pub slots: u64,
    /// Startup cost charged per task (JVM spawn, scheduling, jobtracker RPC).
    pub task_startup_ms: f64,
    /// Per-slot scan throughput over uncompressed data.
    pub scan_mb_per_s: f64,
    /// Aggregate shuffle throughput of the cluster.
    pub shuffle_mb_per_s: f64,
    /// Fixed per-job submission latency.
    pub job_submit_ms: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            slots: 200,
            task_startup_ms: 1_500.0,
            scan_mb_per_s: 60.0,
            shuffle_mb_per_s: 2_000.0,
            // Scaled down from real 2012 jobtracker latency (~10 s) so the
            // per-job constant does not drown the task/scan terms at the
            // laptop data scales the simulation runs at.
            job_submit_ms: 500.0,
        }
    }
}

impl CostModel {
    /// Estimated wall-clock milliseconds for the measured job stats.
    pub fn estimate_ms(&self, s: &JobStats) -> f64 {
        let slots = self.slots.max(1) as f64;
        let tasks = (s.map_tasks + s.reduce_tasks) as f64;
        let startup = tasks * self.task_startup_ms / slots;
        let scan_mb = s.input_bytes_uncompressed as f64 / (1024.0 * 1024.0);
        let scan = scan_mb / (self.scan_mb_per_s * slots) * 1_000.0;
        let shuffle_mb = s.shuffle_bytes as f64 / (1024.0 * 1024.0);
        let shuffle = shuffle_mb / self.shuffle_mb_per_s * 1_000.0;
        let submit = s.mr_jobs as f64 * self.job_submit_ms;
        startup + scan + shuffle + submit
    }
}

/// A completed query: rows plus accounting.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub schema: Vec<String>,
    /// Result rows.
    pub rows: Vec<Tuple>,
    /// Execution counters.
    pub stats: JobStats,
    /// Cost-model estimate for the counters.
    pub estimated_cluster_ms: f64,
}

/// Pending (not yet charged) map-phase input of an intermediate result.
#[derive(Debug, Clone, Copy, Default)]
struct MapInput {
    tasks: u64,
    bytes: u64,
}

/// Plan-stage kinds, in the fixed order their per-stage counters register.
const STAGE_KINDS: [&str; 11] = [
    "load",
    "values",
    "filter",
    "foreach",
    "group_by",
    "aggregate",
    "join",
    "order_by",
    "distinct",
    "union",
    "limit",
];

fn stage_kind(node: &PlanNode) -> &'static str {
    match node {
        PlanNode::Load { .. } => "load",
        PlanNode::Values { .. } => "values",
        PlanNode::Filter { .. } => "filter",
        PlanNode::Foreach { .. } => "foreach",
        PlanNode::GroupBy { .. } => "group_by",
        PlanNode::Aggregate { .. } => "aggregate",
        PlanNode::Join { .. } => "join",
        PlanNode::OrderBy { .. } => "order_by",
        PlanNode::Distinct { .. } => "distinct",
        PlanNode::Union { .. } => "union",
        PlanNode::Limit { .. } => "limit",
    }
}

/// Registry handles behind [`Engine::with_obs`].
///
/// [`JobStats`] remains the per-query result struct; these counters are
/// *mirrors* fed from the same `JobStats` values at the end of every query,
/// so the registry totals are sums over queries of the struct the tests
/// already pin — the two views cannot diverge. Per-stage rows in/out come
/// from the executor itself (one span + one counter update per visited plan
/// node), and all handles register at `with_obs` time in a fixed order so
/// snapshot order never depends on which plans later run.
struct EngineObs {
    registry: Registry,
    queries: Counter,
    mr_jobs: Counter,
    map_tasks: Counter,
    reduce_tasks: Counter,
    input_records: Counter,
    input_blocks: Counter,
    blocks_skipped: Counter,
    input_bytes_compressed: Counter,
    input_bytes_uncompressed: Counter,
    shuffle_records: Counter,
    shuffle_bytes: Counter,
    output_records: Counter,
    records_skipped_by_predicate: Counter,
    fields_skipped: Counter,
    spill_runs: Counter,
    spill_bytes: Counter,
    /// Raise-only mirror of the per-query peak operator-buffer bytes, so
    /// the exported value is the max over all queries this engine ran.
    memory_high_water_bytes: Gauge,
    rows_in: BTreeMap<&'static str, Counter>,
    rows_out: BTreeMap<&'static str, Counter>,
    /// Rows returned by completed child stages of the node currently
    /// executing. Execution of the plan tree is serial (worker threads live
    /// below [`ScanPool`], inside a stage), so a single cell suffices; it is
    /// atomic only because `Engine` must stay `Sync`.
    child_rows: AtomicU64,
}

impl EngineObs {
    fn new(registry: &Registry) -> EngineObs {
        let c = |name: &str| registry.counter("dataflow", name);
        let queries = c("queries");
        let mr_jobs = c("mr_jobs");
        let map_tasks = c("map_tasks");
        let reduce_tasks = c("reduce_tasks");
        let input_records = c("input_records");
        let input_blocks = c("input_blocks");
        let blocks_skipped = c("blocks_skipped");
        let input_bytes_compressed = c("input_bytes_compressed");
        let input_bytes_uncompressed = c("input_bytes_uncompressed");
        let shuffle_records = c("shuffle_records");
        let shuffle_bytes = c("shuffle_bytes");
        let output_records = c("output_records");
        let records_skipped_by_predicate = c("records_skipped_by_predicate");
        let fields_skipped = c("fields_skipped");
        let spill_runs = c("spill_runs");
        let spill_bytes = c("spill_bytes");
        let memory_high_water_bytes = registry.gauge("dataflow", "memory_high_water_bytes");
        let mut rows_in = BTreeMap::new();
        let mut rows_out = BTreeMap::new();
        for kind in STAGE_KINDS {
            rows_in.insert(
                kind,
                registry.counter_labeled("dataflow", "stage_rows_in", &[("stage", kind)]),
            );
            rows_out.insert(
                kind,
                registry.counter_labeled("dataflow", "stage_rows_out", &[("stage", kind)]),
            );
        }
        EngineObs {
            registry: registry.clone(),
            queries,
            mr_jobs,
            map_tasks,
            reduce_tasks,
            input_records,
            input_blocks,
            blocks_skipped,
            input_bytes_compressed,
            input_bytes_uncompressed,
            shuffle_records,
            shuffle_bytes,
            output_records,
            records_skipped_by_predicate,
            fields_skipped,
            spill_runs,
            spill_bytes,
            memory_high_water_bytes,
            rows_in,
            rows_out,
            child_rows: AtomicU64::new(0),
        }
    }

    fn mirror(&self, s: &JobStats) {
        self.queries.inc();
        self.mr_jobs.add(s.mr_jobs);
        self.map_tasks.add(s.map_tasks);
        self.reduce_tasks.add(s.reduce_tasks);
        self.input_records.add(s.input_records);
        self.input_blocks.add(s.input_blocks);
        self.blocks_skipped.add(s.blocks_skipped);
        self.input_bytes_compressed.add(s.input_bytes_compressed);
        self.input_bytes_uncompressed
            .add(s.input_bytes_uncompressed);
        self.shuffle_records.add(s.shuffle_records);
        self.shuffle_bytes.add(s.shuffle_bytes);
        self.output_records.add(s.output_records);
        self.records_skipped_by_predicate
            .add(s.records_skipped_by_predicate);
        self.fields_skipped.add(s.fields_skipped);
        self.spill_runs.add(s.spill_runs);
        self.spill_bytes.add(s.spill_bytes);
        self.memory_high_water_bytes
            .raise(s.mem_high_water_bytes.min(i64::MAX as u64) as i64);
    }
}

/// The query engine: a warehouse plus a cost model.
pub struct Engine {
    warehouse: Warehouse,
    cost: CostModel,
    /// Worker threads for the map phase (LOAD → FILTER → FOREACH chains run
    /// per-block on a [`ScanPool`]); results are byte-identical to serial.
    parallelism: Parallelism,
    /// Which scan-pushdown layers the planner applies; results are
    /// byte-identical to the eager path at every setting.
    pushdown: Pushdown,
    /// Records per simulated reduce task.
    reduce_keys_per_task: u64,
    /// Operator memory budget in cost-model bytes; `None` = unbounded.
    /// When set, ORDER/GROUP/DISTINCT/aggregation spill to warehouse run
    /// files instead of growing beyond the budget.
    mem_budget: Option<u64>,
    /// Registry-backed telemetry, when attached.
    obs: Option<EngineObs>,
}

impl Engine {
    /// Engine with the default cost model and host-default parallelism.
    pub fn new(warehouse: Warehouse) -> Self {
        Engine {
            warehouse,
            cost: CostModel::default(),
            parallelism: Parallelism::default(),
            pushdown: Pushdown::default(),
            reduce_keys_per_task: 1 << 20,
            mem_budget: None,
            obs: None,
        }
    }

    /// Engine with a custom cost model.
    pub fn with_cost_model(warehouse: Warehouse, cost: CostModel) -> Self {
        Engine {
            warehouse,
            cost,
            parallelism: Parallelism::default(),
            pushdown: Pushdown::default(),
            reduce_keys_per_task: 1 << 20,
            mem_budget: None,
            obs: None,
        }
    }

    /// Caps operator buffer memory (in deterministic cost-model bytes).
    /// Budgeted operators spill sorted run files to the warehouse and
    /// k-way merge them back, producing rows byte-identical to the
    /// unbounded path at any budget. The budget must fit at least one
    /// entry (one row, or one group's aggregate states).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// The configured memory budget, if any.
    pub fn mem_budget(&self) -> Option<u64> {
        self.mem_budget
    }

    /// Attaches registry-backed telemetry under the `dataflow` component:
    /// cumulative [`JobStats`] mirrors, per-stage `stage_rows_in`/`_out`
    /// counters, and one span per executed plan stage. All handles register
    /// here, in a fixed order, so snapshot order never depends on the plans
    /// that later run.
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        self.obs = Some(EngineObs::new(registry));
        self
    }

    /// Sets the map-phase worker count. `Parallelism::serial()` restores the
    /// original single-threaded execution path exactly.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the pushdown configuration. `Pushdown::disabled()` restores the
    /// eager scan path exactly.
    pub fn with_pushdown(mut self, pushdown: Pushdown) -> Self {
        self.pushdown = pushdown;
        self
    }

    /// The configured map-phase parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The configured pushdown layers.
    pub fn pushdown(&self) -> Pushdown {
        self.pushdown
    }

    /// The warehouse this engine scans.
    pub fn warehouse(&self) -> &Warehouse {
        &self.warehouse
    }

    /// Executes a plan.
    pub fn run(&self, plan: &Plan) -> DataflowResult<QueryResult> {
        let mut stats = JobStats::default();
        let _query_span = self.obs.as_ref().map(|o| {
            o.child_rows.store(0, Ordering::Relaxed);
            o.registry.span("dataflow", "query")
        });
        // Fresh tracker per query: spill counters and the high-water mark
        // are per-query quantities (mirrored cumulatively by EngineObs).
        let mem = match self.mem_budget {
            Some(b) => MemoryTracker::with_budget(b),
            None => MemoryTracker::unbounded(),
        };
        let (rows, pending) = self.exec(plan, &mem, &mut stats)?;
        stats.spill_runs = mem.spill_runs();
        stats.spill_bytes = mem.spill_bytes();
        stats.mem_high_water_bytes = mem.high_water();
        // A plan that scanned data but never shuffled is a map-only job.
        if pending.tasks > 0 && stats.mr_jobs == 0 {
            stats.mr_jobs = 1;
            stats.map_tasks += pending.tasks;
        }
        stats.output_records = rows.len() as u64;
        if let Some(obs) = &self.obs {
            obs.mirror(&stats);
        }
        let estimated_cluster_ms = self.cost.estimate_ms(&stats);
        Ok(QueryResult {
            schema: plan.schema().to_vec(),
            rows,
            stats,
            estimated_cluster_ms,
        })
    }

    /// Charges a shuffle job consuming `input` map input.
    fn charge_shuffle(
        &self,
        stats: &mut JobStats,
        input: MapInput,
        shuffle_records: u64,
        shuffle_bytes: u64,
        groups: u64,
    ) -> MapInput {
        stats.mr_jobs += 1;
        stats.map_tasks += input.tasks.max(1);
        let reduce_tasks = groups.div_ceil(self.reduce_keys_per_task).max(1);
        stats.reduce_tasks += reduce_tasks;
        stats.shuffle_records += shuffle_records;
        stats.shuffle_bytes += shuffle_bytes;
        MapInput {
            tasks: reduce_tasks,
            bytes: shuffle_bytes,
        }
    }

    /// Runs a map chain per block on the scan pool, applying `per_block` to
    /// each block's mapped rows. Returns block results in block order plus
    /// the pending map input, and charges `stats` from the per-handle scan
    /// counters (exact even while other scans hit the same warehouse).
    fn exec_chain_blocks<T: Send>(
        &self,
        chain: &MapChain<'_>,
        stats: &mut JobStats,
        per_block: impl Fn(Vec<Tuple>) -> DataflowResult<T> + Sync,
    ) -> DataflowResult<(Vec<T>, MapInput)> {
        let files = self.warehouse.list_files_recursive(chain.dir)?;
        let mut handles: Vec<ScanHandle> = Vec::with_capacity(files.len());
        // (handle index, block/group index), in the serial scan's visit
        // order. Columnar files contribute one work unit per row group.
        let mut work: Vec<(usize, usize)> = Vec::new();
        let codec = chain.loader.columnar();
        for file in &files {
            if codec.is_some() && sniff_columnar(&self.warehouse, file)?.is_some() {
                let handle = ColumnarFile::open(&self.warehouse, file)?;
                if handle.columns() != chain.spec.width {
                    return Err(DataflowError::MalformedRecord {
                        loader: chain.loader.name(),
                    });
                }
                let hi = handles.len();
                // Block pruners index row blocks, which columnar files do
                // not have; zone maps are the columnar pruning layer.
                for g in 0..handle.group_count() {
                    if let Some(zone) = &chain.zone {
                        if !zone.keep(handle.zone_map(g).as_ref()) {
                            handle.skip_group(g);
                            continue;
                        }
                    }
                    work.push((hi, g));
                }
                handles.push(ScanHandle::Col(handle));
                continue;
            }
            let handle = self.warehouse.open_blocks(file)?;
            let blocks = handle.block_count();
            let mask = chain
                .pruner
                .as_ref()
                .and_then(|p| p.prune(&self.warehouse, file, blocks));
            if let Some(mask) = &mask {
                assert_eq!(mask.len(), blocks, "filter length mismatch");
            }
            let hi = handles.len();
            for bi in 0..blocks {
                // A block excluded by either pruner counts as skipped exactly
                // once and is never decompressed (or served from cache).
                if !mask.as_ref().is_none_or(|m| m[bi]) {
                    handle.skip_block(bi);
                    continue;
                }
                if let Some(zone) = &chain.zone {
                    if !zone.keep(handle.zone_map(bi).as_ref()) {
                        handle.skip_block(bi);
                        continue;
                    }
                }
                work.push((hi, bi));
            }
            handles.push(ScanHandle::Row(handle));
        }
        let results = ScanPool::new(self.parallelism).map(work, |_, (hi, bi)| {
            let handle = match &handles[hi] {
                ScanHandle::Row(handle) => handle,
                ScanHandle::Col(file) => {
                    // Vectorized scan: one batch per row group, predicates
                    // over whole columns, selection mask in place of the
                    // per-record admit loop. The reader already charged
                    // `fields_skipped` for masked columns.
                    let codec = codec.expect("columnar handles require a codec");
                    let (rows, records_skipped) = scan_group(file, bi, codec, &chain.spec)?;
                    file.charge_pushdown(records_skipped, 0);
                    return per_block(chain.apply_ops(rows)?);
                }
            };
            // Borrowing visit: the loader decodes each record in place, so
            // the scan never pays the one-Vec-per-record copy that
            // `read_block` charges to `alloc_bytes`.
            let mut rows = Vec::with_capacity(handle.block_records(bi) as usize);
            let mut records_skipped = 0u64;
            let mut fields_skipped = 0u64;
            let mut scan_err: Option<DataflowError> = None;
            handle.for_each_record(bi, |record| {
                if scan_err.is_some() {
                    return;
                }
                match chain.loader.scan(record, &chain.spec) {
                    Ok(outcome) => {
                        fields_skipped += outcome.fields_skipped;
                        if outcome.skipped_by_predicate {
                            records_skipped += 1;
                        }
                        if let Some(tuple) = outcome.tuple {
                            rows.push(tuple);
                        }
                    }
                    Err(e) => scan_err = Some(e),
                }
            })?;
            if let Some(e) = scan_err {
                return Err(e);
            }
            handle.charge_pushdown(records_skipped, fields_skipped);
            per_block(chain.apply_ops(rows)?)
        });
        // First error in block order, matching what a serial scan surfaces.
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        let mut delta = uli_warehouse::ScanStats::default();
        for handle in &handles {
            let local = match handle {
                ScanHandle::Row(h) => h.local_stats(),
                ScanHandle::Col(f) => f.local_stats(),
            };
            delta.records_read += local.records_read;
            delta.blocks_read += local.blocks_read;
            delta.blocks_skipped += local.blocks_skipped;
            delta.compressed_bytes_read += local.compressed_bytes_read;
            delta.uncompressed_bytes_read += local.uncompressed_bytes_read;
            delta.records_skipped_by_predicate += local.records_skipped_by_predicate;
            delta.fields_skipped += local.fields_skipped;
        }
        stats.input_records += delta.records_read;
        stats.input_blocks += delta.blocks_read;
        stats.blocks_skipped += delta.blocks_skipped;
        stats.input_bytes_compressed += delta.compressed_bytes_read;
        stats.input_bytes_uncompressed += delta.uncompressed_bytes_read;
        stats.records_skipped_by_predicate += delta.records_skipped_by_predicate;
        stats.fields_skipped += delta.fields_skipped;
        Ok((
            out,
            MapInput {
                tasks: delta.blocks_read,
                bytes: delta.uncompressed_bytes_read,
            },
        ))
    }

    /// Parallel map phase feeding an algebraic aggregate: each block's rows
    /// collapse into per-group partial [`AggState`]s map-side, and partials
    /// merge at the shuffle boundary in block order. `shuffle_records` is
    /// the *actual* combiner output — what really crosses the shuffle —
    /// rather than the serial path's upper-bound estimate.
    fn exec_parallel_aggregate(
        &self,
        chain: &MapChain<'_>,
        keys: &[usize],
        aggs: &[Agg],
        mem: &MemoryTracker,
        stats: &mut JobStats,
    ) -> DataflowResult<(Vec<Tuple>, MapInput)> {
        let (partials, pending) = self.exec_chain_blocks(chain, stats, |rows| {
            let bytes: u64 = rows.iter().map(|t| tuple_wire_size(t)).sum();
            let groups = accumulate_groups(&rows, keys, aggs)?;
            Ok((rows.len() as u64, bytes, groups))
        })?;
        let mut rows_in = 0u64;
        let mut bytes_in = 0u64;
        let mut combiner_records = 0u64;
        let out = if mem.budget().is_some() {
            // Bounded-memory combine: the merged partial map spills
            // key-sorted runs; block order is preserved (partials arrive in
            // block order, runs merge earliest-first).
            let mut spiller = AggSpiller::new(self.warehouse.clone(), mem.clone(), aggs);
            for (n, bytes, partial) in partials {
                rows_in += n;
                bytes_in += bytes;
                combiner_records += partial.len() as u64;
                for (key, states) in partial {
                    spiller.merge_partial(key, states)?;
                }
            }
            spiller.finish(keys.is_empty())?
        } else {
            let mut merged: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
            for (n, bytes, partial) in partials {
                rows_in += n;
                bytes_in += bytes;
                combiner_records += partial.len() as u64;
                for (key, states) in partial {
                    match merged.entry(key) {
                        std::collections::btree_map::Entry::Vacant(slot) => {
                            slot.insert(states);
                        }
                        std::collections::btree_map::Entry::Occupied(mut slot) => {
                            for (acc, state) in slot.get_mut().iter_mut().zip(states) {
                                acc.merge(state)?;
                            }
                        }
                    }
                }
            }
            finish_groups(merged, keys, aggs)
        };
        let n_groups = out.len() as u64;
        let avg_record = bytes_in.checked_div(rows_in).unwrap_or(0);
        let shuffle_bytes = combiner_records * avg_record.max(8);
        let next = self.charge_shuffle(stats, pending, combiner_records, shuffle_bytes, n_groups);
        Ok((out, next))
    }

    /// Executes one plan node, with per-stage telemetry when attached: a
    /// `dataflow/<kind>` span around the node and `stage_rows_in`/`_out`
    /// counter updates. A stage's rows-in is what its child stages returned,
    /// or — for leaves and collapsed map chains, which have no child exec
    /// calls — the records the scan read (predicate-skipped records are
    /// already included in `input_records`).
    fn exec(
        &self,
        plan: &Plan,
        mem: &MemoryTracker,
        stats: &mut JobStats,
    ) -> DataflowResult<(Vec<Tuple>, MapInput)> {
        let Some(obs) = &self.obs else {
            return self.exec_node(plan, mem, stats);
        };
        let kind = stage_kind(&plan.node);
        let _span = obs.registry.span("dataflow", kind);
        let scanned_before = stats.input_records;
        let parent_rows = obs.child_rows.swap(0, Ordering::Relaxed);
        let result = self.exec_node(plan, mem, stats);
        let child_rows = obs.child_rows.load(Ordering::Relaxed);
        if let Ok((rows, _)) = &result {
            let rows_in = if child_rows > 0 {
                child_rows
            } else {
                stats.input_records - scanned_before
            };
            obs.rows_in[kind].add(rows_in);
            obs.rows_out[kind].add(rows.len() as u64);
            obs.child_rows
                .store(parent_rows + rows.len() as u64, Ordering::Relaxed);
        }
        result
    }

    fn exec_node(
        &self,
        plan: &Plan,
        mem: &MemoryTracker,
        stats: &mut JobStats,
    ) -> DataflowResult<(Vec<Tuple>, MapInput)> {
        // A LOAD → FILTER → FOREACH chain is a pure map phase: run it
        // per-block on the scan pool. Block results concatenate in block
        // order, so rows come out exactly as the serial scan produces them.
        // Pushdown routes serial engines through the same path (the pool
        // runs inline at ≤1 worker) so accounting stays worker-invariant.
        if !self.parallelism.is_serial() || self.pushdown.any() {
            if let Some(chain) = MapChain::extract(plan, self.pushdown) {
                let (blocks, pending) = self.exec_chain_blocks(&chain, stats, Ok)?;
                let mut rows = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
                for block_rows in blocks {
                    rows.extend(block_rows);
                }
                return Ok((rows, pending));
            }
        }
        match &plan.node {
            PlanNode::Load {
                dir,
                loader,
                schema,
                pruner,
            } => {
                let before = self.warehouse.stats();
                let mut rows = Vec::new();
                for file in self.warehouse.list_files_recursive(dir)? {
                    // Columnar files scan group by group even on the eager
                    // path, so a pushdown-disabled serial engine still reads
                    // a columnar directory correctly.
                    if let Some(codec) = loader.columnar() {
                        if sniff_columnar(&self.warehouse, &file)?.is_some() {
                            let handle = ColumnarFile::open(&self.warehouse, &file)?;
                            if handle.columns() != schema.len() {
                                return Err(DataflowError::MalformedRecord {
                                    loader: loader.name(),
                                });
                            }
                            let spec = ScanSpec::eager(schema.len());
                            for g in 0..handle.group_count() {
                                let (group_rows, _) = scan_group(&handle, g, codec, &spec)?;
                                rows.extend(group_rows);
                            }
                            continue;
                        }
                    }
                    let mut reader = self.warehouse.open(&file)?;
                    if let Some(pruner) = pruner {
                        if let Some(mask) =
                            pruner.prune(&self.warehouse, &file, reader.block_count())
                        {
                            reader.set_block_filter(mask);
                        }
                    }
                    while let Some(record) = reader.next_record()? {
                        if let Some(tuple) = loader.parse(record)? {
                            if tuple.len() != schema.len() {
                                return Err(DataflowError::MalformedRecord {
                                    loader: loader.name(),
                                });
                            }
                            rows.push(tuple);
                        }
                    }
                }
                let delta = self.warehouse.stats().since(&before);
                stats.input_records += delta.records_read;
                stats.input_blocks += delta.blocks_read;
                stats.blocks_skipped += delta.blocks_skipped;
                stats.input_bytes_compressed += delta.compressed_bytes_read;
                stats.input_bytes_uncompressed += delta.uncompressed_bytes_read;
                let pending = MapInput {
                    tasks: delta.blocks_read,
                    bytes: delta.uncompressed_bytes_read,
                };
                Ok((rows, pending))
            }
            PlanNode::Values { rows, .. } => Ok((rows.clone(), MapInput::default())),
            PlanNode::Filter { input, predicate } => {
                let (rows, pending) = self.exec(input, mem, stats)?;
                let mut out = Vec::with_capacity(rows.len() / 2);
                for row in rows {
                    match predicate.eval(&row)? {
                        Value::Bool(true) => out.push(row),
                        Value::Bool(false) | Value::Null => {}
                        _ => return Err(DataflowError::TypeError { context: "FILTER" }),
                    }
                }
                Ok((out, pending))
            }
            PlanNode::Foreach { input, exprs } => {
                let (rows, pending) = self.exec(input, mem, stats)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut t = Vec::with_capacity(exprs.len());
                    for (_, e) in exprs {
                        t.push(e.eval(&row)?);
                    }
                    out.push(t);
                }
                Ok((out, pending))
            }
            PlanNode::GroupBy { input, keys } => {
                let (rows, pending) = self.exec(input, mem, stats)?;
                let rows_in = rows.len() as u64;
                let bytes_in: u64 = rows.iter().map(|t| tuple_wire_size(t)).sum();
                let out: Vec<Tuple> = if mem.budget().is_some() {
                    // Bounded-memory grouping: external sort on the key
                    // columns (sequence numbers keep insertion order within
                    // a key), then one consecutive-grouping pass. Key order
                    // and bag order match the BTreeMap path exactly.
                    let order = RowOrder::Cols(keys.iter().map(|k| (*k, SortOrder::Asc)).collect());
                    let mut sorter =
                        RowSpillSorter::new(self.warehouse.clone(), mem.clone(), order, "group_by");
                    for row in rows {
                        sorter.push(row)?;
                    }
                    let mut stream = sorter.finish()?;
                    let mut out = Vec::new();
                    let mut cur: Option<(Vec<Value>, Vec<Tuple>)> = None;
                    while let Some(row) = stream.next_row()? {
                        let key: Vec<Value> = keys.iter().map(|k| row[*k].clone()).collect();
                        match &mut cur {
                            Some((k, bag)) if *k == key => bag.push(row),
                            _ => {
                                if let Some((mut k, bag)) = cur.take() {
                                    k.push(Value::Bag(bag));
                                    out.push(k);
                                }
                                cur = Some((key, vec![row]));
                            }
                        }
                    }
                    if let Some((mut k, bag)) = cur.take() {
                        k.push(Value::Bag(bag));
                        out.push(k);
                    }
                    out
                } else {
                    let mut groups: BTreeMap<Vec<Value>, Vec<Tuple>> = BTreeMap::new();
                    for row in rows {
                        let key: Vec<Value> = keys.iter().map(|k| row[*k].clone()).collect();
                        groups.entry(key).or_default().push(row);
                    }
                    // GROUP ALL over an empty input still yields no group
                    // (Pig semantics: the group simply does not exist).
                    groups
                        .into_iter()
                        .map(|(mut key, bag)| {
                            key.push(Value::Bag(bag));
                            key
                        })
                        .collect()
                };
                let n_groups = out.len() as u64;
                // Bags are holistic: every row crosses the shuffle.
                let next = self.charge_shuffle(stats, pending, rows_in, bytes_in, n_groups);
                Ok((out, next))
            }
            PlanNode::Aggregate { input, keys, aggs } => {
                // Algebraic aggregates over a map chain run the whole map
                // phase — scan, filter, project, map-side combine — per
                // block in parallel; per-block partial states merge at the
                // shuffle boundary in block order.
                if (!self.parallelism.is_serial() || self.pushdown.any())
                    && aggs.iter().all(|a| a.func.is_algebraic())
                {
                    if let Some(chain) = MapChain::extract(input, self.pushdown) {
                        return self.exec_parallel_aggregate(&chain, keys, aggs, mem, stats);
                    }
                }
                let (rows, pending) = self.exec(input, mem, stats)?;
                let rows_in = rows.len() as u64;
                let out = if mem.budget().is_some() {
                    // Bounded-memory reduce: the group→state map spills
                    // key-sorted runs; runs merge back in arrival order.
                    let mut spiller = AggSpiller::new(self.warehouse.clone(), mem.clone(), aggs);
                    for row in &rows {
                        let key: Vec<Value> = keys.iter().map(|k| row[*k].clone()).collect();
                        spiller.accumulate_row(key, row)?;
                    }
                    spiller.finish(keys.is_empty())?
                } else {
                    aggregate_rows(&rows, keys, aggs)?
                };
                let n_groups = out.len() as u64;
                // Combiner: algebraic aggregates shuffle at most
                // (groups × map tasks) records; holistic ones shuffle all.
                let algebraic = aggs.iter().all(|a| a.func.is_algebraic());
                let shuffle_records = if algebraic {
                    rows_in.min(n_groups.saturating_mul(pending.tasks.max(1)))
                } else {
                    rows_in
                };
                let bytes_in: u64 = rows.iter().map(|t| tuple_wire_size(t)).sum();
                let avg_record = bytes_in.checked_div(rows_in).unwrap_or(0);
                let shuffle_bytes = shuffle_records * avg_record.max(8);
                let next =
                    self.charge_shuffle(stats, pending, shuffle_records, shuffle_bytes, n_groups);
                Ok((out, next))
            }
            PlanNode::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let (lrows, lpend) = self.exec(left, mem, stats)?;
                let (rrows, rpend) = self.exec(right, mem, stats)?;
                let shuffle_records = (lrows.len() + rrows.len()) as u64;
                let shuffle_bytes: u64 = lrows
                    .iter()
                    .chain(rrows.iter())
                    .map(|t| tuple_wire_size(t))
                    .sum();
                let mut table: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
                for row in &rrows {
                    let key: Vec<Value> = right_keys.iter().map(|k| row[*k].clone()).collect();
                    table.entry(key).or_default().push(row);
                }
                let mut out = Vec::new();
                for lrow in &lrows {
                    let key: Vec<Value> = left_keys.iter().map(|k| lrow[*k].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue; // null keys never join
                    }
                    if let Some(matches) = table.get(&key) {
                        for rrow in matches {
                            let mut joined = lrow.clone();
                            joined.extend(rrow.iter().cloned());
                            out.push(joined);
                        }
                    }
                }
                let groups = table.len() as u64;
                let input = MapInput {
                    tasks: lpend.tasks + rpend.tasks,
                    bytes: lpend.bytes + rpend.bytes,
                };
                let next =
                    self.charge_shuffle(stats, input, shuffle_records, shuffle_bytes, groups);
                Ok((out, next))
            }
            PlanNode::OrderBy { input, keys } => {
                let (mut rows, pending) = self.exec(input, mem, stats)?;
                let shuffle_records = rows.len() as u64;
                let shuffle_bytes: u64 = rows.iter().map(|t| tuple_wire_size(t)).sum();
                let order = RowOrder::Cols(keys.clone());
                if mem.budget().is_some() {
                    // External merge sort; sequence numbers reproduce the
                    // in-memory sort's stability exactly.
                    let mut sorter =
                        RowSpillSorter::new(self.warehouse.clone(), mem.clone(), order, "order_by");
                    for row in rows {
                        sorter.push(row)?;
                    }
                    let mut stream = sorter.finish()?;
                    rows = Vec::new();
                    while let Some(row) = stream.next_row()? {
                        rows.push(row);
                    }
                } else {
                    rows.sort_by(|a, b| order.cmp_rows(a, b));
                }
                let next = self.charge_shuffle(
                    stats,
                    pending,
                    shuffle_records,
                    shuffle_bytes,
                    shuffle_records,
                );
                Ok((rows, next))
            }
            PlanNode::Distinct { input } => {
                let (rows, pending) = self.exec(input, mem, stats)?;
                let rows_in = rows.len() as u64;
                let out: Vec<Tuple> = if mem.budget().is_some() {
                    // Bounded-memory dedup: whole-tuple external sort, then
                    // drop consecutive duplicates. Output order (ascending
                    // tuples) matches the BTreeMap path.
                    let mut sorter = RowSpillSorter::new(
                        self.warehouse.clone(),
                        mem.clone(),
                        RowOrder::WholeTuple,
                        "distinct",
                    );
                    for row in rows {
                        sorter.push(row)?;
                    }
                    let mut stream = sorter.finish()?;
                    let mut out: Vec<Tuple> = Vec::new();
                    while let Some(row) = stream.next_row()? {
                        if out.last().is_none_or(|prev| *prev != row) {
                            out.push(row);
                        }
                    }
                    out
                } else {
                    let mut set: BTreeMap<Tuple, ()> = BTreeMap::new();
                    for row in rows {
                        set.insert(row, ());
                    }
                    set.into_keys().collect()
                };
                let n_groups = out.len() as u64;
                // DISTINCT has a combiner (dedup map-side).
                let shuffle_records = rows_in.min(n_groups.saturating_mul(pending.tasks.max(1)));
                let shuffle_bytes: u64 = out.iter().map(|t| tuple_wire_size(t)).sum();
                let next =
                    self.charge_shuffle(stats, pending, shuffle_records, shuffle_bytes, n_groups);
                Ok((out, next))
            }
            PlanNode::Union { inputs } => {
                let mut rows = Vec::new();
                let mut pending = MapInput::default();
                for input in inputs {
                    let (mut r, p) = self.exec(input, mem, stats)?;
                    rows.append(&mut r);
                    pending.tasks += p.tasks;
                    pending.bytes += p.bytes;
                }
                Ok((rows, pending))
            }
            PlanNode::Limit { input, n } => {
                // ORDER → LIMIT(k): top-K short-circuit. Instead of fully
                // sorting the input (O(n log n) time, O(n) reducer state),
                // keep a bounded buffer of the best k rows. Sequence
                // numbers break ties, so the output equals the stable full
                // sort truncated to k. The ORDER's shuffle is still charged
                // — rows cross the shuffle either way; only reducer work
                // and memory shrink.
                if let PlanNode::OrderBy { input: inner, keys } = &input.node {
                    let (rows, pending) = self.exec(inner, mem, stats)?;
                    let shuffle_records = rows.len() as u64;
                    let shuffle_bytes: u64 = rows.iter().map(|t| tuple_wire_size(t)).sum();
                    let order = RowOrder::Cols(keys.clone());
                    let k = *n;
                    let mut best: Vec<(u64, Tuple)> = Vec::with_capacity(k.saturating_add(1));
                    for (seq, row) in rows.into_iter().enumerate() {
                        if k == 0 {
                            break;
                        }
                        let entry = (seq as u64, row);
                        if best.len() == k
                            && order
                                .cmp_rows(&entry.1, &best[k - 1].1)
                                .then(entry.0.cmp(&best[k - 1].0))
                                != std::cmp::Ordering::Less
                        {
                            continue;
                        }
                        let at = best
                            .binary_search_by(|probe| {
                                order
                                    .cmp_rows(&probe.1, &entry.1)
                                    .then(probe.0.cmp(&entry.0))
                            })
                            .unwrap_err();
                        best.insert(at, entry);
                        best.truncate(k);
                    }
                    let next = self.charge_shuffle(
                        stats,
                        pending,
                        shuffle_records,
                        shuffle_bytes,
                        shuffle_records,
                    );
                    return Ok((best.into_iter().map(|(_, row)| row).collect(), next));
                }
                let (mut rows, pending) = self.exec(input, mem, stats)?;
                rows.truncate(*n);
                Ok((rows, pending))
            }
        }
    }
}

/// One open input file of a map phase: a block-structured row file, or a
/// columnar file scanned group by group through [`ColumnBatch`].
///
/// [`ColumnBatch`]: crate::batch::ColumnBatch
enum ScanHandle {
    Row(FileBlocks),
    Col(ColumnarFile),
}

/// One mapper-side operator above a LOAD.
enum MapOp<'a> {
    Filter(&'a Expr),
    Foreach(&'a [(String, Expr)]),
}

/// A LOAD → FILTER/FOREACH chain: the part of a plan that is a pure map
/// phase and can run per-block on a [`ScanPool`] with no cross-row state.
struct MapChain<'a> {
    dir: &'a uli_warehouse::WhPath,
    loader: &'a Arc<dyn Loader>,
    pruner: &'a Option<Arc<dyn BlockPruner>>,
    /// What the loader is asked to push below tuple materialization.
    spec: ScanSpec,
    /// Block-skipping constraints derived from the pushed predicates, when
    /// they are provably total (pruning can never hide an eval error).
    zone: Option<ZoneMapPruner>,
    /// Operators in application order (innermost first), minus any filters
    /// that were pushed into `spec`.
    ops: Vec<MapOp<'a>>,
}

impl<'a> MapChain<'a> {
    /// Extracts the chain if `plan` is Filter/Foreach nodes over a Load,
    /// pushing what `config` allows into the scan spec:
    ///
    /// * **predicate** — the maximal innermost run of UDF-free filters over
    ///   in-range columns moves into [`ScanSpec::predicate`] (order
    ///   preserved; FILTER semantics are replicated exactly by
    ///   [`ScanSpec::admit`]);
    /// * **projection** — when the loader decodes lazily and a FOREACH
    ///   narrows the chain, the spec masks every load column that neither
    ///   the surviving pre-FOREACH operators, the FOREACH itself, nor the
    ///   pushed predicates read;
    /// * **zone maps** — pushed predicates that provably cannot error are
    ///   analyzed into a [`ZoneMapPruner`] over the loader's declared
    ///   key/tag columns.
    fn extract(plan: &'a Plan, config: Pushdown) -> Option<MapChain<'a>> {
        let mut ops = Vec::new();
        let mut node = &plan.node;
        loop {
            match node {
                PlanNode::Filter { input, predicate } => {
                    ops.push(MapOp::Filter(predicate));
                    node = &input.node;
                }
                PlanNode::Foreach { input, exprs } => {
                    ops.push(MapOp::Foreach(exprs));
                    node = &input.node;
                }
                PlanNode::Load {
                    dir,
                    loader,
                    schema,
                    pruner,
                } => {
                    ops.reverse();
                    let width = schema.len();
                    let mut spec = ScanSpec::eager(width);
                    if config.predicate {
                        let pushed = ops
                            .iter()
                            .take_while(|op| match op {
                                MapOp::Filter(pred) => pushable_predicate(pred, width),
                                MapOp::Foreach(_) => false,
                            })
                            .count();
                        for op in ops.drain(..pushed) {
                            let MapOp::Filter(pred) = op else {
                                unreachable!()
                            };
                            spec.predicate.push(pred.clone());
                        }
                    }
                    if config.projection && loader.supports_projection() {
                        spec.projection = projection_mask(&ops, &spec.predicate, width);
                    }
                    let zone = if config.zone_maps
                        && !spec.predicate.is_empty()
                        && spec.predicate.iter().all(|p| total_boolean(p, width))
                    {
                        let key_col =
                            (0..width).find(|c| loader.zone_column(*c) == Some(ZoneColumn::Key));
                        let tag_col =
                            (0..width).find(|c| loader.zone_column(*c) == Some(ZoneColumn::Tag));
                        zone_constraints(&spec.predicate, key_col, tag_col)
                            .filter(|p| !p.is_trivial())
                    } else {
                        None
                    };
                    return Some(MapChain {
                        dir,
                        loader,
                        pruner,
                        spec,
                        zone,
                        ops,
                    });
                }
                _ => return None,
            }
        }
    }

    /// Applies the chain's operators to one block's parsed rows, preserving
    /// row order — the same work the serial Filter/Foreach arms do.
    fn apply_ops(&self, mut rows: Vec<Tuple>) -> DataflowResult<Vec<Tuple>> {
        for op in &self.ops {
            match op {
                MapOp::Filter(predicate) => {
                    let mut out = Vec::with_capacity(rows.len() / 2);
                    for row in rows {
                        match predicate.eval(&row)? {
                            Value::Bool(true) => out.push(row),
                            Value::Bool(false) | Value::Null => {}
                            _ => return Err(DataflowError::TypeError { context: "FILTER" }),
                        }
                    }
                    rows = out;
                }
                MapOp::Foreach(exprs) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        let mut t = Vec::with_capacity(exprs.len());
                        for (_, e) in exprs.iter() {
                            t.push(e.eval(&row)?);
                        }
                        out.push(t);
                    }
                    rows = out;
                }
            }
        }
        Ok(rows)
    }
}

/// True when a filter predicate may move below tuple materialization:
/// UDF-free (a UDF may panic or keep state) and reading only in-range
/// columns (so evaluation against the materialized tuple matches eager
/// evaluation exactly).
fn pushable_predicate(pred: &Expr, width: usize) -> bool {
    if expr_has_udf(pred) {
        return false;
    }
    let mut cols = Vec::new();
    collect_columns(pred, &mut cols);
    cols.iter().all(|c| *c < width)
}

/// The keep-mask over the load schema, or `None` when every column is
/// needed. A mask exists only when a FOREACH bounds the chain's output —
/// without one the chain yields raw load tuples and any column may be read
/// upstream. Columns read by the pushed predicates, the pre-FOREACH
/// operators, or the FOREACH itself stay materialized.
fn projection_mask(ops: &[MapOp<'_>], pushed: &[Expr], width: usize) -> Option<Vec<bool>> {
    let first_foreach = ops.iter().position(|op| matches!(op, MapOp::Foreach(_)))?;
    let mut cols = Vec::new();
    for op in &ops[..=first_foreach] {
        match op {
            MapOp::Filter(pred) => collect_columns(pred, &mut cols),
            MapOp::Foreach(exprs) => {
                for (_, e) in exprs.iter() {
                    collect_columns(e, &mut cols);
                }
            }
        }
    }
    for pred in pushed {
        collect_columns(pred, &mut cols);
    }
    // An out-of-range reference will error at eval; fail open so the error
    // surfaces against a fully materialized tuple, exactly as eager does.
    if cols.iter().any(|c| *c >= width) {
        return None;
    }
    let mut keep = vec![false; width];
    for c in cols {
        keep[c] = true;
    }
    if keep.iter().all(|k| *k) {
        return None;
    }
    Some(keep)
}

/// Map-side accumulation: rows → per-group aggregate states.
fn accumulate_groups(
    rows: &[Tuple],
    keys: &[usize],
    aggs: &[Agg],
) -> DataflowResult<BTreeMap<Vec<Value>, Vec<AggState>>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    for row in rows {
        let key: Vec<Value> = keys.iter().map(|k| row[*k].clone()).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (agg, state) in aggs.iter().zip(states.iter_mut()) {
            let v = row.get(agg.col).cloned().unwrap_or(Value::Null);
            state.accumulate(&v)?;
        }
    }
    Ok(groups)
}

/// Reduce-side finish: grouped states → output rows.
fn finish_groups(
    mut groups: BTreeMap<Vec<Value>, Vec<AggState>>,
    keys: &[usize],
    aggs: &[Agg],
) -> Vec<Tuple> {
    // GROUP ALL over empty input produces one row of "empty" aggregates,
    // matching SQL's SELECT COUNT(*) over an empty table.
    if groups.is_empty() && keys.is_empty() {
        groups.insert(
            Vec::new(),
            aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    groups
        .into_iter()
        .map(|(mut key, states)| {
            key.extend(states.into_iter().map(AggState::finish));
            key
        })
        .collect()
}

/// Grouped aggregation shared by the executor (and tested directly).
fn aggregate_rows(rows: &[Tuple], keys: &[usize], aggs: &[Agg]) -> DataflowResult<Vec<Tuple>> {
    Ok(finish_groups(
        accumulate_groups(rows, keys, aggs)?,
        keys,
        aggs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::loader::CsvLoader;
    use crate::plan::Plan;
    use std::sync::Arc;
    use uli_warehouse::WhPath;

    fn fixture() -> (Warehouse, WhPath) {
        let wh = Warehouse::with_block_capacity(512);
        let dir = WhPath::parse("/logs/t").unwrap();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        // user, action, amount
        for i in 0..300i64 {
            let action = if i % 3 == 0 { "click" } else { "impression" };
            w.append_record(format!("{},{},{}", i % 10, action, i).as_bytes());
        }
        w.finish().unwrap();
        (wh, dir)
    }

    fn load(dir: &WhPath) -> Plan {
        Plan::load(
            dir.clone(),
            Arc::new(CsvLoader::new(3)),
            vec!["user", "action", "amount"],
        )
    }

    #[test]
    fn map_only_scan_counts_one_job() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let r = engine.run(&load(&dir)).unwrap();
        assert_eq!(r.rows.len(), 300);
        assert_eq!(r.stats.mr_jobs, 1);
        assert!(r.stats.map_tasks >= 2, "512-byte blocks → several splits");
        assert_eq!(r.stats.input_records, 300);
        assert_eq!(r.stats.shuffle_bytes, 0);
    }

    #[test]
    fn filter_and_count() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let plan = load(&dir)
            .filter(Expr::col(1).eq(Expr::lit("click")))
            .aggregate(vec![Agg::count()]);
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(100)]]);
        assert_eq!(r.stats.mr_jobs, 1, "one shuffle job");
        assert!(r.stats.reduce_tasks >= 1);
    }

    #[test]
    fn aggregate_by_key_with_sums() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let plan = load(&dir).aggregate_by(vec![0], vec![Agg::count(), Agg::sum(2).named("amt")]);
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.schema, vec!["user", "count", "amt"]);
        // user 0 appears at i = 0,10,…,290: 30 rows summing to 4350.
        let row0 = r.rows.iter().find(|t| t[0] == Value::Int(0)).unwrap();
        assert_eq!(row0[1], Value::Int(30));
        assert_eq!(row0[2], Value::Int(4350));
    }

    #[test]
    fn combiner_reduces_shuffle_for_algebraic_aggs() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let algebraic = engine
            .run(&load(&dir).aggregate_by(vec![0], vec![Agg::count()]))
            .unwrap();
        let (wh2, dir2) = fixture();
        let engine2 = Engine::new(wh2);
        let holistic = engine2
            .run(&load(&dir2).aggregate_by(vec![0], vec![Agg::count_distinct(2)]))
            .unwrap();
        assert!(
            algebraic.stats.shuffle_records < holistic.stats.shuffle_records,
            "combiner must shrink the shuffle: {} vs {}",
            algebraic.stats.shuffle_records,
            holistic.stats.shuffle_records
        );
        assert_eq!(holistic.stats.shuffle_records, 300);
    }

    #[test]
    fn group_by_produces_bags() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let r = engine.run(&load(&dir).group_by(vec![0])).unwrap();
        assert_eq!(r.rows.len(), 10);
        let bag = r.rows[0].last().unwrap().as_bag().unwrap();
        assert_eq!(bag.len(), 30);
        // Bags shuffle everything.
        assert_eq!(r.stats.shuffle_records, 300);
    }

    #[test]
    fn group_all_on_empty_input_counts_zero() {
        let wh = Warehouse::new();
        let dir = WhPath::parse("/empty").unwrap();
        wh.mkdirs(&dir).unwrap();
        let engine = Engine::new(wh);
        let r = engine
            .run(&load(&dir).aggregate(vec![Agg::count()]))
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn join_matches_keys() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let users = Plan::values(
            vec!["uid", "country"],
            vec![
                vec![Value::Int(0), Value::str("uk")],
                vec![Value::Int(1), Value::str("us")],
            ],
        );
        let plan = load(&dir)
            .join(users, vec![0], vec![0])
            .filter(Expr::col(4).eq(Expr::lit("uk")))
            .aggregate(vec![Agg::count()]);
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(30)]]);
        assert_eq!(r.stats.mr_jobs, 2, "join + aggregate");
    }

    #[test]
    fn order_by_sorts_both_directions() {
        let engine = Engine::new(Warehouse::new());
        let vals = Plan::values(
            vec!["x"],
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(1)],
                vec![Value::Int(3)],
            ],
        );
        let r = engine
            .run(&vals.order_by(vec![(0, SortOrder::Desc)]))
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(xs, vec![3, 2, 1]);
    }

    #[test]
    fn distinct_dedups() {
        let engine = Engine::new(Warehouse::new());
        let vals = Plan::values(
            vec!["x"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        );
        let r = engine.run(&vals.distinct()).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn union_and_limit() {
        let engine = Engine::new(Warehouse::new());
        let a = Plan::values(vec!["x"], vec![vec![Value::Int(1)]]);
        let b = Plan::values(vec!["x"], vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
        let r = engine.run(&a.union(vec![b]).limit(2)).unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn foreach_projects_early_to_cut_shuffle() {
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let wide = engine.run(&load(&dir).group_by(vec![0])).unwrap();
        let (wh2, dir2) = fixture();
        let engine2 = Engine::new(wh2);
        let narrow = engine2
            .run(
                &load(&dir2)
                    .foreach(vec![("user", Expr::col(0))])
                    .group_by(vec![0]),
            )
            .unwrap();
        assert!(
            narrow.stats.shuffle_bytes < wide.stats.shuffle_bytes,
            "projection must shrink shuffled bytes"
        );
    }

    #[test]
    fn cost_model_monotone_in_tasks_and_bytes() {
        let m = CostModel::default();
        let base = JobStats {
            mr_jobs: 1,
            map_tasks: 10,
            reduce_tasks: 1,
            input_bytes_uncompressed: 1 << 20,
            shuffle_bytes: 1 << 16,
            ..Default::default()
        };
        let mut more_tasks = base;
        more_tasks.map_tasks = 10_000;
        assert!(m.estimate_ms(&more_tasks) > m.estimate_ms(&base));
        let mut more_bytes = base;
        more_bytes.input_bytes_uncompressed = 1 << 32;
        assert!(m.estimate_ms(&more_bytes) > m.estimate_ms(&base));
    }

    #[test]
    fn pushed_filter_matches_eager_and_counts_records() {
        let (wh, dir) = fixture();
        let eager_engine = Engine::new(wh).with_pushdown(Pushdown::disabled());
        let plan = load(&dir).filter(Expr::col(1).eq(Expr::lit("click")));
        let eager = eager_engine.run(&plan).unwrap();
        let (wh2, _) = fixture();
        let pushed_engine = Engine::new(wh2); // pushdown on by default
        let pushed = pushed_engine.run(&plan).unwrap();
        assert_eq!(eager.rows, pushed.rows);
        assert_eq!(eager.stats.records_skipped_by_predicate, 0);
        assert_eq!(pushed.stats.records_skipped_by_predicate, 200);
        assert_eq!(
            pushed.stats.input_records, 300,
            "skipped records still read"
        );
    }

    #[test]
    fn udf_predicates_are_not_pushed() {
        use crate::udf::ScalarUdf;
        struct IsClick;
        impl ScalarUdf for IsClick {
            fn name(&self) -> &'static str {
                "IS_CLICK"
            }
            fn eval(&self, args: &[Value]) -> DataflowResult<Value> {
                Ok(Value::Bool(args[0] == Value::str("click")))
            }
        }
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let plan = load(&dir).filter(Expr::udf(Arc::new(IsClick), vec![Expr::col(1)]));
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.stats.records_skipped_by_predicate, 0, "UDF stays eager");
    }

    #[test]
    fn filters_behind_a_udf_filter_stay_unpushed() {
        // Only the innermost run of pushable filters moves; a later cheap
        // filter above a UDF filter must not leapfrog it.
        use crate::udf::ScalarUdf;
        struct AlwaysTrue;
        impl ScalarUdf for AlwaysTrue {
            fn name(&self) -> &'static str {
                "TRUE"
            }
            fn eval(&self, _: &[Value]) -> DataflowResult<Value> {
                Ok(Value::Bool(true))
            }
        }
        let (wh, dir) = fixture();
        let engine = Engine::new(wh);
        let plan = load(&dir)
            .filter(Expr::col(1).eq(Expr::lit("click"))) // pushed
            .filter(Expr::udf(Arc::new(AlwaysTrue), vec![])) // blocks
            .filter(Expr::col(0).eq(Expr::lit(0i64))); // stays
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.stats.records_skipped_by_predicate, 200, "only filter 1");
    }

    /// CSV loader that declares its third column as the zone-map key.
    struct ZonedCsv(CsvLoader);
    impl Loader for ZonedCsv {
        fn name(&self) -> &'static str {
            "ZonedCsv"
        }
        fn parse(&self, record: &[u8]) -> DataflowResult<Option<Tuple>> {
            self.0.parse(record)
        }
        fn zone_column(&self, col: usize) -> Option<ZoneColumn> {
            (col == 2).then_some(ZoneColumn::Key)
        }
        fn supports_projection(&self) -> bool {
            // Honored only on the columnar path (the row parse is eager);
            // masked columns are never read downstream either way.
            true
        }
        fn columnar(&self) -> Option<&dyn crate::batch::ColumnarCodec> {
            self.0.columnar()
        }
    }

    fn zoned_fixture() -> (Warehouse, WhPath) {
        let wh = Warehouse::with_block_capacity(512);
        let dir = WhPath::parse("/logs/z").unwrap();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        for i in 0..300i64 {
            let action = if i % 3 == 0 { "click" } else { "impression" };
            w.append_record_annotated(format!("{},{},{}", i % 10, action, i).as_bytes(), i, 0);
        }
        w.finish().unwrap();
        (wh, dir)
    }

    fn zoned_load(dir: &WhPath) -> Plan {
        Plan::load(
            dir.clone(),
            Arc::new(ZonedCsv(CsvLoader::new(3))),
            vec!["user", "action", "amount"],
        )
    }

    #[test]
    fn zone_maps_skip_blocks_outside_the_key_range() {
        let (wh, dir) = zoned_fixture();
        let engine = Engine::new(wh);
        let plan = zoned_load(&dir).filter(Expr::col(2).ge(Expr::lit(250i64)));
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows.len(), 50);
        assert!(r.stats.blocks_skipped > 0, "leading blocks pruned");
        // Eager reference on identical data.
        let (wh2, dir2) = zoned_fixture();
        let eager = Engine::new(wh2)
            .with_pushdown(Pushdown::disabled())
            .run(&zoned_load(&dir2).filter(Expr::col(2).ge(Expr::lit(250i64))))
            .unwrap();
        assert_eq!(eager.rows, r.rows);
        assert_eq!(eager.stats.blocks_skipped, 0);
        assert!(r.stats.input_blocks < eager.stats.input_blocks);
    }

    #[test]
    fn zone_pruning_requires_total_predicates() {
        // An arithmetic predicate may type-error, so no block is pruned even
        // though it constrains the key column.
        let (wh, dir) = zoned_fixture();
        let engine = Engine::new(wh);
        let plan = zoned_load(&dir).filter(Expr::col(2).add(Expr::lit(0i64)).ge(Expr::lit(250i64)));
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows.len(), 50);
        assert_eq!(r.stats.blocks_skipped, 0, "non-total predicate: fail open");
    }

    #[test]
    fn serial_and_parallel_pushdown_agree_on_rows_and_accounting() {
        let plan_of = |dir: &WhPath| {
            zoned_load(dir)
                .filter(Expr::col(2).ge(Expr::lit(100i64)))
                .aggregate_by(vec![0], vec![Agg::count()])
        };
        let (wh, dir) = zoned_fixture();
        let serial = Engine::new(wh)
            .with_parallelism(Parallelism::fixed(1))
            .run(&plan_of(&dir))
            .unwrap();
        let (wh2, dir2) = zoned_fixture();
        let parallel = Engine::new(wh2)
            .with_parallelism(Parallelism::fixed(4))
            .run(&plan_of(&dir2))
            .unwrap();
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn obs_mirrors_job_stats_and_counts_stage_rows() {
        let registry = Registry::new();
        let (wh, dir) = fixture();
        let engine = Engine::new(wh).with_obs(&registry);
        let plan = load(&dir)
            .filter(Expr::col(1).eq(Expr::lit("click")))
            .aggregate(vec![Agg::count()]);
        let r = engine.run(&plan).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("dataflow/queries"), Some(1));
        assert_eq!(
            snap.counter_value("dataflow/input_records"),
            Some(r.stats.input_records),
            "mirror equals the JobStats the caller saw"
        );
        assert_eq!(
            snap.counter_value("dataflow/output_records"),
            Some(r.stats.output_records)
        );
        // The pushed filter collapses into the aggregate's map chain: the
        // aggregate stage consumed every surfaced record and emitted 1 row.
        assert_eq!(
            snap.counter_value("dataflow/stage_rows_in{stage=aggregate}"),
            Some(300)
        );
        assert_eq!(
            snap.counter_value("dataflow/stage_rows_out{stage=aggregate}"),
            Some(1)
        );
        assert!(registry.duplicate_registrations().is_empty());
        // Spans: one query root wrapping the aggregate stage.
        let spans = registry.finished_spans();
        assert_eq!(spans[0].key(), "dataflow/query");
        assert!(spans.iter().any(|s| s.key() == "dataflow/aggregate"));
    }

    #[test]
    fn obs_accounting_is_worker_invariant() {
        let run_with = |workers: usize| {
            let registry = Registry::new();
            let (wh, dir) = zoned_fixture();
            let engine = Engine::new(wh)
                .with_obs(&registry)
                .with_parallelism(Parallelism::fixed(workers));
            engine
                .run(
                    &zoned_load(&dir)
                        .filter(Expr::col(2).ge(Expr::lit(100i64)))
                        .aggregate_by(vec![0], vec![Agg::count()]),
                )
                .unwrap();
            registry.snapshot().to_json()
        };
        let serial = run_with(1);
        assert_eq!(serial, run_with(4));
        assert_eq!(serial, run_with(8));
    }

    /// The zoned CSV data written in the columnar v2 layout: same 300
    /// logical rows, action column dictionary-encoded, groups annotated
    /// with the amount as zone key (matching `ZonedCsv::zone_column`).
    fn columnar_fixture(group_rows: usize) -> (Warehouse, WhPath) {
        let wh = Warehouse::new();
        let dir = WhPath::parse("/logs/c").unwrap();
        wh.mkdirs(&dir).unwrap();
        let dict = vec![b"click".to_vec(), b"impression".to_vec()];
        let mut w = uli_warehouse::ColumnarFileWriter::create(
            &wh,
            &dir.child("part-0").unwrap(),
            3,
            group_rows,
            Some((1, &dict)),
        )
        .unwrap();
        for i in 0..300i64 {
            let action = if i % 3 == 0 { "click" } else { "impression" };
            let user = (i % 10).to_string();
            let amount = i.to_string();
            w.append_row_annotated(
                &[user.as_bytes(), action.as_bytes(), amount.as_bytes()],
                i,
                uli_warehouse::tag_hash(action.as_bytes()),
            );
        }
        w.finish().unwrap();
        (wh, dir)
    }

    #[test]
    fn columnar_scan_matches_row_scan_at_all_worker_counts() {
        let plans: [fn(&WhPath) -> Plan; 3] = [
            |d| zoned_load(d),
            |d| zoned_load(d).filter(Expr::col(1).eq(Expr::lit("click"))),
            |d| {
                zoned_load(d)
                    .filter(Expr::col(2).ge(Expr::lit(100i64)))
                    .foreach(vec![("user", Expr::col(0)), ("action", Expr::col(1))])
                    .aggregate_by(vec![1], vec![Agg::count()])
            },
        ];
        for (pi, plan_of) in plans.iter().enumerate() {
            let (row_wh, row_dir) = zoned_fixture();
            let reference = Engine::new(row_wh).run(&plan_of(&row_dir)).unwrap();
            for workers in [1usize, 4, 8] {
                let (wh, dir) = columnar_fixture(64);
                let r = Engine::new(wh)
                    .with_parallelism(Parallelism::fixed(workers))
                    .run(&plan_of(&dir))
                    .unwrap();
                assert_eq!(r.rows, reference.rows, "plan {pi} workers {workers}");
            }
            // Pushdown disabled + serial drives the eager Load arm.
            let (wh, dir) = columnar_fixture(64);
            let eager = Engine::new(wh)
                .with_pushdown(Pushdown::disabled())
                .with_parallelism(Parallelism::serial())
                .run(&plan_of(&dir))
                .unwrap();
            assert_eq!(eager.rows, reference.rows, "plan {pi} eager");
        }
    }

    #[test]
    fn columnar_accounting_is_worker_invariant() {
        let run_with = |workers: usize| {
            let registry = Registry::new();
            let (wh, dir) = columnar_fixture(64);
            let engine = Engine::new(wh)
                .with_obs(&registry)
                .with_parallelism(Parallelism::fixed(workers));
            engine
                .run(
                    &zoned_load(&dir)
                        .filter(Expr::col(2).ge(Expr::lit(100i64)))
                        .aggregate_by(vec![0], vec![Agg::count()]),
                )
                .unwrap();
            registry.snapshot().to_json()
        };
        let serial = run_with(1);
        assert_eq!(serial, run_with(4));
        assert_eq!(serial, run_with(8));
    }

    #[test]
    fn columnar_zone_maps_skip_row_groups() {
        let (wh, dir) = columnar_fixture(64);
        let engine = Engine::new(wh);
        let plan = zoned_load(&dir).filter(Expr::col(2).ge(Expr::lit(250i64)));
        let r = engine.run(&plan).unwrap();
        assert_eq!(r.rows.len(), 50);
        assert!(r.stats.blocks_skipped > 0, "leading groups pruned");
        assert!(
            r.stats.records_skipped_by_predicate < 250,
            "pruned groups never decode their rows"
        );
    }

    #[test]
    fn columnar_projection_reads_fewer_decoded_bytes_than_row() {
        let plan_of = |dir: &WhPath| {
            zoned_load(dir)
                .filter(Expr::col(1).eq(Expr::lit("click")))
                .foreach(vec![("amount", Expr::col(2))])
                .aggregate(vec![Agg::sum(0)])
        };
        let (row_wh, row_dir) = zoned_fixture();
        let row = Engine::new(row_wh).run(&plan_of(&row_dir)).unwrap();
        let (col_wh, col_dir) = columnar_fixture(64);
        let col = Engine::new(col_wh).run(&plan_of(&col_dir)).unwrap();
        assert_eq!(row.rows, col.rows);
        assert!(
            col.stats.input_bytes_uncompressed < row.stats.input_bytes_uncompressed,
            "columnar projection must decode fewer bytes: {} vs {}",
            col.stats.input_bytes_uncompressed,
            row.stats.input_bytes_uncompressed
        );
        assert!(col.stats.fields_skipped > 0, "masked columns counted");
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let engine = Engine::new(Warehouse::new());
        let a = Plan::values(vec!["k"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let b = Plan::values(vec!["k"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let r = engine.run(&a.join(b, vec![0], vec![0])).unwrap();
        assert_eq!(r.rows.len(), 1, "only the non-null key joins");
    }
}
