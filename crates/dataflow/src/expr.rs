//! Row expressions: projections, predicates, scalar UDF calls.

use std::sync::Arc;

use crate::error::{DataflowError, DataflowResult};
use crate::udf::ScalarUdf;
use crate::value::{Tuple, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Addition (int or double).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always double).
    Div,
    /// Logical and (short-circuiting).
    And,
    /// Logical or (short-circuiting).
    Or,
}

/// An expression evaluated against one input tuple.
#[derive(Clone)]
pub enum Expr {
    /// Positional column reference `$i`.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Scalar UDF call.
    Udf(Arc<dyn ScalarUdf>, Vec<Expr>),
}

impl std::fmt::Debug for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "${i}"),
            Expr::Lit(v) => write!(f, "{v:?}"),
            Expr::Bin(op, a, b) => write!(f, "({a:?} {op:?} {b:?})"),
            Expr::Not(e) => write!(f, "NOT {e:?}"),
            Expr::Udf(u, args) => write!(f, "{}({args:?})", u.name()),
        }
    }
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Scalar UDF call.
    pub fn udf(udf: Arc<dyn ScalarUdf>, args: Vec<Expr>) -> Expr {
        Expr::Udf(udf, args)
    }

    /// `self == other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self != other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self + other`
    #[allow(clippy::should_implement_trait)] // fluent builder, not arithmetic on Expr values
    pub fn add(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`
    #[allow(clippy::should_implement_trait)] // fluent builder, not arithmetic on Expr values
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`
    #[allow(clippy::should_implement_trait)] // fluent builder, not arithmetic on Expr values
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other`
    #[allow(clippy::should_implement_trait)] // fluent builder, not arithmetic on Expr values
    pub fn div(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(other))
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluates against a tuple.
    pub fn eval(&self, row: &Tuple) -> DataflowResult<Value> {
        match self {
            Expr::Col(i) => row.get(*i).cloned().ok_or(DataflowError::ColumnOutOfRange {
                index: *i,
                width: row.len(),
            }),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Not(e) => {
                let v = e.eval(row)?;
                v.as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or(DataflowError::TypeError { context: "NOT" })
            }
            Expr::Udf(udf, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                udf.eval(&vals)
            }
            Expr::Bin(op, a, b) => {
                // Short-circuit logic ops first.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let left = a
                        .eval(row)?
                        .as_bool()
                        .ok_or(DataflowError::TypeError { context: "AND/OR" })?;
                    return match (op, left) {
                        (BinOp::And, false) => Ok(Value::Bool(false)),
                        (BinOp::Or, true) => Ok(Value::Bool(true)),
                        _ => {
                            let right = b
                                .eval(row)?
                                .as_bool()
                                .ok_or(DataflowError::TypeError { context: "AND/OR" })?;
                            Ok(Value::Bool(right))
                        }
                    };
                }
                let left = a.eval(row)?;
                let right = b.eval(row)?;
                match op {
                    BinOp::Eq => Ok(Value::Bool(left == right)),
                    BinOp::Ne => Ok(Value::Bool(left != right)),
                    BinOp::Lt => Ok(Value::Bool(left < right)),
                    BinOp::Le => Ok(Value::Bool(left <= right)),
                    BinOp::Gt => Ok(Value::Bool(left > right)),
                    BinOp::Ge => Ok(Value::Bool(left >= right)),
                    BinOp::Add | BinOp::Sub | BinOp::Mul => arith(*op, &left, &right),
                    BinOp::Div => {
                        let (l, r) = both_doubles(&left, &right)?;
                        if r == 0.0 {
                            return Err(DataflowError::DivisionByZero);
                        }
                        Ok(Value::Double(l / r))
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }
}

fn both_doubles(a: &Value, b: &Value) -> DataflowResult<(f64, f64)> {
    match (a.as_double(), b.as_double()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(DataflowError::TypeError {
            context: "arithmetic",
        }),
    }
}

fn arith(op: BinOp, a: &Value, b: &Value) -> DataflowResult<Value> {
    // Integer arithmetic stays integral; anything else widens to double.
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        let v = match op {
            BinOp::Add => x.wrapping_add(*y),
            BinOp::Sub => x.wrapping_sub(*y),
            BinOp::Mul => x.wrapping_mul(*y),
            _ => unreachable!(),
        };
        return Ok(Value::Int(v));
    }
    let (x, y) = both_doubles(a, b)?;
    let v = match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        _ => unreachable!(),
    };
    Ok(Value::Double(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Tuple {
        vec![Value::Int(10), Value::str("click"), Value::Double(0.5)]
    }

    #[test]
    fn columns_and_literals() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(7i64).eval(&row()).unwrap(), Value::Int(7));
        assert!(matches!(
            Expr::col(9).eval(&row()),
            Err(DataflowError::ColumnOutOfRange { index: 9, width: 3 })
        ));
    }

    #[test]
    fn comparisons() {
        let e = Expr::col(1).eq(Expr::lit("click"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::col(0).gt(Expr::lit(5i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::col(0).le(Expr::lit(9i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic_int_and_double() {
        let e = Expr::col(0).add(Expr::lit(5i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let e = Expr::col(0).mul(Expr::col(2));
        assert_eq!(e.eval(&row()).unwrap(), Value::Double(5.0));
        let e = Expr::col(0).div(Expr::lit(4i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Double(2.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::col(0).div(Expr::lit(0i64));
        assert_eq!(e.eval(&row()), Err(DataflowError::DivisionByZero));
    }

    #[test]
    fn logic_short_circuits() {
        // Right side would be a type error, but left decides.
        let e = Expr::lit(false).and(Expr::col(0));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::col(0));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = Expr::lit(true).and(Expr::lit(false)).not();
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn type_errors_are_reported() {
        let e = Expr::col(1).add(Expr::lit(1i64));
        assert!(matches!(
            e.eval(&row()),
            Err(DataflowError::TypeError { .. })
        ));
        let e = Expr::col(1).not();
        assert!(matches!(
            e.eval(&row()),
            Err(DataflowError::TypeError { .. })
        ));
    }

    #[test]
    fn udf_call() {
        struct Double;
        impl ScalarUdf for Double {
            fn name(&self) -> &'static str {
                "DOUBLE"
            }
            fn eval(&self, args: &[Value]) -> DataflowResult<Value> {
                Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
            }
        }
        let e = Expr::udf(Arc::new(Double), vec![Expr::col(0)]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(20));
    }
}
