//! Dataflow errors.

use std::fmt;

use uli_warehouse::WarehouseError;

/// Errors raised while building or executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// A column index was out of range for the operator's input schema.
    ColumnOutOfRange {
        /// The offending index.
        index: usize,
        /// Width of the input schema.
        width: usize,
    },
    /// A named column was not found in the schema.
    UnknownColumn(String),
    /// An expression was applied to operands of the wrong type.
    TypeError {
        /// Description of the failing operation.
        context: &'static str,
    },
    /// Reading from the warehouse failed.
    Warehouse(WarehouseError),
    /// A loader rejected a record it could not parse.
    MalformedRecord {
        /// Loader that failed.
        loader: &'static str,
    },
    /// Division by zero in an arithmetic expression.
    DivisionByZero,
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::ColumnOutOfRange { index, width } => {
                write!(f, "column ${index} out of range for width {width}")
            }
            DataflowError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            DataflowError::TypeError { context } => write!(f, "type error in {context}"),
            DataflowError::Warehouse(e) => write!(f, "warehouse error: {e}"),
            DataflowError::MalformedRecord { loader } => {
                write!(f, "record rejected by loader {loader}")
            }
            DataflowError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<WarehouseError> for DataflowError {
    fn from(e: WarehouseError) -> Self {
        DataflowError::Warehouse(e)
    }
}

/// Convenience alias.
pub type DataflowResult<T> = Result<T, DataflowError>;
