//! Lowering parsed statements onto [`Plan`] builders.
//!
//! One Pig-ism needs care: aggregation is written as `GROUP` followed by a
//! `FOREACH … GENERATE SUM(col)`. The compiler keeps a `GROUP` result
//! *symbolic* until it sees how it is consumed — a FOREACH of aggregate
//! calls lowers to the engine's `Aggregate` (combiner-friendly), anything
//! else materializes the bag-producing `GroupBy`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::expr::Expr;
use crate::plan::{Agg, Plan, SortOrder};
use crate::udf::ScalarUdf;

use super::ast::{ExprAst, OpAst};

/// Compile-time errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Reference to a relation that was never assigned.
    UnknownRelation(String),
    /// A relation was used twice. Plans are consumed on use; assign
    /// intermediate results to distinct names (each LOAD re-scans anyway).
    RelationConsumed(String),
    /// Column name not present in the input schema.
    UnknownColumn {
        /// The column.
        column: String,
        /// The input schema, for the error message.
        schema: Vec<String>,
    },
    /// A function that is neither a DEFINEd alias nor a built-in aggregate.
    UnknownFunction(String),
    /// Aggregate call outside `FOREACH (GROUP …) GENERATE`.
    AggregateOutsideGroup(String),
    /// Mixing aggregate and non-key expressions over a grouped relation.
    BadAggregateProjection,
    /// `*` used anywhere but `COUNT(*)`.
    StarOutsideCount,
    /// Loader/UDF constructor failed.
    Factory(String),
    /// Operation invalid for other reasons.
    Invalid(&'static str),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            CompileError::RelationConsumed(r) => write!(
                f,
                "relation {r:?} was already consumed; assign intermediates to distinct names"
            ),
            CompileError::UnknownColumn { column, schema } => {
                write!(f, "unknown column {column:?}; schema is {schema:?}")
            }
            CompileError::UnknownFunction(n) => write!(f, "unknown function {n:?}"),
            CompileError::AggregateOutsideGroup(n) => {
                write!(f, "aggregate {n} is only valid in FOREACH over a GROUP")
            }
            CompileError::BadAggregateProjection => write!(
                f,
                "FOREACH over a GROUP may generate only group keys and aggregates"
            ),
            CompileError::StarOutsideCount => write!(f, "'*' is only valid inside COUNT(*)"),
            CompileError::Factory(msg) => write!(f, "constructor failed: {msg}"),
            CompileError::Invalid(what) => write!(f, "invalid operation: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A relation in the environment.
pub(super) enum Rel {
    /// A materializable plan.
    Plan(Plan),
    /// An unmaterialized GROUP: input plan + key columns.
    Grouped {
        /// The pre-group plan.
        input: Plan,
        /// Key column indexes in the pre-group schema.
        keys: Vec<usize>,
    },
}

/// The compilation environment.
pub(super) struct Env {
    rels: HashMap<String, Option<Rel>>,
    /// DEFINEd UDF aliases.
    pub(super) defines: HashMap<String, Arc<dyn ScalarUdf>>,
}

/// Signature of the LOAD resolver the runner supplies.
pub(super) type LoadFn<'a> =
    dyn FnMut(&str, &str, &[String], &[String]) -> Result<Plan, CompileError> + 'a;

const AGGREGATES: [&str; 6] = ["SUM", "COUNT", "AVG", "MIN", "MAX", "COUNT_DISTINCT"];

fn is_aggregate(name: &str) -> bool {
    AGGREGATES.iter().any(|a| name.eq_ignore_ascii_case(a))
}

impl Env {
    pub(super) fn new() -> Env {
        Env {
            rels: HashMap::new(),
            defines: HashMap::new(),
        }
    }

    pub(super) fn insert(&mut self, name: String, rel: Rel) {
        self.rels.insert(name, Some(rel));
    }

    /// Takes a relation (consuming it).
    fn take(&mut self, name: &str) -> Result<Rel, CompileError> {
        match self.rels.get_mut(name) {
            None => Err(CompileError::UnknownRelation(name.to_string())),
            Some(slot) => slot
                .take()
                .ok_or_else(|| CompileError::RelationConsumed(name.to_string())),
        }
    }

    /// Takes a relation, materializing a pending GROUP into a bag plan.
    pub(super) fn take_plan(&mut self, name: &str) -> Result<Plan, CompileError> {
        Ok(match self.take(name)? {
            Rel::Plan(p) => p,
            Rel::Grouped { input, keys } => input.group_by(keys),
        })
    }

    fn resolve_col(plan: &Plan, name: &str) -> Result<usize, CompileError> {
        plan.schema()
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| CompileError::UnknownColumn {
                column: name.to_string(),
                schema: plan.schema().to_vec(),
            })
    }

    /// Compiles a scalar expression against `plan`'s schema.
    fn compile_expr(&self, plan: &Plan, ast: &ExprAst) -> Result<Expr, CompileError> {
        Ok(match ast {
            ExprAst::Col(name) => Expr::col(Self::resolve_col(plan, name)?),
            ExprAst::Pos(i) => Expr::col(*i),
            ExprAst::Int(v) => Expr::lit(*v),
            ExprAst::Float(v) => Expr::lit(*v),
            ExprAst::Str(s) => Expr::lit(s.as_str()),
            ExprAst::Star => return Err(CompileError::StarOutsideCount),
            ExprAst::Not(inner) => self.compile_expr(plan, inner)?.not(),
            ExprAst::Bin(op, a, b) => {
                let left = self.compile_expr(plan, a)?;
                let right = self.compile_expr(plan, b)?;
                match op.as_str() {
                    "==" => left.eq(right),
                    "!=" => left.ne(right),
                    "<" => left.lt(right),
                    "<=" => left.le(right),
                    ">" => left.gt(right),
                    ">=" => left.ge(right),
                    "+" => left.add(right),
                    "-" => left.sub(right),
                    "*" => left.mul(right),
                    "/" => left.div(right),
                    "and" => left.and(right),
                    "or" => left.or(right),
                    other => {
                        debug_assert!(false, "parser produced operator {other}");
                        return Err(CompileError::Invalid("operator"));
                    }
                }
            }
            ExprAst::Call { name, args } => {
                if is_aggregate(name) {
                    return Err(CompileError::AggregateOutsideGroup(name.clone()));
                }
                let udf = self
                    .defines
                    .get(name)
                    .ok_or_else(|| CompileError::UnknownFunction(name.clone()))?;
                let mut compiled = Vec::with_capacity(args.len());
                for a in args {
                    compiled.push(self.compile_expr(plan, a)?);
                }
                Expr::udf(Arc::clone(udf), compiled)
            }
        })
    }

    /// Key expressions must be plain columns (matching Pig's GROUP/JOIN BY).
    fn key_columns(plan: &Plan, keys: &[ExprAst]) -> Result<Vec<usize>, CompileError> {
        keys.iter()
            .map(|k| match k {
                ExprAst::Col(name) => Self::resolve_col(plan, name),
                ExprAst::Pos(i) => Ok(*i),
                _ => Err(CompileError::Invalid("keys must be column references")),
            })
            .collect()
    }

    fn compile_agg(
        input: &Plan,
        name: &str,
        args: &[ExprAst],
        alias: Option<&str>,
    ) -> Result<Agg, CompileError> {
        let col_of = |args: &[ExprAst]| -> Result<usize, CompileError> {
            match args {
                [ExprAst::Col(c)] => Self::resolve_col(input, c),
                [ExprAst::Pos(i)] => Ok(*i),
                _ => Err(CompileError::Invalid("aggregate takes one column")),
            }
        };
        let upper = name.to_ascii_uppercase();
        let agg = match upper.as_str() {
            "COUNT" => match args {
                [ExprAst::Star] => Agg::count(),
                _ => Agg::count(), // COUNT(col) counts rows in this dialect too
            },
            "SUM" => Agg::sum(col_of(args)?),
            "AVG" => Agg::avg(col_of(args)?),
            "MIN" => Agg::min(col_of(args)?),
            "MAX" => Agg::max(col_of(args)?),
            "COUNT_DISTINCT" => Agg::count_distinct(col_of(args)?),
            _ => return Err(CompileError::UnknownFunction(name.to_string())),
        };
        Ok(match alias {
            Some(a) => agg.named(a),
            None => agg.named(upper.to_ascii_lowercase()),
        })
    }

    /// FOREACH over a pending GROUP: keys + aggregates → `aggregate_by`.
    fn compile_grouped_foreach(
        &self,
        input: Plan,
        keys: Vec<usize>,
        gens: &[(ExprAst, Option<String>)],
    ) -> Result<Plan, CompileError> {
        let mut aggs = Vec::new();
        for (gen, alias) in gens {
            match gen {
                // References to group keys are implicit in aggregate_by's
                // output (keys come first); accept and ignore them as long
                // as they are actual keys.
                ExprAst::Col(name) => {
                    let idx = Self::resolve_col(&input, name)?;
                    if !keys.contains(&idx) {
                        return Err(CompileError::BadAggregateProjection);
                    }
                }
                ExprAst::Call { name, args } if is_aggregate(name) => {
                    aggs.push(Self::compile_agg(&input, name, args, alias.as_deref())?);
                }
                _ => return Err(CompileError::BadAggregateProjection),
            }
        }
        if aggs.is_empty() {
            return Err(CompileError::BadAggregateProjection);
        }
        Ok(input.aggregate_by(keys, aggs))
    }

    /// Compiles one relational operator into a plan.
    pub(super) fn compile_op(
        &mut self,
        op: &OpAst,
        load: &mut LoadFn<'_>,
    ) -> Result<Plan, CompileError> {
        Ok(match op {
            OpAst::Load {
                path,
                loader,
                args,
                schema,
            } => load(path, loader, args, schema)?,
            OpAst::Filter { input, expr } => {
                let plan = self.take_plan(input)?;
                let predicate = self.compile_expr(&plan, expr)?;
                plan.filter(predicate)
            }
            OpAst::Foreach { input, gens } => {
                // The GROUP-then-aggregate idiom.
                if let Some(Some(Rel::Grouped { .. })) = self.rels.get(input) {
                    let Rel::Grouped { input: plan, keys } = self.take(input)? else {
                        unreachable!("checked above");
                    };
                    return self.compile_grouped_foreach(plan, keys, gens);
                }
                let plan = self.take_plan(input)?;
                let mut cols = Vec::with_capacity(gens.len());
                for (i, (gen, alias)) in gens.iter().enumerate() {
                    let name = alias.clone().unwrap_or_else(|| {
                        if let ExprAst::Col(c) = gen {
                            c.clone()
                        } else {
                            format!("col{i}")
                        }
                    });
                    let e = self.compile_expr(&plan, gen)?;
                    cols.push((name, e));
                }
                plan.foreach(cols)
            }
            OpAst::Group { input, keys } => {
                // Deferred: stored symbolically by the caller.
                let plan = self.take_plan(input)?;
                let key_cols = Self::key_columns(&plan, keys)?;
                return Ok(plan.group_by(key_cols));
            }
            OpAst::Join {
                left,
                left_keys,
                right,
                right_keys,
            } => {
                let lp = self.take_plan(left)?;
                let rp = self.take_plan(right)?;
                let lk = Self::key_columns(&lp, left_keys)?;
                let rk = Self::key_columns(&rp, right_keys)?;
                lp.join(rp, lk, rk)
            }
            OpAst::Order { input, keys } => {
                let plan = self.take_plan(input)?;
                let mut sort = Vec::with_capacity(keys.len());
                for (k, asc) in keys {
                    let idx = match k {
                        ExprAst::Col(name) => Self::resolve_col(&plan, name)?,
                        ExprAst::Pos(i) => *i,
                        _ => return Err(CompileError::Invalid("ORDER keys must be columns")),
                    };
                    sort.push((
                        idx,
                        if *asc {
                            SortOrder::Asc
                        } else {
                            SortOrder::Desc
                        },
                    ));
                }
                plan.order_by(sort)
            }
            OpAst::Distinct(input) => self.take_plan(input)?.distinct(),
            OpAst::Limit(input, n) => self.take_plan(input)?.limit(*n),
            OpAst::Union(inputs) => {
                let mut plans = Vec::with_capacity(inputs.len());
                for i in inputs {
                    plans.push(self.take_plan(i)?);
                }
                let first = plans.remove(0);
                first.union(plans)
            }
        })
    }

    /// Stores a GROUP symbolically so a following FOREACH can aggregate.
    pub(super) fn assign_group(
        &mut self,
        name: String,
        input: &str,
        keys: &[ExprAst],
    ) -> Result<(), CompileError> {
        let plan = self.take_plan(input)?;
        let key_cols = Self::key_columns(&plan, keys)?;
        self.insert(
            name,
            Rel::Grouped {
                input: plan,
                keys: key_cols,
            },
        );
        Ok(())
    }
}
