//! A Pig Latin front-end for the dataflow engine.
//!
//! The paper presents its analyses as Pig scripts (§5.2, §5.3):
//!
//! ```text
//! define CountClientEvents CountClientEvents('$EVENTS');
//! raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
//! generated = foreach raw generate CountClientEvents(symbols);
//! grouped = group generated all;
//! count = foreach grouped generate SUM(generated);
//! dump count;
//! ```
//!
//! This module lets those scripts run verbatim: a lexer ([`mod@lex`]), a
//! recursive-descent parser ([`mod@parse`]), and a compiler ([`compile`]) that
//! lowers statements onto [`crate::plan::Plan`] builders and executes them
//! with the engine. Loaders and UDFs are resolved through registries the
//! host populates ([`runner::ScriptRunner`]), and `$PARAMS` are substituted
//! before lexing, exactly like Pig's parameter substitution.
//!
//! The dialect is the subset the paper uses plus the obvious neighbours:
//! `DEFINE`, `LOAD … USING … AS`, `FILTER … BY`, `FOREACH … GENERATE`,
//! `GROUP … BY/ALL`, `JOIN … BY`, `ORDER … BY`, `DISTINCT`, `LIMIT`,
//! `UNION`, `DUMP`, and `STORE … INTO`.

pub mod ast;
pub mod compile;
pub mod lex;
pub mod parse;
pub mod runner;

pub use ast::{ExprAst, OpAst, Stmt};
pub use lex::{lex, Token};
pub use parse::parse;
pub use runner::{ScriptError, ScriptOutput, ScriptRunner};
