//! Abstract syntax of the Pig dialect.

/// A parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Column by name.
    Col(String),
    /// Column by position (`$0`).
    Pos(usize),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `*` (only valid inside `COUNT(*)`).
    Star,
    /// Binary operation, by operator text (`==`, `<=`, `+`, `and`, …).
    Bin(String, Box<ExprAst>, Box<ExprAst>),
    /// `NOT expr`.
    Not(Box<ExprAst>),
    /// Function call: a registered UDF alias or a built-in aggregate.
    Call {
        /// Function name as written.
        name: String,
        /// Arguments.
        args: Vec<ExprAst>,
    },
}

/// One relational operator on the right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum OpAst {
    /// `LOAD 'path' USING Loader('a', …) AS (c1, c2, …)`.
    Load {
        /// Warehouse directory.
        path: String,
        /// Loader name (resolved via the registry).
        loader: String,
        /// Loader constructor arguments.
        args: Vec<String>,
        /// Column names (may be empty if the loader has a fixed schema).
        schema: Vec<String>,
    },
    /// `FILTER input BY expr`.
    Filter {
        /// Input relation.
        input: String,
        /// Predicate.
        expr: ExprAst,
    },
    /// `FOREACH input GENERATE e [AS name], …`.
    Foreach {
        /// Input relation.
        input: String,
        /// Generated columns.
        gens: Vec<(ExprAst, Option<String>)>,
    },
    /// `GROUP input BY (c1, c2)` or `GROUP input ALL`.
    Group {
        /// Input relation.
        input: String,
        /// Key columns; empty = ALL.
        keys: Vec<ExprAst>,
    },
    /// `JOIN a BY (k…), b BY (k…)`.
    Join {
        /// Left relation.
        left: String,
        /// Left keys.
        left_keys: Vec<ExprAst>,
        /// Right relation.
        right: String,
        /// Right keys.
        right_keys: Vec<ExprAst>,
    },
    /// `ORDER input BY col [ASC|DESC], …`.
    Order {
        /// Input relation.
        input: String,
        /// Sort keys (column, ascending).
        keys: Vec<(ExprAst, bool)>,
    },
    /// `DISTINCT input`.
    Distinct(String),
    /// `LIMIT input n`.
    Limit(String, usize),
    /// `UNION a, b, …`.
    Union(Vec<String>),
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `DEFINE Alias UdfName('arg', …);`
    Define {
        /// The alias scripts call.
        alias: String,
        /// The registered UDF constructor.
        udf: String,
        /// Constructor arguments.
        args: Vec<String>,
    },
    /// `name = <op>;`
    Assign {
        /// Relation name being defined.
        name: String,
        /// The operator.
        op: OpAst,
    },
    /// `DUMP name;`
    Dump(String),
    /// `STORE name INTO 'path';`
    Store {
        /// Relation to store.
        rel: String,
        /// Destination directory.
        path: String,
    },
}
