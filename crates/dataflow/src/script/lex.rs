//! Tokenizer for the Pig dialect.

use std::fmt;

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal, unescaped.
    Str(String),
    /// Positional column reference `$3`.
    Positional(usize),
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` (also the `COUNT(*)` star)
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Positional(i) => write!(f, "${i}"),
            Token::Assign => f.write_str("="),
            Token::Eq => f.write_str("=="),
            Token::Ne => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Semi => f.write_str(";"),
        }
    }
}

/// Lexer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A byte that starts no token.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Byte offset.
        at: usize,
    },
    /// A string literal with no closing quote.
    UnterminatedString {
        /// Byte offset of the opening quote.
        at: usize,
    },
    /// `$` not followed by digits (parameters should have been substituted
    /// before lexing).
    BadPositional {
        /// Byte offset.
        at: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, at } => {
                write!(f, "unexpected character {ch:?} at byte {at}")
            }
            LexError::UnterminatedString { at } => {
                write!(f, "unterminated string starting at byte {at}")
            }
            LexError::BadPositional { at } => write!(
                f,
                "'$' at byte {at} is not a positional reference; did you \
                 forget to bind a parameter?"
            ),
        }
    }
}

impl std::error::Error for LexError {}

fn ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes a script. `--` line comments and `/* … */` block comments are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(LexError::UnterminatedString { at: start }),
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some('\\') if bytes.get(i + 1).is_some() => {
                            s.push(bytes[i + 1]);
                            i += 2;
                        }
                        Some(ch) => {
                            s.push(*ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '$' => {
                let start = i;
                i += 1;
                let ds = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i == ds {
                    return Err(LexError::BadPositional { at: start });
                }
                let n: usize = bytes[ds..i].iter().collect::<String>().parse().unwrap();
                out.push(Token::Positional(n));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if bytes.get(i) == Some(&'.')
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().expect("digits and dot")));
                } else {
                    out.push(Token::Int(text.parse().expect("digits")));
                }
            }
            c if ident_start(c) => {
                let start = i;
                while i < bytes.len() && ident_continue(bytes[i]) {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Eq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            other => return Err(LexError::UnexpectedChar { ch: other, at: i }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_papers_script_shape() {
        let toks =
            lex("raw = load '/session_sequences/x/' using SessionSequencesLoader();").unwrap();
        assert_eq!(toks[0], Token::Ident("raw".into()));
        assert_eq!(toks[1], Token::Assign);
        assert_eq!(toks[2], Token::Ident("load".into()));
        assert_eq!(toks[3], Token::Str("/session_sequences/x/".into()));
        assert!(matches!(toks.last(), Some(Token::Semi)));
    }

    #[test]
    fn operators_and_numbers() {
        let toks = lex("a == 1 != 2.5 <= $3 >= b + - * / ( ) , ;").unwrap();
        assert!(toks.contains(&Token::Eq));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Float(2.5)));
        assert!(toks.contains(&Token::Positional(3)));
        assert!(toks.contains(&Token::Int(1)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("a = b; -- trailing words\n/* block\ncomment */ dump a;").unwrap();
        let idents: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(idents.len(), 4); // a, b, dump, a
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r"x = 'it\'s';").unwrap();
        assert!(toks.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn errors() {
        assert!(matches!(
            lex("'unterminated"),
            Err(LexError::UnterminatedString { .. })
        ));
        assert!(matches!(lex("$NAME"), Err(LexError::BadPositional { .. })));
        assert!(matches!(lex("a # b"), Err(LexError::UnexpectedChar { .. })));
    }

    #[test]
    fn int_then_dot_without_digit_is_not_float() {
        // "1." would be Int(1) followed by an error for '.', so check that
        // at least plain ints survive adjacent punctuation.
        let toks = lex("limit x 10;").unwrap();
        assert!(toks.contains(&Token::Int(10)));
    }
}
