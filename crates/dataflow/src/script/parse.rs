//! Recursive-descent parser for the Pig dialect.

use std::fmt;

use super::ast::{ExprAst, OpAst, Stmt};
use super::lex::Token;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Input ended mid-statement.
    UnexpectedEnd,
    /// A token that does not fit the grammar at its position.
    Unexpected {
        /// The offending token, rendered.
        token: String,
        /// What the parser was trying to parse.
        context: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of script"),
            ParseError::Unexpected { token, context } => {
                write!(f, "unexpected token {token:?} while parsing {context}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> PResult<&'a Token> {
        let t = self.toks.get(self.pos).ok_or(ParseError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(t)
    }

    fn unexpected<T>(&self, token: &Token, context: &'static str) -> PResult<T> {
        Err(ParseError::Unexpected {
            token: token.to_string(),
            context,
        })
    }

    /// Consumes an identifier token, returning its text.
    fn ident(&mut self, context: &'static str) -> PResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => self.unexpected(other, context),
        }
    }

    /// True (and consume) if the next token is the keyword `kw`
    /// (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => self.unexpected(t, "keyword"),
                None => Err(ParseError::UnexpectedEnd),
            }
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token, context: &'static str) -> PResult<()> {
        let got = self.next()?;
        if *got == t {
            Ok(())
        } else {
            self.unexpected(got, context)
        }
    }

    fn string(&mut self, context: &'static str) -> PResult<String> {
        match self.next()? {
            Token::Str(s) => Ok(s.clone()),
            other => self.unexpected(other, context),
        }
    }

    /// `Name('a', 'b', 3)` → (name, args-as-strings). The parens are
    /// optional (`USING Loader` with no args).
    fn call_with_string_args(&mut self, context: &'static str) -> PResult<(String, Vec<String>)> {
        let name = self.ident(context)?;
        let mut args = Vec::new();
        if self.eat(&Token::LParen) && !self.eat(&Token::RParen) {
            loop {
                match self.next()? {
                    Token::Str(s) => args.push(s.clone()),
                    Token::Int(v) => args.push(v.to_string()),
                    Token::Float(v) => args.push(v.to_string()),
                    other => return self.unexpected(other, context),
                }
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(Token::Comma, context)?;
            }
        }
        Ok((name, args))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> PResult<ExprAst> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<ExprAst> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = ExprAst::Bin("or".into(), Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<ExprAst> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = ExprAst::Bin("and".into(), Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> PResult<ExprAst> {
        if self.eat_kw("not") {
            Ok(ExprAst::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> PResult<ExprAst> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => "==",
            Some(Token::Ne) => "!=",
            Some(Token::Lt) => "<",
            Some(Token::Le) => "<=",
            Some(Token::Gt) => ">",
            Some(Token::Ge) => ">=",
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(ExprAst::Bin(op.into(), Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> PResult<ExprAst> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => "+",
                Some(Token::Minus) => "-",
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = ExprAst::Bin(op.into(), Box::new(left), Box::new(right));
        }
    }

    fn mul_expr(&mut self) -> PResult<ExprAst> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => "*",
                Some(Token::Slash) => "/",
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.atom()?;
            left = ExprAst::Bin(op.into(), Box::new(left), Box::new(right));
        }
    }

    fn atom(&mut self) -> PResult<ExprAst> {
        match self.next()? {
            Token::Int(v) => Ok(ExprAst::Int(*v)),
            Token::Float(v) => Ok(ExprAst::Float(*v)),
            Token::Str(s) => Ok(ExprAst::Str(s.clone())),
            Token::Positional(i) => Ok(ExprAst::Pos(*i)),
            Token::Star => Ok(ExprAst::Star),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen, "parenthesized expression")?;
                Ok(e)
            }
            Token::Ident(name) => {
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(Token::Comma, "call arguments")?;
                        }
                    }
                    Ok(ExprAst::Call {
                        name: name.clone(),
                        args,
                    })
                } else {
                    Ok(ExprAst::Col(name.clone()))
                }
            }
            other => self.unexpected(other, "expression"),
        }
    }

    /// A parenthesized or bare key list: `(a, b)` or `a`.
    fn key_list(&mut self) -> PResult<Vec<ExprAst>> {
        if self.eat(&Token::LParen) {
            let mut keys = Vec::new();
            loop {
                keys.push(self.expr()?);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(Token::Comma, "key list")?;
            }
            Ok(keys)
        } else {
            Ok(vec![self.expr()?])
        }
    }

    // ---- statements ----

    fn op(&mut self) -> PResult<OpAst> {
        if self.eat_kw("load") {
            let path = self.string("LOAD path")?;
            self.expect_kw("using")?;
            let (loader, args) = self.call_with_string_args("LOAD USING")?;
            let mut schema = Vec::new();
            if self.eat_kw("as") {
                self.expect(Token::LParen, "AS schema")?;
                loop {
                    schema.push(self.ident("AS schema column")?);
                    if self.eat(&Token::RParen) {
                        break;
                    }
                    self.expect(Token::Comma, "AS schema")?;
                }
            }
            return Ok(OpAst::Load {
                path,
                loader,
                args,
                schema,
            });
        }
        if self.eat_kw("filter") {
            let input = self.ident("FILTER input")?;
            self.expect_kw("by")?;
            return Ok(OpAst::Filter {
                input,
                expr: self.expr()?,
            });
        }
        if self.eat_kw("foreach") {
            let input = self.ident("FOREACH input")?;
            self.expect_kw("generate")?;
            let mut gens = Vec::new();
            loop {
                let e = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident("GENERATE alias")?)
                } else {
                    None
                };
                gens.push((e, alias));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            return Ok(OpAst::Foreach { input, gens });
        }
        if self.eat_kw("group") {
            let input = self.ident("GROUP input")?;
            if self.eat_kw("all") {
                return Ok(OpAst::Group {
                    input,
                    keys: Vec::new(),
                });
            }
            self.expect_kw("by")?;
            return Ok(OpAst::Group {
                input,
                keys: self.key_list()?,
            });
        }
        if self.eat_kw("join") {
            let left = self.ident("JOIN left")?;
            self.expect_kw("by")?;
            let left_keys = self.key_list()?;
            self.expect(Token::Comma, "JOIN")?;
            let right = self.ident("JOIN right")?;
            self.expect_kw("by")?;
            let right_keys = self.key_list()?;
            return Ok(OpAst::Join {
                left,
                left_keys,
                right,
                right_keys,
            });
        }
        if self.eat_kw("order") {
            let input = self.ident("ORDER input")?;
            self.expect_kw("by")?;
            let mut keys = Vec::new();
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                keys.push((e, asc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            return Ok(OpAst::Order { input, keys });
        }
        if self.eat_kw("distinct") {
            return Ok(OpAst::Distinct(self.ident("DISTINCT input")?));
        }
        if self.eat_kw("limit") {
            let input = self.ident("LIMIT input")?;
            match self.next()? {
                Token::Int(n) if *n >= 0 => return Ok(OpAst::Limit(input, *n as usize)),
                other => return self.unexpected(other, "LIMIT count"),
            }
        }
        if self.eat_kw("union") {
            let mut inputs = vec![self.ident("UNION input")?];
            while self.eat(&Token::Comma) {
                inputs.push(self.ident("UNION input")?);
            }
            return Ok(OpAst::Union(inputs));
        }
        match self.peek() {
            Some(t) => self.unexpected(t, "relational operator"),
            None => Err(ParseError::UnexpectedEnd),
        }
    }

    fn statement(&mut self) -> PResult<Stmt> {
        if self.eat_kw("define") {
            let alias = self.ident("DEFINE alias")?;
            let (udf, args) = self.call_with_string_args("DEFINE constructor")?;
            self.expect(Token::Semi, "DEFINE")?;
            return Ok(Stmt::Define { alias, udf, args });
        }
        if self.eat_kw("dump") {
            let rel = self.ident("DUMP relation")?;
            self.expect(Token::Semi, "DUMP")?;
            return Ok(Stmt::Dump(rel));
        }
        if self.eat_kw("store") {
            let rel = self.ident("STORE relation")?;
            self.expect_kw("into")?;
            let path = self.string("STORE path")?;
            self.expect(Token::Semi, "STORE")?;
            return Ok(Stmt::Store { rel, path });
        }
        // name = op ;
        let name = self.ident("assignment")?;
        self.expect(Token::Assign, "assignment")?;
        let op = self.op()?;
        self.expect(Token::Semi, "assignment")?;
        Ok(Stmt::Assign { name, op })
    }
}

/// Parses a whole script into statements.
pub fn parse(tokens: &[Token]) -> Result<Vec<Stmt>, ParseError> {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.statement()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::lex::lex;
    use super::*;

    fn parse_src(src: &str) -> Vec<Stmt> {
        parse(&lex(src).expect("lexes")).expect("parses")
    }

    #[test]
    fn parses_the_papers_counting_script() {
        let stmts = parse_src(
            "define CountClientEvents CountClientEvents('web:home:mentions:*');\n\
             raw = load '/session_sequences/2012/08/21/' using SessionSequencesLoader();\n\
             generated = foreach raw generate CountClientEvents(sequence);\n\
             grouped = group generated all;\n\
             count = foreach grouped generate SUM(n);\n\
             dump count;",
        );
        assert_eq!(stmts.len(), 6);
        assert!(matches!(&stmts[0], Stmt::Define { alias, .. } if alias == "CountClientEvents"));
        assert!(matches!(
            &stmts[1],
            Stmt::Assign {
                op: OpAst::Load { .. },
                ..
            }
        ));
        assert!(
            matches!(&stmts[3], Stmt::Assign { op: OpAst::Group { keys, .. }, .. } if keys.is_empty())
        );
        assert!(matches!(&stmts[5], Stmt::Dump(r) if r == "count"));
    }

    #[test]
    fn parses_filters_with_precedence() {
        let stmts =
            parse_src("x = filter a by n > 1 and not action == 'click' or 2 + 3 * 4 == 14;");
        let Stmt::Assign {
            op: OpAst::Filter { expr, .. },
            ..
        } = &stmts[0]
        else {
            panic!("expected filter");
        };
        // Top level is OR.
        assert!(matches!(expr, ExprAst::Bin(op, _, _) if op == "or"));
    }

    #[test]
    fn parses_join_group_order_distinct_limit_union() {
        let stmts = parse_src(
            "j = join a by (u, s), b by (u2, s2);\n\
             g = group j by u;\n\
             o = order g by u desc, s asc;\n\
             d = distinct o;\n\
             l = limit d 10;\n\
             u = union a, b, l;\n\
             store u into '/out';",
        );
        assert_eq!(stmts.len(), 7);
        assert!(matches!(
            &stmts[0],
            Stmt::Assign { op: OpAst::Join { left_keys, .. }, .. } if left_keys.len() == 2
        ));
        assert!(matches!(
            &stmts[2],
            Stmt::Assign { op: OpAst::Order { keys, .. }, .. }
                if keys.len() == 2 && !keys[0].1 && keys[1].1
        ));
        assert!(matches!(&stmts[6], Stmt::Store { path, .. } if path == "/out"));
    }

    #[test]
    fn load_with_schema_and_loader_args() {
        let stmts = parse_src("r = load '/d' using CsvLoader(3) as (a, b, c);");
        let Stmt::Assign {
            op:
                OpAst::Load {
                    loader,
                    args,
                    schema,
                    ..
                },
            ..
        } = &stmts[0]
        else {
            panic!();
        };
        assert_eq!(loader, "CsvLoader");
        assert_eq!(args, &["3"]);
        assert_eq!(schema, &["a", "b", "c"]);
    }

    #[test]
    fn count_star_parses() {
        let stmts = parse_src("c = foreach g generate COUNT(*) as total;");
        let Stmt::Assign {
            op: OpAst::Foreach { gens, .. },
            ..
        } = &stmts[0]
        else {
            panic!();
        };
        assert!(matches!(
            &gens[0].0,
            ExprAst::Call { name, args } if name == "COUNT" && args == &[ExprAst::Star]
        ));
        assert_eq!(gens[0].1.as_deref(), Some("total"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&lex("x = ;").unwrap()).is_err());
        assert!(parse(&lex("dump").unwrap()).is_err());
        assert!(
            parse(&lex("x = load 'p';").unwrap()).is_err(),
            "USING required"
        );
        assert!(parse(&lex("filter a by x;").unwrap()).is_err(), "bare op");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let stmts = parse_src("R = LOAD '/d' USING L() AS (x); DUMP R;");
        assert_eq!(stmts.len(), 2);
    }
}
