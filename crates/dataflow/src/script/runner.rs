//! The script runner: registries, parameter substitution, execution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use uli_warehouse::WhPath;

use crate::exec::{Engine, QueryResult};
use crate::loader::Loader;
use crate::udf::ScalarUdf;

use super::ast::{OpAst, Stmt};
use super::compile::{CompileError, Env, Rel};
use super::lex::{lex, LexError};
use super::parse::{parse, ParseError};

/// Everything that can go wrong running a script.
#[derive(Debug)]
pub enum ScriptError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Parser failure.
    Parse(ParseError),
    /// Compilation failure.
    Compile(CompileError),
    /// An unbound `$PARAM`.
    UnboundParameter(String),
    /// Unknown loader in `USING`.
    UnknownLoader(String),
    /// Unknown UDF in `DEFINE`.
    UnknownUdf(String),
    /// A LOAD with neither an `AS` schema nor a loader default.
    MissingSchema(String),
    /// Execution failure.
    Exec(crate::error::DataflowError),
    /// STORE destination problems.
    Store(uli_warehouse::WarehouseError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex(e) => write!(f, "lex error: {e}"),
            ScriptError::Parse(e) => write!(f, "parse error: {e}"),
            ScriptError::Compile(e) => write!(f, "compile error: {e}"),
            ScriptError::UnboundParameter(p) => write!(f, "unbound parameter ${p}"),
            ScriptError::UnknownLoader(l) => write!(f, "unknown loader {l:?}"),
            ScriptError::UnknownUdf(u) => write!(f, "unknown UDF {u:?}"),
            ScriptError::MissingSchema(r) => {
                write!(f, "LOAD {r:?} needs an AS(...) schema or a loader default")
            }
            ScriptError::Exec(e) => write!(f, "execution error: {e}"),
            ScriptError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<CompileError> for ScriptError {
    fn from(e: CompileError) -> Self {
        ScriptError::Compile(e)
    }
}

/// The result of one `DUMP`.
#[derive(Debug, Clone)]
pub struct ScriptOutput {
    /// The dumped relation's name.
    pub relation: String,
    /// Its rows and stats.
    pub result: QueryResult,
}

type LoaderFactory =
    Box<dyn Fn(&[String]) -> Result<(Arc<dyn Loader>, Vec<String>), String> + Send + Sync>;
type UdfFactory = Box<dyn Fn(&[String]) -> Result<Arc<dyn ScalarUdf>, String> + Send + Sync>;

/// Runs Pig scripts against an [`Engine`].
pub struct ScriptRunner {
    engine: Engine,
    loaders: HashMap<String, LoaderFactory>,
    udfs: HashMap<String, UdfFactory>,
    params: HashMap<String, String>,
}

impl ScriptRunner {
    /// A runner with the built-in `CsvLoader(n)` registered.
    pub fn new(engine: Engine) -> ScriptRunner {
        let mut r = ScriptRunner {
            engine,
            loaders: HashMap::new(),
            udfs: HashMap::new(),
            params: HashMap::new(),
        };
        r.register_loader("CsvLoader", |args| {
            let fields: usize = args
                .first()
                .ok_or("CsvLoader needs a field count")?
                .parse()
                .map_err(|_| "CsvLoader field count must be an integer")?;
            Ok((
                Arc::new(crate::loader::CsvLoader::new(fields)) as Arc<dyn Loader>,
                Vec::new(),
            ))
        });
        r
    }

    /// Registers a loader constructor. It returns the loader plus its
    /// default schema (used when the script omits `AS (…)`).
    pub fn register_loader(
        &mut self,
        name: &str,
        factory: impl Fn(&[String]) -> Result<(Arc<dyn Loader>, Vec<String>), String>
            + Send
            + Sync
            + 'static,
    ) {
        self.loaders.insert(name.to_string(), Box::new(factory));
    }

    /// Registers a UDF constructor for `DEFINE`.
    pub fn register_udf(
        &mut self,
        name: &str,
        factory: impl Fn(&[String]) -> Result<Arc<dyn ScalarUdf>, String> + Send + Sync + 'static,
    ) {
        self.udfs.insert(name.to_string(), Box::new(factory));
    }

    /// Binds a `$NAME` parameter.
    pub fn set_param(&mut self, name: &str, value: &str) {
        self.params.insert(name.to_string(), value.to_string());
    }

    /// Pig-style parameter substitution: `$NAME` → bound value. `$<digits>`
    /// (positional columns) pass through untouched.
    fn substitute(&self, src: &str) -> Result<String, ScriptError> {
        let chars: Vec<char> = src.chars().collect();
        let mut out = String::with_capacity(src.len());
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '$' && chars.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic()) {
                let start = i + 1;
                let mut end = start;
                while end < chars.len() && (chars[end].is_ascii_alphanumeric() || chars[end] == '_')
                {
                    end += 1;
                }
                let name: String = chars[start..end].iter().collect();
                let value = self
                    .params
                    .get(&name)
                    .ok_or_else(|| ScriptError::UnboundParameter(name.clone()))?;
                out.push_str(value);
                i = end;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        Ok(out)
    }

    /// Runs a script; returns one [`ScriptOutput`] per `DUMP`, in order.
    pub fn run(&self, source: &str) -> Result<Vec<ScriptOutput>, ScriptError> {
        let substituted = self.substitute(source)?;
        let tokens = lex(&substituted).map_err(ScriptError::Lex)?;
        let stmts = parse(&tokens).map_err(ScriptError::Parse)?;

        let mut env = Env::new();
        let mut outputs = Vec::new();
        for stmt in &stmts {
            match stmt {
                Stmt::Define { alias, udf, args } => {
                    let factory = self
                        .udfs
                        .get(udf)
                        .ok_or_else(|| ScriptError::UnknownUdf(udf.clone()))?;
                    let built = factory(args).map_err(CompileError::Factory)?;
                    env.defines.insert(alias.clone(), built);
                }
                Stmt::Assign { name, op } => match op {
                    OpAst::Group { input, keys } => {
                        env.assign_group(name.clone(), input, keys)?;
                    }
                    other => {
                        let mut load = |path: &str,
                                        loader: &str,
                                        args: &[String],
                                        schema: &[String]|
                         -> Result<crate::plan::Plan, CompileError> {
                            let factory = self.loaders.get(loader).ok_or_else(|| {
                                CompileError::Factory(format!("unknown loader {loader:?}"))
                            })?;
                            let (built, default_schema) =
                                factory(args).map_err(CompileError::Factory)?;
                            let schema: Vec<String> = if schema.is_empty() {
                                default_schema
                            } else {
                                schema.to_vec()
                            };
                            if schema.is_empty() {
                                return Err(CompileError::Factory(format!(
                                    "loader {loader:?} needs an AS(...) schema"
                                )));
                            }
                            let dir = WhPath::parse(path.trim_end_matches('/')).map_err(|e| {
                                CompileError::Factory(format!("bad LOAD path: {e}"))
                            })?;
                            Ok(crate::plan::Plan::load(dir, built, schema))
                        };
                        let plan = env.compile_op(other, &mut load)?;
                        env.insert(name.clone(), Rel::Plan(plan));
                    }
                },
                Stmt::Dump(rel) => {
                    let plan = env.take_plan(rel)?;
                    let result = self.engine.run(&plan).map_err(ScriptError::Exec)?;
                    outputs.push(ScriptOutput {
                        relation: rel.clone(),
                        result,
                    });
                }
                Stmt::Store { rel, path } => {
                    let plan = env.take_plan(rel)?;
                    let result = self.engine.run(&plan).map_err(ScriptError::Exec)?;
                    let dir =
                        WhPath::parse(path.trim_end_matches('/')).map_err(ScriptError::Store)?;
                    let file = dir.child("part-00000").map_err(ScriptError::Store)?;
                    let mut w = self
                        .engine
                        .warehouse()
                        .create(&file)
                        .map_err(ScriptError::Store)?;
                    for row in &result.rows {
                        let line: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        w.append_record(line.join(",").as_bytes());
                    }
                    w.finish().map_err(ScriptError::Store)?;
                }
            }
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use uli_warehouse::Warehouse;

    fn fixture() -> Warehouse {
        let wh = Warehouse::new();
        let dir = WhPath::parse("/logs/t").unwrap();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        // user, action, amount
        for i in 0..100i64 {
            let action = if i % 4 == 0 { "click" } else { "impression" };
            w.append_record(format!("{},{},{}", i % 5, action, i).as_bytes());
        }
        w.finish().unwrap();
        wh
    }

    fn runner() -> ScriptRunner {
        ScriptRunner::new(Engine::new(fixture()))
    }

    #[test]
    fn load_filter_group_aggregate_dump() {
        let out = runner()
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (user, action, amount);\n\
                 clicks = filter raw by action == 'click';\n\
                 grouped = group clicks all;\n\
                 counted = foreach grouped generate COUNT(*) as n;\n\
                 dump counted;",
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].relation, "counted");
        assert_eq!(out[0].result.rows, vec![vec![Value::Int(25)]]);
        // One shuffle job, combiner-friendly.
        assert_eq!(out[0].result.stats.mr_jobs, 1);
    }

    #[test]
    fn group_by_key_with_sum_and_order() {
        let out = runner()
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (user, action, amount);\n\
                 g = group raw by user;\n\
                 sums = foreach g generate user, SUM(amount) as total;\n\
                 top = order sums by total desc;\n\
                 dump top;",
            )
            .unwrap();
        let rows = &out[0].result.rows;
        assert_eq!(rows.len(), 5);
        // Descending totals.
        let totals: Vec<i64> = rows.iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(totals.windows(2).all(|w| w[0] >= w[1]));
        // Grand total is 0+1+…+99.
        assert_eq!(totals.iter().sum::<i64>(), 4950);
    }

    #[test]
    fn parameters_substitute() {
        let mut r = runner();
        r.set_param("DIR", "/logs/t");
        r.set_param("WHO", "click");
        let out = r
            .run(
                "raw = load '$DIR' using CsvLoader(3) as (user, action, amount);\n\
                 x = filter raw by action == '$WHO';\n\
                 g = group x all;\n\
                 c = foreach g generate COUNT(*);\n\
                 dump c;",
            )
            .unwrap();
        assert_eq!(out[0].result.rows[0][0], Value::Int(25));
    }

    #[test]
    fn unbound_parameter_errors() {
        let err = runner()
            .run("raw = load '$NOPE' using CsvLoader(1) as (x);")
            .unwrap_err();
        assert!(matches!(err, ScriptError::UnboundParameter(p) if p == "NOPE"));
    }

    #[test]
    fn define_and_call_udf() {
        struct Times2;
        impl ScalarUdf for Times2 {
            fn name(&self) -> &'static str {
                "Times2"
            }
            fn eval(&self, args: &[Value]) -> crate::error::DataflowResult<Value> {
                Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
            }
        }
        let mut r = runner();
        r.register_udf("Times2", |_args| Ok(Arc::new(Times2) as Arc<dyn ScalarUdf>));
        let out = r
            .run(
                "define Double Times2();\n\
                 raw = load '/logs/t' using CsvLoader(3) as (user, action, amount);\n\
                 d = foreach raw generate Double(amount) as twice;\n\
                 g = group d all;\n\
                 s = foreach g generate SUM(twice);\n\
                 dump s;",
            )
            .unwrap();
        assert_eq!(out[0].result.rows[0][0], Value::Int(9900));
    }

    #[test]
    fn join_two_relations() {
        let wh = fixture();
        // A tiny dimension table.
        let dir = WhPath::parse("/dim").unwrap();
        let mut w = wh.create(&dir.child("part-0").unwrap()).unwrap();
        for u in 0..5 {
            w.append_record(format!("{u},country{u}").as_bytes());
        }
        w.finish().unwrap();
        let r = ScriptRunner::new(Engine::new(wh));
        let out = r
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (user, action, amount);\n\
                 dim = load '/dim' using CsvLoader(2) as (uid, country);\n\
                 j = join raw by user, dim by uid;\n\
                 g = group j all;\n\
                 c = foreach g generate COUNT(*);\n\
                 dump c;",
            )
            .unwrap();
        assert_eq!(out[0].result.rows[0][0], Value::Int(100));
    }

    #[test]
    fn store_writes_csv() {
        let wh = fixture();
        let r = ScriptRunner::new(Engine::new(wh.clone()));
        r.run(
            "raw = load '/logs/t' using CsvLoader(3) as (user, action, amount);\n\
             top = limit raw 3;\n\
             store top into '/out';",
        )
        .unwrap();
        let stored = wh
            .open(&WhPath::parse("/out/part-00000").unwrap())
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(stored.len(), 3);
        assert!(String::from_utf8(stored[0].clone()).unwrap().contains(','));
    }

    #[test]
    fn consumed_relation_errors_clearly() {
        let err = runner()
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (a, b, c);\n\
                 x = filter raw by a == 1;\n\
                 y = filter raw by a == 2;",
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ScriptError::Compile(CompileError::RelationConsumed(r)) if r == "raw"
        ));
    }

    #[test]
    fn aggregate_outside_group_errors() {
        let err = runner()
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (a, b, c);\n\
                 x = foreach raw generate SUM(c);",
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ScriptError::Compile(CompileError::AggregateOutsideGroup(_))
        ));
    }

    #[test]
    fn dump_of_plain_group_materializes_bags() {
        let out = runner()
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (user, action, amount);\n\
                 g = group raw by user;\n\
                 dump g;",
            )
            .unwrap();
        assert_eq!(out[0].result.rows.len(), 5);
        assert!(out[0].result.rows[0].last().unwrap().as_bag().is_some());
    }

    #[test]
    fn unknown_column_mentions_schema() {
        let err = runner()
            .run(
                "raw = load '/logs/t' using CsvLoader(3) as (a, b, c);\n\
                 x = filter raw by missing == 1;",
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing"));
        assert!(msg.contains("\"a\""));
    }
}
