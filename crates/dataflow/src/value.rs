//! The data model: dynamically-typed values and tuples.
//!
//! Mirrors Pig Latin's model: atoms, tuples, and bags. Values order totally
//! (doubles via `total_cmp`, heterogeneous values by type rank) so they can
//! key group-bys and sorts.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A row: a fixed-width vector of values.
pub type Tuple = Vec<Value>;

/// A dynamically-typed value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-ish null; sorts before everything.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Nested tuple.
    Tuple(Tuple),
    /// A bag of tuples — the output of GROUP.
    Bag(Vec<Tuple>),
    /// String-keyed map (Pig's `map` type; client event details).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Type rank used to order heterogeneous values.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Double(_) => 3,
            Value::Str(_) => 4,
            Value::Tuple(_) => 5,
            Value::Bag(_) => 6,
            Value::Map(_) => 7,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (ints only; no coercion).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view: ints widen to doubles.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Bag view.
    pub fn as_bag(&self) -> Option<&[Tuple]> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// Estimated serialized size in bytes, used for shuffle accounting.
    pub fn wire_size(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 5, // average varint-ish
            Value::Double(_) => 8,
            Value::Str(s) => 2 + s.len() as u64,
            Value::Tuple(t) => 2 + t.iter().map(Value::wire_size).sum::<u64>(),
            Value::Bag(b) => {
                4 + b
                    .iter()
                    .map(|t| 2 + t.iter().map(Value::wire_size).sum::<u64>())
                    .sum::<u64>()
            }
            Value::Map(m) => {
                4 + m
                    .iter()
                    .map(|(k, v)| 2 + k.len() as u64 + v.wire_size())
                    .sum::<u64>()
            }
        }
    }
}

/// Estimated serialized size of a whole tuple.
pub fn tuple_wire_size(t: &[Value]) -> u64 {
    2 + t.iter().map(Value::wire_size).sum::<u64>()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            // Cross-numeric comparison: widen to double.
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (Bag(a), Bag(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.iter().cmp(b.iter()),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Tuple(t) => {
                f.write_str("(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
            Value::Bag(b) => write!(f, "{{{} tuples}}", b.len()),
            Value::Map(m) => {
                f.write_str("[")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{k}#{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Double(1.5) < Value::Double(2.5));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn cross_numeric_comparison_widens() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert!(Value::Int(1) < Value::Double(1.5));
        assert!(Value::Double(2.5) > Value::Int(2));
    }

    #[test]
    fn null_sorts_first_and_ranks_order_types() {
        let mut vals = [
            Value::str("s"),
            Value::Int(0),
            Value::Null,
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(0));
        assert_eq!(vals[3], Value::str("s"));
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Double(f64::NAN);
        // total_cmp puts NaN above +inf; the point is no panic and
        // reflexive equality.
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(f64::INFINITY) < nan);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_double(), Some(5.0));
        assert_eq!(Value::Double(2.5).as_double(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn wire_size_scales_with_content() {
        assert!(Value::str("abcdef").wire_size() > Value::str("a").wire_size());
        let bag = Value::Bag(vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        assert!(bag.wire_size() > Value::Int(1).wire_size());
        assert_eq!(tuple_wire_size(&[Value::Int(1), Value::Int(2)]), 2 + 5 + 5);
    }

    #[test]
    fn display_renders_tuples() {
        let t = Value::Tuple(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.to_string(), "(1,x)");
    }
}
