//! Spillable operator state: external row sort and external aggregation.
//!
//! When the engine has a memory budget, the operators whose state grows
//! with the input — ORDER, GROUP, DISTINCT, and the aggregate hash map —
//! route through this module. Buffered rows/states are accounted against a
//! [`MemoryTracker`] in the same deterministic wire-size currency as the
//! engine's shuffle accounting; when the next insert would exceed the
//! budget, the buffer is sorted and written to a temporary run file in
//! warehouse record-file format, and `finish` k-way merges the runs with
//! the in-memory remainder. A sequence number assigned at insert breaks
//! every comparison tie, so the merged order equals what a *stable*
//! in-memory sort would produce — the spilled path is byte-identical to
//! the unspilled one at any budget and any worker count.
//!
//! Cleanup is RAII: run files live in a scratch directory owned by a
//! [`SpillDirGuard`], deleted when the sorter/stream drops — on success,
//! error, and panic paths alike.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use uli_warehouse::{
    scratch_dir, MemoryTracker, RecordFileReader, SpillDirGuard, Warehouse, WhPath, ENTRY_OVERHEAD,
};

use crate::error::{DataflowError, DataflowResult};
use crate::plan::{Agg, SortOrder};
use crate::sketch::{Hll, PercentileSketch};
use crate::udf::AggState;
use crate::value::{tuple_wire_size, Tuple, Value};
use crate::wire::{decode_tuple, decode_value_prefix, encode_tuple, encode_value};

/// How spilled rows order.
#[derive(Debug, Clone)]
pub(crate) enum RowOrder {
    /// ORDER BY / GROUP BY: compare the listed columns in order.
    Cols(Vec<(usize, SortOrder)>),
    /// DISTINCT: compare whole tuples (`Vec<Value>` lexicographic order,
    /// exactly the `BTreeMap<Tuple, ()>` key order of the in-memory path).
    WholeTuple,
}

impl RowOrder {
    /// Compares two rows under this order (without the sequence tie-break).
    pub(crate) fn cmp_rows(&self, a: &Tuple, b: &Tuple) -> Ordering {
        match self {
            RowOrder::Cols(keys) => {
                for (k, order) in keys {
                    let cmp = a[*k].cmp(&b[*k]);
                    let cmp = match order {
                        SortOrder::Asc => cmp,
                        SortOrder::Desc => cmp.reverse(),
                    };
                    if cmp != Ordering::Equal {
                        return cmp;
                    }
                }
                Ordering::Equal
            }
            RowOrder::WholeTuple => a.cmp(b),
        }
    }

    fn cmp_entries(&self, a: &(u64, Tuple), b: &(u64, Tuple)) -> Ordering {
        self.cmp_rows(&a.1, &b.1).then(a.0.cmp(&b.0))
    }
}

/// An external merge sort over rows: in-memory until the budget says spill.
pub(crate) struct RowSpillSorter {
    warehouse: Warehouse,
    tracker: MemoryTracker,
    guard: SpillDirGuard,
    order: RowOrder,
    runs: Vec<WhPath>,
    /// `(seq, row)` — seq is the arrival index, the stability tie-break.
    buf: Vec<(u64, Tuple)>,
    buf_bytes: u64,
    next_seq: u64,
}

impl RowSpillSorter {
    pub(crate) fn new(
        warehouse: Warehouse,
        tracker: MemoryTracker,
        order: RowOrder,
        label: &str,
    ) -> RowSpillSorter {
        let dir = scratch_dir(label);
        let guard = SpillDirGuard::new(warehouse.clone(), dir);
        RowSpillSorter {
            warehouse,
            tracker,
            guard,
            order,
            runs: Vec::new(),
            buf: Vec::new(),
            buf_bytes: 0,
            next_seq: 0,
        }
    }

    /// Adds one row, spilling the buffer first if the budget would be
    /// exceeded.
    pub(crate) fn push(&mut self, row: Tuple) -> DataflowResult<()> {
        let cost = tuple_wire_size(&row) + ENTRY_OVERHEAD;
        if self.tracker.would_exceed(cost) && !self.buf.is_empty() {
            self.spill()?;
        }
        self.tracker.grow(cost);
        self.buf_bytes += cost;
        self.buf.push((self.next_seq, row));
        self.next_seq += 1;
        Ok(())
    }

    fn spill(&mut self) -> DataflowResult<()> {
        let order = self.order.clone();
        self.buf.sort_by(|a, b| order.cmp_entries(a, b));
        let path = self
            .guard
            .dir()
            .child(&format!("run-{:05}", self.runs.len()))
            .expect("valid run name");
        let mut w = self.warehouse.create(&path)?;
        let mut record = Vec::new();
        for (seq, row) in &self.buf {
            record.clear();
            record.extend_from_slice(&seq.to_be_bytes());
            record.extend_from_slice(&encode_tuple(row));
            w.append_record(&record);
        }
        let meta = w.finish()?;
        self.tracker.note_spill(meta.compressed_bytes);
        self.tracker.shrink(self.buf_bytes);
        self.buf_bytes = 0;
        self.buf.clear();
        self.runs.push(path);
        Ok(())
    }

    /// Finishes the sort; the returned stream owns the scratch directory.
    pub(crate) fn finish(mut self) -> DataflowResult<SortedRowStream> {
        let order = self.order.clone();
        self.buf.sort_by(|a, b| order.cmp_entries(a, b));
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            let mut r = RowRunReader {
                reader: self.warehouse.open(path)?,
                next: None,
            };
            r.advance()?;
            readers.push(r);
        }
        Ok(SortedRowStream {
            readers,
            tail: self.buf.into_iter(),
            tail_next: None,
            tail_bytes: self.buf_bytes,
            order: self.order,
            tracker: self.tracker,
            _guard: self.guard,
        })
    }
}

struct RowRunReader {
    reader: RecordFileReader,
    next: Option<(u64, Tuple)>,
}

impl RowRunReader {
    fn advance(&mut self) -> DataflowResult<()> {
        self.next = match self.reader.next_record()? {
            Some(record) => {
                if record.len() < 8 {
                    return Err(DataflowError::TypeError {
                        context: "spill run decode",
                    });
                }
                let seq = u64::from_be_bytes(record[..8].try_into().unwrap());
                Some((seq, decode_tuple(&record[8..])?))
            }
            None => None,
        };
        Ok(())
    }
}

/// Merged ordered output of a [`RowSpillSorter`].
pub(crate) struct SortedRowStream {
    readers: Vec<RowRunReader>,
    tail: std::vec::IntoIter<(u64, Tuple)>,
    tail_next: Option<(u64, Tuple)>,
    tail_bytes: u64,
    order: RowOrder,
    tracker: MemoryTracker,
    _guard: SpillDirGuard,
}

impl SortedRowStream {
    /// The next row in sort order (sequence numbers break ties, so equal
    /// keys come back in arrival order).
    pub(crate) fn next_row(&mut self) -> DataflowResult<Option<Tuple>> {
        if self.tail_next.is_none() {
            self.tail_next = self.tail.next();
        }
        let mut best: Option<usize> = None;
        for (i, r) in self.readers.iter().enumerate() {
            if let Some(e) = &r.next {
                let better = match best {
                    None => true,
                    Some(b) => {
                        self.order
                            .cmp_entries(e, self.readers[b].next.as_ref().expect("peeked"))
                            == Ordering::Less
                    }
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let tail_wins = match (&self.tail_next, best) {
            (Some(t), Some(b)) => {
                self.order
                    .cmp_entries(t, self.readers[b].next.as_ref().expect("peeked"))
                    == Ordering::Less
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        if tail_wins {
            return Ok(self.tail_next.take().map(|(_, row)| row));
        }
        match best {
            Some(i) => {
                let entry = self.readers[i].next.take();
                self.readers[i].advance()?;
                Ok(entry.map(|(_, row)| row))
            }
            None => Ok(None),
        }
    }
}

impl Drop for SortedRowStream {
    fn drop(&mut self) {
        self.tracker.shrink(self.tail_bytes);
    }
}

// ---------------------------------------------------------------------------
// Aggregate state costs and serialization
// ---------------------------------------------------------------------------

/// Fixed cost charged when a group's state for `agg` is created.
pub(crate) fn state_base_cost(agg: &Agg) -> u64 {
    use crate::udf::AggFunc;
    match agg.func {
        AggFunc::Count => 16,
        AggFunc::Sum | AggFunc::Avg => 24,
        AggFunc::Min | AggFunc::Max => 16,
        AggFunc::CountDistinct => 32,
        AggFunc::ApproxCountDistinct => Hll::cost_bytes() + 16,
        AggFunc::ApproxPercentile(_) => PercentileSketch::cost_bytes() + 16,
    }
}

/// Variable (beyond base) cost of a state right now. O(1) for every
/// algebraic state; O(set) for `CountDistinct`, which only the serial
/// reduce path pays.
fn state_dyn_cost(s: &AggState) -> i64 {
    match s {
        AggState::Min(v) | AggState::Max(v) => v.as_ref().map_or(0, |v| v.wire_size() as i64),
        AggState::CountDistinct(set) => set.iter().map(|v| v.wire_size() as i64 + 16).sum::<i64>(),
        _ => 0,
    }
}

/// Accumulates `value` into `state` and returns the byte-cost delta.
pub(crate) fn accumulate_costed(state: &mut AggState, value: &Value) -> DataflowResult<i64> {
    if let AggState::CountDistinct(set) = &*state {
        let delta = if !value.is_null() && !set.contains(value) {
            value.wire_size() as i64 + 16
        } else {
            0
        };
        state.accumulate(value)?;
        return Ok(delta);
    }
    let sized = matches!(state, AggState::Min(_) | AggState::Max(_));
    let before = if sized { state_dyn_cost(state) } else { 0 };
    state.accumulate(value)?;
    Ok(if sized {
        state_dyn_cost(state) - before
    } else {
        0
    })
}

/// Merges `other` into `state` and returns the byte-cost delta.
pub(crate) fn merge_costed(state: &mut AggState, other: AggState) -> DataflowResult<i64> {
    let before = state_dyn_cost(state);
    state.merge(other)?;
    Ok(state_dyn_cost(state) - before)
}

const ST_COUNT: u8 = 0;
const ST_SUM: u8 = 1;
const ST_MIN: u8 = 2;
const ST_MAX: u8 = 3;
const ST_AVG: u8 = 4;
const ST_COUNT_DISTINCT: u8 = 5;
const ST_APPROX_DISTINCT: u8 = 6;
const ST_APPROX_PERCENTILE: u8 = 7;

fn corrupt() -> DataflowError {
    DataflowError::TypeError {
        context: "spill state decode",
    }
}

/// Serializes one aggregate state for a run file.
pub(crate) fn encode_state(state: &AggState, out: &mut Vec<u8>) {
    match state {
        AggState::Count(n) => {
            out.push(ST_COUNT);
            out.extend_from_slice(&n.to_be_bytes());
        }
        AggState::Sum {
            total,
            any,
            all_int,
        } => {
            out.push(ST_SUM);
            out.extend_from_slice(&total.to_bits().to_be_bytes());
            out.push(*any as u8);
            out.push(*all_int as u8);
        }
        AggState::Min(v) | AggState::Max(v) => {
            out.push(if matches!(state, AggState::Min(_)) {
                ST_MIN
            } else {
                ST_MAX
            });
            match v {
                // `accumulate` skips nulls, so Some(Null) never occurs and
                // Null can mark "no value yet".
                Some(v) => encode_value(v, out),
                None => encode_value(&Value::Null, out),
            }
        }
        AggState::Avg { total, n } => {
            out.push(ST_AVG);
            out.extend_from_slice(&total.to_bits().to_be_bytes());
            out.extend_from_slice(&n.to_be_bytes());
        }
        AggState::CountDistinct(set) => {
            out.push(ST_COUNT_DISTINCT);
            out.extend_from_slice(&(set.len() as u32).to_be_bytes());
            for v in set {
                encode_value(v, out);
            }
        }
        AggState::ApproxCountDistinct(hll) => {
            out.push(ST_APPROX_DISTINCT);
            out.extend_from_slice(&hll.to_bytes());
        }
        AggState::ApproxPercentile { q_bp, sketch } => {
            out.push(ST_APPROX_PERCENTILE);
            out.extend_from_slice(&q_bp.to_be_bytes());
            out.extend_from_slice(&sketch.to_bytes());
        }
    }
}

/// Inverse of [`encode_state`].
pub(crate) fn decode_state(bytes: &[u8]) -> DataflowResult<AggState> {
    let (&tag, rest) = bytes.split_first().ok_or_else(corrupt)?;
    Ok(match tag {
        ST_COUNT => AggState::Count(i64::from_be_bytes(rest.try_into().map_err(|_| corrupt())?)),
        ST_SUM => {
            if rest.len() != 10 {
                return Err(corrupt());
            }
            AggState::Sum {
                total: f64::from_bits(u64::from_be_bytes(rest[..8].try_into().unwrap())),
                any: rest[8] != 0,
                all_int: rest[9] != 0,
            }
        }
        ST_MIN | ST_MAX => {
            let (v, used) = decode_value_prefix(rest)?;
            if used != rest.len() {
                return Err(corrupt());
            }
            let v = if v.is_null() { None } else { Some(v) };
            if tag == ST_MIN {
                AggState::Min(v)
            } else {
                AggState::Max(v)
            }
        }
        ST_AVG => {
            if rest.len() != 16 {
                return Err(corrupt());
            }
            AggState::Avg {
                total: f64::from_bits(u64::from_be_bytes(rest[..8].try_into().unwrap())),
                n: i64::from_be_bytes(rest[8..].try_into().unwrap()),
            }
        }
        ST_COUNT_DISTINCT => {
            if rest.len() < 4 {
                return Err(corrupt());
            }
            let n = u32::from_be_bytes(rest[..4].try_into().unwrap()) as usize;
            let mut pos = 4;
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..n {
                let (v, used) = decode_value_prefix(&rest[pos..])?;
                pos += used;
                set.insert(v);
            }
            if pos != rest.len() {
                return Err(corrupt());
            }
            AggState::CountDistinct(set)
        }
        ST_APPROX_DISTINCT => {
            AggState::ApproxCountDistinct(Hll::from_bytes(rest).ok_or_else(corrupt)?)
        }
        ST_APPROX_PERCENTILE => {
            if rest.len() < 4 {
                return Err(corrupt());
            }
            AggState::ApproxPercentile {
                q_bp: u32::from_be_bytes(rest[..4].try_into().unwrap()),
                sketch: PercentileSketch::from_bytes(&rest[4..]).ok_or_else(corrupt)?,
            }
        }
        _ => return Err(corrupt()),
    })
}

// ---------------------------------------------------------------------------
// External aggregation
// ---------------------------------------------------------------------------

/// A budgeted group→states map that spills key-sorted runs.
///
/// Spilled partial states merge at `finish` in run order (earliest run
/// first, the in-memory remainder last), which is the chronological order
/// rows arrived in — exact for integer aggregates; floating-point sums can
/// differ in final bits from the single-pass order (the usual FP
/// non-associativity caveat, shared with the parallel combine path).
pub(crate) struct AggSpiller<'a> {
    warehouse: Warehouse,
    tracker: MemoryTracker,
    guard: SpillDirGuard,
    runs: Vec<WhPath>,
    map: BTreeMap<Vec<Value>, Vec<AggState>>,
    map_bytes: u64,
    aggs: &'a [Agg],
}

impl<'a> AggSpiller<'a> {
    pub(crate) fn new(
        warehouse: Warehouse,
        tracker: MemoryTracker,
        aggs: &'a [Agg],
    ) -> AggSpiller<'a> {
        let dir = scratch_dir("aggregate");
        let guard = SpillDirGuard::new(warehouse.clone(), dir);
        AggSpiller {
            warehouse,
            tracker,
            guard,
            runs: Vec::new(),
            map: BTreeMap::new(),
            map_bytes: 0,
            aggs,
        }
    }

    fn new_key_cost(&self, key: &[Value]) -> u64 {
        tuple_wire_size(key) + self.aggs.iter().map(state_base_cost).sum::<u64>() + ENTRY_OVERHEAD
    }

    fn charge(&mut self, delta: i64) {
        if delta >= 0 {
            self.tracker.grow(delta as u64);
            self.map_bytes += delta as u64;
        } else {
            self.tracker.shrink((-delta) as u64);
            self.map_bytes = self.map_bytes.saturating_sub((-delta) as u64);
        }
    }

    /// Spills first when buffering `incoming` more bytes would exceed the
    /// budget (an upper-bound estimate keeps the peak under budget).
    fn reserve(&mut self, incoming: u64) -> DataflowResult<()> {
        if self.tracker.would_exceed(incoming) && !self.map.is_empty() {
            self.spill()?;
        }
        Ok(())
    }

    /// Accumulates one row into its group (serial reduce path).
    pub(crate) fn accumulate_row(&mut self, key: Vec<Value>, row: &Tuple) -> DataflowResult<()> {
        // Upper bound for what this row can add: a fresh key entry plus one
        // value per aggregate.
        let bound = if self.map.contains_key(&key) {
            self.aggs
                .iter()
                .map(|a| row.get(a.col).map_or(1, |v| v.wire_size()) + 16)
                .sum()
        } else {
            self.new_key_cost(&key)
                + self
                    .aggs
                    .iter()
                    .map(|a| row.get(a.col).map_or(1, |v| v.wire_size()) + 16)
                    .sum::<u64>()
        };
        self.reserve(bound)?;
        if !self.map.contains_key(&key) {
            let cost = self.new_key_cost(&key);
            self.map.insert(
                key.clone(),
                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
            );
            self.charge(cost as i64);
        }
        let mut delta = 0i64;
        let states = self.map.get_mut(&key).expect("just inserted");
        for (agg, state) in self.aggs.iter().zip(states.iter_mut()) {
            let v = row.get(agg.col).cloned().unwrap_or(Value::Null);
            delta += accumulate_costed(state, &v)?;
        }
        self.charge(delta);
        Ok(())
    }

    /// Merges one combiner partial into its group (parallel combine path;
    /// algebraic aggregates only, so all deltas are O(1)).
    pub(crate) fn merge_partial(
        &mut self,
        key: Vec<Value>,
        states: Vec<AggState>,
    ) -> DataflowResult<()> {
        if let Some(acc) = self.map.get_mut(&key) {
            let mut delta = 0i64;
            for (a, s) in acc.iter_mut().zip(states) {
                delta += merge_costed(a, s)?;
            }
            self.charge(delta);
            return Ok(());
        }
        let cost = self.new_key_cost(&key)
            + states
                .iter()
                .map(|s| state_dyn_cost(s).max(0) as u64)
                .sum::<u64>();
        self.reserve(cost)?;
        self.map.insert(key, states);
        self.charge(cost as i64);
        Ok(())
    }

    fn spill(&mut self) -> DataflowResult<()> {
        let path = self
            .guard
            .dir()
            .child(&format!("run-{:05}", self.runs.len()))
            .expect("valid run name");
        let mut w = self.warehouse.create(&path)?;
        let mut record = Vec::new();
        let map = std::mem::take(&mut self.map);
        for (key, states) in map {
            record.clear();
            let key_bytes = encode_tuple(&key);
            record.extend_from_slice(&(key_bytes.len() as u32).to_be_bytes());
            record.extend_from_slice(&key_bytes);
            record.extend_from_slice(&(states.len() as u32).to_be_bytes());
            let mut state_bytes = Vec::new();
            for s in &states {
                state_bytes.clear();
                encode_state(s, &mut state_bytes);
                record.extend_from_slice(&(state_bytes.len() as u32).to_be_bytes());
                record.extend_from_slice(&state_bytes);
            }
            w.append_record(&record);
        }
        let meta = w.finish()?;
        self.tracker.note_spill(meta.compressed_bytes);
        self.tracker.shrink(self.map_bytes);
        self.map_bytes = 0;
        self.runs.push(path);
        Ok(())
    }

    /// Merges runs and the in-memory remainder into finished output rows,
    /// in ascending key order. Replicates the in-memory reduce's GROUP-ALL
    /// semantics: empty input with no keys yields one row of empty
    /// aggregates.
    pub(crate) fn finish(mut self, group_keys_empty: bool) -> DataflowResult<Vec<Tuple>> {
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            let mut r = AggRunReader {
                reader: self.warehouse.open(path)?,
                next: None,
            };
            r.advance()?;
            readers.push(r);
        }
        let map = std::mem::take(&mut self.map);
        let mut tail = map.into_iter().peekable();
        let mut out: Vec<Tuple> = Vec::new();
        loop {
            // Smallest key across runs (run order for ties) and the tail.
            let mut min_key: Option<Vec<Value>> = None;
            for r in &readers {
                if let Some((k, _)) = &r.next {
                    if min_key.as_ref().is_none_or(|m| k < m) {
                        min_key = Some(k.clone());
                    }
                }
            }
            if let Some((k, _)) = tail.peek() {
                if min_key.as_ref().is_none_or(|m| k < m) {
                    min_key = Some(k.clone());
                }
            }
            let Some(key) = min_key else { break };
            // Merge every holder of this key, earliest run first, tail last
            // — chronological arrival order.
            let mut acc: Option<Vec<AggState>> = None;
            for r in &mut readers {
                if r.next.as_ref().is_some_and(|(k, _)| *k == key) {
                    let (_, states) = r.next.take().expect("peeked");
                    acc = Some(match acc {
                        None => states,
                        Some(mut a) => {
                            for (x, s) in a.iter_mut().zip(states) {
                                x.merge(s)?;
                            }
                            a
                        }
                    });
                    r.advance()?;
                }
            }
            if tail.peek().is_some_and(|(k, _)| *k == key) {
                let (_, states) = tail.next().expect("peeked");
                acc = Some(match acc {
                    None => states,
                    Some(mut a) => {
                        for (x, s) in a.iter_mut().zip(states) {
                            x.merge(s)?;
                        }
                        a
                    }
                });
            }
            let states = acc.expect("key came from somewhere");
            let mut row = key;
            row.extend(states.into_iter().map(AggState::finish));
            out.push(row);
        }
        if out.is_empty() && group_keys_empty {
            let states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
            let row: Tuple = states.into_iter().map(AggState::finish).collect();
            out.push(row);
        }
        self.tracker.shrink(self.map_bytes);
        self.map_bytes = 0;
        Ok(out)
    }
}

struct AggRunReader {
    reader: RecordFileReader,
    next: Option<(Vec<Value>, Vec<AggState>)>,
}

impl AggRunReader {
    fn advance(&mut self) -> DataflowResult<()> {
        self.next = match self.reader.next_record()? {
            Some(record) => {
                if record.len() < 4 {
                    return Err(corrupt());
                }
                let klen = u32::from_be_bytes(record[..4].try_into().unwrap()) as usize;
                let key_end = 4 + klen;
                if record.len() < key_end + 4 {
                    return Err(corrupt());
                }
                let key = decode_tuple(&record[4..key_end])?;
                let n = u32::from_be_bytes(record[key_end..key_end + 4].try_into().unwrap());
                let mut pos = key_end + 4;
                let mut states = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    if record.len() < pos + 4 {
                        return Err(corrupt());
                    }
                    let slen =
                        u32::from_be_bytes(record[pos..pos + 4].try_into().unwrap()) as usize;
                    pos += 4;
                    if record.len() < pos + slen {
                        return Err(corrupt());
                    }
                    states.push(decode_state(&record[pos..pos + slen])?);
                    pos += slen;
                }
                if pos != record.len() {
                    return Err(corrupt());
                }
                Some((key, states))
            }
            None => None,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::AggFunc;

    #[test]
    fn row_sorter_spills_and_merges_stably() {
        let wh = Warehouse::new();
        let tracker = MemoryTracker::with_budget(1024);
        let order = RowOrder::Cols(vec![(0, SortOrder::Asc)]);
        let mut s = RowSpillSorter::new(wh.clone(), tracker.clone(), order.clone(), "t");
        let rows: Vec<Tuple> = (0..300)
            .map(|i| vec![Value::Int((i * 7) % 13), Value::Int(i)])
            .collect();
        for row in rows.clone() {
            s.push(row).unwrap();
        }
        assert!(tracker.spill_runs() > 1, "budget must force runs");
        assert!(tracker.high_water() <= 1024);
        let mut stream = s.finish().unwrap();
        let mut got = Vec::new();
        while let Some(row) = stream.next_row().unwrap() {
            got.push(row);
        }
        let mut want = rows;
        want.sort_by(|a, b| order.cmp_rows(a, b)); // stable
        assert_eq!(got, want);
        drop(stream);
        let root = uli_warehouse::spill_root();
        assert!(
            !wh.exists(&root) || wh.list_files_recursive(&root).unwrap().is_empty(),
            "scratch space must be deleted"
        );
        assert_eq!(tracker.current(), 0);
    }

    #[test]
    fn all_states_roundtrip() {
        let mut states = vec![
            AggState::Count(42),
            AggState::Sum {
                total: 1.5,
                any: true,
                all_int: false,
            },
            AggState::Min(Some(Value::str("abc"))),
            AggState::Min(None),
            AggState::Max(Some(Value::Int(-1))),
            AggState::Avg { total: 9.0, n: 3 },
        ];
        let mut cd = AggState::new(AggFunc::CountDistinct);
        cd.accumulate(&Value::Int(1)).unwrap();
        cd.accumulate(&Value::str("x")).unwrap();
        states.push(cd);
        let mut ad = AggState::new(AggFunc::ApproxCountDistinct);
        for i in 0..100 {
            ad.accumulate(&Value::Int(i)).unwrap();
        }
        states.push(ad);
        let mut ap = AggState::new(AggFunc::ApproxPercentile(9500));
        for i in 0..50 {
            ap.accumulate(&Value::Int(i * 10)).unwrap();
        }
        states.push(ap);
        for state in states {
            let mut bytes = Vec::new();
            encode_state(&state, &mut bytes);
            let back = decode_state(&bytes).unwrap();
            // AggState has no PartialEq; compare by encoding and by finish.
            let mut again = Vec::new();
            encode_state(&back, &mut again);
            assert_eq!(bytes, again);
        }
        assert!(decode_state(&[99]).is_err());
        assert!(decode_state(&[]).is_err());
    }

    #[test]
    fn agg_spiller_matches_in_memory_reduce() {
        let aggs = vec![
            Agg::count(),
            Agg::sum(1),
            Agg::min(1),
            Agg::max(1),
            Agg::count_distinct(1),
        ];
        let rows: Vec<Tuple> = (0..400)
            .map(|i| vec![Value::Int(i % 23), Value::Int((i * 31) % 67)])
            .collect();
        // Reference: unbounded spiller (never spills) over the same rows.
        let run = |budget: Option<u64>| -> (Vec<Tuple>, u64) {
            let wh = Warehouse::new();
            let tracker = match budget {
                Some(b) => MemoryTracker::with_budget(b),
                None => MemoryTracker::unbounded(),
            };
            let mut sp = AggSpiller::new(wh, tracker.clone(), &aggs);
            for row in &rows {
                sp.accumulate_row(vec![row[0].clone()], row).unwrap();
            }
            (sp.finish(false).unwrap(), tracker.spill_runs())
        };
        let (unspilled, zero_runs) = run(None);
        assert_eq!(zero_runs, 0);
        let (spilled, n_runs) = run(Some(2_000));
        assert!(n_runs > 1, "tiny budget must spill");
        assert_eq!(spilled, unspilled, "spilled reduce must be byte-identical");
    }

    #[test]
    fn agg_spiller_group_all_empty_semantics() {
        let aggs = vec![Agg::count()];
        let wh = Warehouse::new();
        let sp = AggSpiller::new(wh, MemoryTracker::with_budget(1 << 20), &aggs);
        let out = sp.finish(true).unwrap();
        assert_eq!(out, vec![vec![Value::Int(0)]]);
    }
}
