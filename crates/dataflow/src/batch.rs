//! Column batches: vectorized scan units over columnar warehouse files.
//!
//! The row path hands the loader one record at a time; the columnar path
//! hands this module one *row group* at a time. A [`ColumnBatch`] is a
//! fixed-size batch of decoded columns plus a selection mask: pushed
//! predicates evaluate over whole columns (keep-masks become selection
//! masks), and output tuples materialize only for surviving rows. Columns
//! the projection masked out were never even decompressed — the reader
//! charged them to `fields_skipped` without touching their chunks.
//!
//! Equality predicates on the dictionary-encoded column compare integer
//! codes: the literal resolves to a code once per batch, and rows whose
//! cells are dictionary hits never decode their strings at all. Cells that
//! missed the dictionary at write time are stored inline and compared by
//! bytes, so unknown event names still admit correctly.
//!
//! Predicates that are not provably total ([`total_boolean`]) fall back to
//! row-at-a-time [`ScanSpec::admit`] over gathered tuples, in row order, so
//! evaluation errors surface against the same row the eager path would
//! report.

use std::collections::BTreeMap;

use uli_warehouse::{ColumnCell, ColumnGroup, ColumnarFile};

use crate::error::DataflowResult;
use crate::expr::{BinOp, Expr};
use crate::pushdown::{total_boolean, ScanSpec};
use crate::value::{Tuple, Value};

/// Decodes one column's cell bytes into the [`Value`]s the row-format
/// loader would have produced for the same record.
///
/// A loader that also understands a columnar layout returns a codec from
/// [`Loader::columnar`](crate::loader::Loader::columnar); the executor then
/// scans columnar files through [`ColumnBatch`] instead of feeding raw
/// group records to [`Loader::parse`](crate::loader::Loader::parse).
pub trait ColumnarCodec: Send + Sync {
    /// Number of columns in the layout — must equal the load schema width.
    fn columns(&self) -> usize;

    /// Decodes one cell. `None` marks the cell undecodable, which drops the
    /// whole row exactly as a loader `parse` returning `Ok(None)` drops the
    /// whole record (tolerant-reader semantics).
    fn decode(&self, col: usize, bytes: &[u8]) -> Option<Value>;
}

/// One row group's decoded columns plus a selection mask.
pub struct ColumnBatch<'a> {
    file: &'a ColumnarFile,
    group: &'a ColumnGroup,
    codec: &'a dyn ColumnarCodec,
    /// Lazily decoded columns. `columns[c][r]` is `None` when the cell was
    /// undecodable (the row is dead) — distinct from a column that simply
    /// has not been materialized yet (outer `None`).
    columns: Vec<Option<Vec<Option<Value>>>>,
    /// Selection mask: rows still admitted by the predicates run so far.
    selection: Vec<bool>,
    /// Rows whose decoded cells were valid so far. A dead row is a loader
    /// skip, not a predicate skip.
    alive: Vec<bool>,
}

impl<'a> ColumnBatch<'a> {
    /// Wraps one row group read from `file` with `codec`.
    pub fn new(
        file: &'a ColumnarFile,
        group: &'a ColumnGroup,
        codec: &'a dyn ColumnarCodec,
    ) -> ColumnBatch<'a> {
        let rows = group.rows();
        ColumnBatch {
            file,
            group,
            codec,
            columns: vec![None; file.columns()],
            selection: vec![true; rows],
            alive: vec![true; rows],
        }
    }

    /// Rows in the batch (before selection).
    pub fn rows(&self) -> usize {
        self.selection.len()
    }

    /// The current selection mask.
    pub fn selection(&self) -> &[bool] {
        &self.selection
    }

    /// Resolves one cell to raw bytes (dictionary codes resolve through the
    /// file's embedded dictionary). `None` when the column was not read.
    fn cell_bytes(&self, col: usize, row: usize) -> Option<&'a [u8]> {
        match self.group.cell(col, row)? {
            ColumnCell::Bytes(b) => Some(b),
            ColumnCell::Code(c) => self.file.dictionary_value(c),
        }
    }

    /// Materializes column `col` for every row, marking rows with
    /// undecodable cells dead.
    fn ensure_column(&mut self, col: usize) {
        if self.columns[col].is_some() {
            return;
        }
        let rows = self.rows();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let v = self
                .cell_bytes(col, r)
                .and_then(|b| self.codec.decode(col, b));
            if v.is_none() {
                self.alive[r] = false;
                self.selection[r] = false;
            }
            out.push(v);
        }
        self.columns[col] = Some(out);
    }

    /// Applies the spec's pushed predicates to the whole batch, narrowing
    /// the selection mask. Predicates run in order with FILTER semantics.
    /// Returns the number of rows dropped by predicates (not by dead cells).
    pub fn apply_predicates(&mut self, spec: &ScanSpec) -> DataflowResult<u64> {
        if spec.predicate.is_empty() {
            return Ok(0);
        }
        let width = spec.width;
        if spec.predicate.iter().all(|p| total_boolean(p, width)) {
            for pred in &spec.predicate {
                self.apply_total(pred)?;
            }
        } else {
            // A pushed predicate that may error must evaluate against fully
            // materialized tuples, row by row in row order, so the failing
            // row is the one the eager path reports.
            self.apply_row_at_a_time(spec)?;
        }
        // Alive-but-deselected rows were dropped by a predicate; rows whose
        // cells failed to decode are loader skips and count nowhere, exactly
        // like a row-format record the loader's `parse` rejected.
        Ok(self
            .alive
            .iter()
            .zip(&self.selection)
            .filter(|(alive, sel)| **alive && !**sel)
            .count() as u64)
    }

    fn selected_rows(&self) -> u64 {
        self.selection.iter().filter(|s| **s).count() as u64
    }

    /// Vectorized evaluation of one total-boolean predicate.
    fn apply_total(&mut self, pred: &Expr) -> DataflowResult<()> {
        // Dictionary fast path: `name == "literal"` (either operand order)
        // on the dictionary column compares integer codes; the literal
        // resolves once for the whole batch.
        if let Some((positive, literal)) = dict_equality(pred, self.file.dict_column()) {
            let dict_col = self.file.dict_column().expect("checked by dict_equality");
            let code = self.file.dictionary_code(literal.as_bytes());
            for r in 0..self.rows() {
                if !self.selection[r] {
                    continue;
                }
                let hit = match self.group.cell(dict_col, r) {
                    Some(ColumnCell::Code(c)) => Some(c) == code,
                    Some(ColumnCell::Bytes(b)) => b == literal.as_bytes(),
                    None => false,
                };
                if hit != positive {
                    self.selection[r] = false;
                }
            }
            return Ok(());
        }
        let mask = self.eval_bool(pred)?;
        for (s, keep) in self.selection.iter_mut().zip(&mask) {
            *s = *s && *keep;
        }
        Ok(())
    }

    /// Evaluates a total-boolean expression over every row, returning one
    /// boolean per row. Totality guarantees no evaluation error and a
    /// `Bool` result for every row, so evaluation order across rows cannot
    /// change what a query observes.
    fn eval_bool(&mut self, expr: &Expr) -> DataflowResult<Vec<bool>> {
        let rows = self.rows();
        match expr {
            Expr::Lit(Value::Bool(b)) => Ok(vec![*b; rows]),
            Expr::Not(e) => {
                let mut m = self.eval_bool(e)?;
                for b in &mut m {
                    *b = !*b;
                }
                Ok(m)
            }
            Expr::Bin(BinOp::And, a, b) => {
                let ma = self.eval_bool(a)?;
                let mb = self.eval_bool(b)?;
                Ok(ma.into_iter().zip(mb).map(|(x, y)| x && y).collect())
            }
            Expr::Bin(BinOp::Or, a, b) => {
                let ma = self.eval_bool(a)?;
                let mb = self.eval_bool(b)?;
                Ok(ma.into_iter().zip(mb).map(|(x, y)| x || y).collect())
            }
            Expr::Bin(op, a, b) => {
                // total_boolean admits only Col/Lit operands here.
                self.ensure_operand(a);
                self.ensure_operand(b);
                let mut out = Vec::with_capacity(rows);
                for r in 0..rows {
                    let left = self.operand(a, r);
                    let right = self.operand(b, r);
                    let pass = match (left, right) {
                        (Some(l), Some(r)) => match op {
                            BinOp::Eq => l == r,
                            BinOp::Ne => l != r,
                            BinOp::Lt => l < r,
                            BinOp::Le => l <= r,
                            BinOp::Gt => l > r,
                            BinOp::Ge => l >= r,
                            _ => unreachable!("total_boolean admits comparisons only"),
                        },
                        // A dead row's result is never observed.
                        _ => false,
                    };
                    out.push(pass);
                }
                Ok(out)
            }
            _ => unreachable!("total_boolean admits Lit(Bool)/Not/And/Or/cmp only"),
        }
    }

    fn ensure_operand(&mut self, e: &Expr) {
        if let Expr::Col(c) = e {
            self.ensure_column(*c);
        }
    }

    fn operand<'e>(&'e self, e: &'e Expr, row: usize) -> Option<&'e Value> {
        match e {
            Expr::Col(c) => self.columns[*c].as_ref().expect("ensured")[row].as_ref(),
            Expr::Lit(v) => Some(v),
            _ => unreachable!("total_boolean admits Col/Lit operands only"),
        }
    }

    /// Fallback for predicates that may error: gather full tuples (over the
    /// projected columns) and run [`ScanSpec::admit`] per row in row order.
    fn apply_row_at_a_time(&mut self, spec: &ScanSpec) -> DataflowResult<()> {
        let projected: Vec<usize> = (0..spec.width)
            .filter(|c| spec.projection.as_ref().is_none_or(|m| m[*c]))
            .collect();
        for &c in &projected {
            self.ensure_column(c);
        }
        for r in 0..self.rows() {
            if !self.selection[r] {
                continue;
            }
            let mut tuple = vec![Value::Null; spec.width];
            for &c in &projected {
                tuple[c] = self.columns[c].as_ref().expect("ensured")[r]
                    .clone()
                    .expect("alive row has decoded cells");
            }
            if !spec.admit(&tuple)? {
                self.selection[r] = false;
            }
        }
        Ok(())
    }

    /// Materializes output tuples for the selected rows: projected columns
    /// decode (for rows that survived selection), masked columns come back
    /// as [`Value::Null`] exactly as the lazy row loader produces them.
    pub fn take_rows(mut self, spec: &ScanSpec) -> DataflowResult<Vec<Tuple>> {
        let projected: Vec<usize> = (0..spec.width)
            .filter(|c| spec.projection.as_ref().is_none_or(|m| m[*c]))
            .collect();
        for &c in &projected {
            self.ensure_column(c);
        }
        let mut out = Vec::with_capacity(self.selected_rows() as usize);
        for r in 0..self.rows() {
            if !self.selection[r] {
                continue;
            }
            let mut tuple = vec![Value::Null; spec.width];
            let mut dead = false;
            for &c in &projected {
                match &self.columns[c].as_ref().expect("ensured")[r] {
                    Some(v) => tuple[c] = v.clone(),
                    None => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                out.push(tuple);
            }
        }
        Ok(out)
    }
}

/// Matches `Col(dict) == Lit(Str)` / `Lit(Str) == Col(dict)` and the same
/// shapes under `!=`/`Not`, returning `(polarity, literal)` — `polarity` is
/// `true` when equal rows are kept. Anything else declines the fast path.
fn dict_equality(pred: &Expr, dict_col: Option<usize>) -> Option<(bool, &str)> {
    let dict_col = dict_col?;
    match pred {
        Expr::Not(inner) => dict_equality(inner, Some(dict_col)).map(|(pos, lit)| (!pos, lit)),
        Expr::Bin(op @ (BinOp::Eq | BinOp::Ne), a, b) => {
            let (col, lit) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(Value::Str(s))) => (*c, s.as_str()),
                (Expr::Lit(Value::Str(s)), Expr::Col(c)) => (*c, s.as_str()),
                _ => return None,
            };
            (col == dict_col).then_some((matches!(op, BinOp::Eq), lit))
        }
        _ => None,
    }
}

/// Scans one row group end to end: read under the projection, apply pushed
/// predicates vectorized, and materialize surviving tuples. Returns the
/// tuples plus the predicate-skip count for [`JobStats`] accounting. The
/// reader has already charged `fields_skipped` for unprojected columns, so
/// callers must charge only the returned predicate skips.
///
/// [`JobStats`]: crate::exec::JobStats
pub fn scan_group(
    file: &ColumnarFile,
    group_index: usize,
    codec: &dyn ColumnarCodec,
    spec: &ScanSpec,
) -> DataflowResult<(Vec<Tuple>, u64)> {
    let projection: Vec<bool> = match &spec.projection {
        Some(mask) => mask.clone(),
        None => vec![true; file.columns()],
    };
    let group = file.read_group(group_index, &projection)?;
    let mut batch = ColumnBatch::new(file, &group, codec);
    let skipped = batch.apply_predicates(spec)?;
    let rows = batch.take_rows(spec)?;
    Ok((rows, skipped))
}

/// A codec usable by tests and the CSV examples: every cell is a UTF-8
/// string parsed with the same `Int` → `Double` → `Str` fallback as
/// [`CsvLoader`](crate::loader::CsvLoader) fields.
#[derive(Debug, Clone, Default)]
pub struct TextCodec {
    columns: usize,
}

impl TextCodec {
    /// A codec for `columns` text columns.
    pub fn new(columns: usize) -> TextCodec {
        assert!(columns > 0);
        TextCodec { columns }
    }
}

impl ColumnarCodec for TextCodec {
    fn columns(&self) -> usize {
        self.columns
    }

    fn decode(&self, _col: usize, bytes: &[u8]) -> Option<Value> {
        let text = std::str::from_utf8(bytes).ok()?;
        Some(if let Ok(i) = text.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(d) = text.parse::<f64>() {
            Value::Double(d)
        } else {
            Value::str(text)
        })
    }
}

/// `Value::Map` helper for codecs decoding key→string maps.
pub fn string_map(pairs: impl IntoIterator<Item = (String, String)>) -> Value {
    Value::Map(
        pairs
            .into_iter()
            .map(|(k, v)| (k, Value::Str(v)))
            .collect::<BTreeMap<_, _>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DataflowError;
    use uli_warehouse::{ColumnarFileWriter, Warehouse, WhPath};

    fn p(s: &str) -> WhPath {
        WhPath::parse(s).unwrap()
    }

    /// 3 text columns: user (int), action (dictionary), amount (int).
    fn fixture(wh: &Warehouse, rows: i64) -> ColumnarFile {
        let dict = vec![b"click".to_vec(), b"impression".to_vec()];
        let mut w = ColumnarFileWriter::create(wh, &p("/col"), 3, 64, Some((1, &dict))).unwrap();
        for i in 0..rows {
            let user = (i % 10).to_string();
            let action = if i % 3 == 0 {
                "click".to_string()
            } else if i % 17 == 0 {
                format!("rare-{i}") // dictionary miss, stored inline
            } else {
                "impression".to_string()
            };
            let amount = i.to_string();
            w.append_row_annotated(
                &[user.as_bytes(), action.as_bytes(), amount.as_bytes()],
                i,
                uli_warehouse::tag_hash(action.as_bytes()),
            );
        }
        w.finish().unwrap();
        ColumnarFile::open(wh, &p("/col")).unwrap()
    }

    #[test]
    fn scan_group_matches_eager_semantics() {
        let wh = Warehouse::new();
        let f = fixture(&wh, 100);
        let codec = TextCodec::new(3);
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(1).eq(Expr::lit("click"))],
            width: 3,
        };
        let mut rows = Vec::new();
        let mut skipped = 0;
        for g in 0..f.group_count() {
            let (r, s) = scan_group(&f, g, &codec, &spec).unwrap();
            rows.extend(r);
            skipped += s;
        }
        assert_eq!(rows.len(), 34, "i % 3 == 0 for 0..100");
        assert_eq!(skipped, 66);
        assert!(rows.iter().all(|t| t[1] == Value::str("click")));
        // Rows come out in row order with full values.
        assert_eq!(
            rows[0],
            vec![Value::Int(0), Value::str("click"), Value::Int(0)]
        );
    }

    #[test]
    fn dict_fast_path_agrees_with_generic_eval_including_misses() {
        let wh = Warehouse::new();
        let f = fixture(&wh, 200);
        let codec = TextCodec::new(3);
        for literal in ["click", "impression", "rare-17", "absent"] {
            for negate in [false, true] {
                let base = Expr::col(1).eq(Expr::lit(literal));
                let pred = if negate { base.not() } else { base };
                // Fast path (dict shape detected).
                let spec = ScanSpec {
                    projection: None,
                    predicate: vec![pred.clone()],
                    width: 3,
                };
                // Generic path: wrap so the dict shape is not detected but
                // semantics are identical (x AND true == x).
                let generic_spec = ScanSpec {
                    projection: None,
                    predicate: vec![pred.and(Expr::lit(true))],
                    width: 3,
                };
                let mut fast = Vec::new();
                let mut generic = Vec::new();
                for g in 0..f.group_count() {
                    fast.extend(scan_group(&f, g, &codec, &spec).unwrap().0);
                    generic.extend(scan_group(&f, g, &codec, &generic_spec).unwrap().0);
                }
                assert_eq!(fast, generic, "literal={literal} negate={negate}");
            }
        }
    }

    #[test]
    fn projection_nulls_masked_columns() {
        let wh = Warehouse::new();
        let f = fixture(&wh, 50);
        let codec = TextCodec::new(3);
        let spec = ScanSpec {
            projection: Some(vec![false, true, false]),
            predicate: vec![],
            width: 3,
        };
        let (rows, _) = scan_group(&f, 0, &codec, &spec).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[0][0], Value::Null);
        assert_eq!(rows[0][1], Value::str("click"));
        assert_eq!(rows[0][2], Value::Null);
    }

    #[test]
    fn non_total_predicates_error_like_the_eager_path() {
        let wh = Warehouse::new();
        let f = fixture(&wh, 10);
        let codec = TextCodec::new(3);
        // `action + 1` type-errors on the first row; not total, so the
        // row-at-a-time fallback must surface the same error admit() would.
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(1).add(Expr::lit(1i64)).ge(Expr::lit(0i64))],
            width: 3,
        };
        assert!(matches!(
            scan_group(&f, 0, &codec, &spec),
            Err(DataflowError::TypeError { .. })
        ));
        // A non-total predicate that happens not to error agrees with admit.
        let spec = ScanSpec {
            projection: None,
            predicate: vec![Expr::col(0).add(Expr::lit(0i64)).ge(Expr::lit(5i64))],
            width: 3,
        };
        let (rows, skipped) = scan_group(&f, 0, &codec, &spec).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(skipped, 5);
    }

    #[test]
    fn undecodable_cells_drop_rows_not_batches() {
        let wh = Warehouse::new();
        // No dictionary; column 1 row 1 is invalid UTF-8.
        let mut w = ColumnarFileWriter::create(&wh, &p("/bad"), 2, 8, None).unwrap();
        w.append_row(&[b"1", b"ok"]);
        w.append_row(&[b"2", &[0xff, 0xfe]]);
        w.append_row(&[b"3", b"ok"]);
        w.finish().unwrap();
        let f = ColumnarFile::open(&wh, &p("/bad")).unwrap();
        let codec = TextCodec::new(2);
        let (rows, skipped) = scan_group(&f, 0, &codec, &ScanSpec::eager(2)).unwrap();
        assert_eq!(rows.len(), 2, "bad row dropped, others kept");
        assert_eq!(rows[0][0], Value::Int(1));
        assert_eq!(rows[1][0], Value::Int(3));
        assert_eq!(skipped, 0, "a loader skip is not a predicate skip");
    }
}
