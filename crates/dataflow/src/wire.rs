//! Tuple serialization for spill run files.
//!
//! Spilled operator state round-trips through warehouse record files, so
//! rows need a self-describing byte codec. The format is deliberately
//! simple — one tag byte per value, big-endian fixed-width scalars,
//! length-prefixed strings and containers — and, crucially, **lossless**:
//! `decode(encode(t)) == t` for every tuple (doubles round-trip by bit
//! pattern, so NaN and signed zero survive). The spill byte-identity
//! guarantees rest on this.

use std::collections::BTreeMap;

use crate::error::{DataflowError, DataflowResult};
use crate::value::{Tuple, Value};

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_TUPLE: u8 = 6;
const TAG_BAG: u8 = 7;
const TAG_MAP: u8 = 8;

fn corrupt() -> DataflowError {
    DataflowError::TypeError {
        context: "wire decode",
    }
}

/// Appends one value to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Tuple(t) => {
            out.push(TAG_TUPLE);
            out.extend_from_slice(&(t.len() as u32).to_be_bytes());
            for v in t {
                encode_value(v, out);
            }
        }
        Value::Bag(b) => {
            out.push(TAG_BAG);
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            for t in b {
                out.extend_from_slice(&(t.len() as u32).to_be_bytes());
                for v in t {
                    encode_value(v, out);
                }
            }
        }
        Value::Map(m) => {
            out.push(TAG_MAP);
            out.extend_from_slice(&(m.len() as u32).to_be_bytes());
            for (k, v) in m {
                out.extend_from_slice(&(k.len() as u32).to_be_bytes());
                out.extend_from_slice(k.as_bytes());
                encode_value(v, out);
            }
        }
    }
}

/// Encodes a whole row: a value count then each value.
pub fn encode_tuple(t: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 8 * t.len());
    out.extend_from_slice(&(t.len() as u32).to_be_bytes());
    for v in t {
        encode_value(v, out.as_mut());
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> DataflowResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(corrupt)?;
        if end > self.buf.len() {
            return Err(corrupt());
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> DataflowResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DataflowResult<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> DataflowResult<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt())
    }

    fn value(&mut self) -> DataflowResult<Value> {
        Ok(match self.u8()? {
            TAG_NULL => Value::Null,
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(i64::from_be_bytes(self.take(8)?.try_into().unwrap())),
            TAG_DOUBLE => Value::Double(f64::from_bits(u64::from_be_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            TAG_STR => Value::Str(self.str()?),
            TAG_TUPLE => {
                let n = self.u32()? as usize;
                let mut t = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    t.push(self.value()?);
                }
                Value::Tuple(t)
            }
            TAG_BAG => {
                let n = self.u32()? as usize;
                let mut b = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let w = self.u32()? as usize;
                    let mut t = Vec::with_capacity(w.min(1024));
                    for _ in 0..w {
                        t.push(self.value()?);
                    }
                    b.push(t);
                }
                Value::Bag(b)
            }
            TAG_MAP => {
                let n = self.u32()? as usize;
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    let k = self.str()?;
                    let v = self.value()?;
                    m.insert(k, v);
                }
                Value::Map(m)
            }
            _ => return Err(corrupt()),
        })
    }
}

/// Decodes one value from the front of `buf`, returning it and the number
/// of bytes consumed. Used by the spill codec to embed values in larger
/// records.
pub(crate) fn decode_value_prefix(buf: &[u8]) -> DataflowResult<(Value, usize)> {
    let mut c = Cursor { buf, pos: 0 };
    let v = c.value()?;
    Ok((v, c.pos))
}

/// Decodes a row produced by [`encode_tuple`].
pub fn decode_tuple(buf: &[u8]) -> DataflowResult<Tuple> {
    let mut c = Cursor { buf, pos: 0 };
    let n = c.u32()? as usize;
    let mut t = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        t.push(c.value()?);
    }
    if c.pos != buf.len() {
        return Err(corrupt());
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_tuple() -> Tuple {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::Int(7));
        m.insert("s".to_string(), Value::str("v"));
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Double(1.5),
            Value::str("héllo"),
            Value::Tuple(vec![Value::Int(1), Value::str("x")]),
            Value::Bag(vec![
                vec![Value::Int(1)],
                vec![Value::Null, Value::Bool(false)],
            ]),
            Value::Map(m),
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        let t = sample_tuple();
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn doubles_roundtrip_by_bits() {
        for d in [f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE] {
            let t = vec![Value::Double(d)];
            let back = decode_tuple(&encode_tuple(&t)).unwrap();
            match &back[0] {
                Value::Double(b) => assert_eq!(b.to_bits(), d.to_bits()),
                other => panic!("expected double, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let enc = encode_tuple(&sample_tuple());
        assert!(decode_tuple(&enc[..enc.len() - 1]).is_err());
        assert!(decode_tuple(&[0xff, 0, 0, 0]).is_err());
        // Trailing junk is rejected, not silently ignored.
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_tuple(&padded).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // The vendored proptest has no f64 Arbitrary; drawing raw bits
            // covers strictly more doubles (every NaN payload) anyway.
            any::<u64>().prop_map(|bits| Value::Double(f64::from_bits(bits))),
            "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Tuple),
                prop::collection::vec(prop::collection::vec(inner.clone(), 0..3), 0..3)
                    .prop_map(Value::Bag),
                prop::collection::btree_map("[a-z]{1,4}", inner, 0..3).prop_map(Value::Map),
            ]
        })
    }

    proptest! {
        /// Any tuple of any nesting round-trips exactly.
        #[test]
        fn roundtrip_is_lossless(t in prop::collection::vec(arb_value(), 0..6)) {
            let back = decode_tuple(&encode_tuple(&t)).unwrap();
            prop_assert_eq!(back.len(), t.len());
            for (a, b) in t.iter().zip(&back) {
                // Compare via encoding: Value::eq treats NaN==NaN already
                // (total_cmp), but bit-compare is the stronger claim.
                let mut ea = Vec::new();
                let mut eb = Vec::new();
                encode_value(a, &mut ea);
                encode_value(b, &mut eb);
                prop_assert_eq!(ea, eb);
            }
        }
    }
}
