//! User-defined functions and built-in aggregates.
//!
//! "The full expressiveness of Java is retained through a library of custom
//! UDFs that expose core Twitter libraries" (§3). Analytics crates implement
//! [`ScalarUdf`] for things like `CountClientEvents` and `ClientEventsFunnel`.

use crate::error::{DataflowError, DataflowResult};
use crate::value::Value;

/// A scalar UDF: a pure function of one input row's values.
pub trait ScalarUdf: Send + Sync {
    /// Name used in plan rendering.
    fn name(&self) -> &'static str;

    /// Evaluates the function.
    fn eval(&self, args: &[Value]) -> DataflowResult<Value>;
}

/// Built-in algebraic aggregate functions.
///
/// All of these are *algebraic* in the MapReduce sense: a combiner can
/// pre-aggregate map-side, which the cost model exploits (shuffle records
/// per map task collapse to distinct keys). `CountDistinct` is holistic —
/// no combiner — matching the paper's distinction between cheap counts and
/// expensive per-user statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum of an integer/double column.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
    /// Count of distinct values (holistic: defeats the combiner).
    CountDistinct,
    /// Approximate distinct count via a fixed-size HyperLogLog sketch.
    /// Algebraic (sketches merge deterministically) and bounded-memory —
    /// the opt-in alternative to `CountDistinct` at scale.
    ApproxCountDistinct,
    /// Approximate percentile (argument is the quantile in basis points:
    /// 5000 = median, 9900 = p99) via a fixed-size log-linear histogram.
    /// Never under-reports; over-reports by at most ~25% (bucket width).
    ApproxPercentile(u32),
}

impl AggFunc {
    /// True if a map-side combiner can pre-aggregate this function.
    pub fn is_algebraic(self) -> bool {
        !matches!(self, AggFunc::CountDistinct)
    }
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum AggState {
    /// Count of rows.
    Count(i64),
    /// Sum and whether any value was seen.
    Sum {
        total: f64,
        any: bool,
        all_int: bool,
    },
    /// Current minimum.
    Min(Option<Value>),
    /// Current maximum.
    Max(Option<Value>),
    /// Sum and count for the mean.
    Avg { total: f64, n: i64 },
    /// Set of seen values.
    CountDistinct(std::collections::BTreeSet<Value>),
    /// HyperLogLog sketch of seen values.
    ApproxCountDistinct(crate::sketch::Hll),
    /// Log-linear histogram plus the target quantile in basis points.
    ApproxPercentile {
        q_bp: u32,
        sketch: crate::sketch::PercentileSketch,
    },
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                any: false,
                all_int: true,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { total: 0.0, n: 0 },
            AggFunc::CountDistinct => AggState::CountDistinct(Default::default()),
            AggFunc::ApproxCountDistinct => {
                AggState::ApproxCountDistinct(crate::sketch::Hll::new())
            }
            AggFunc::ApproxPercentile(q_bp) => AggState::ApproxPercentile {
                q_bp,
                sketch: crate::sketch::PercentileSketch::new(),
            },
        }
    }

    /// Folds one value in. Nulls are ignored (SQL semantics), except COUNT
    /// which counts rows.
    pub fn accumulate(&mut self, value: &Value) -> DataflowResult<()> {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum {
                total,
                any,
                all_int,
            } => {
                if !value.is_null() {
                    let v = value
                        .as_double()
                        .ok_or(DataflowError::TypeError { context: "SUM" })?;
                    if !matches!(value, Value::Int(_)) {
                        *all_int = false;
                    }
                    *total += v;
                    *any = true;
                }
            }
            AggState::Min(cur) => {
                if !value.is_null() && cur.as_ref().is_none_or(|c| value < c) {
                    *cur = Some(value.clone());
                }
            }
            AggState::Max(cur) => {
                if !value.is_null() && cur.as_ref().is_none_or(|c| value > c) {
                    *cur = Some(value.clone());
                }
            }
            AggState::Avg { total, n } => {
                if !value.is_null() {
                    *total += value
                        .as_double()
                        .ok_or(DataflowError::TypeError { context: "AVG" })?;
                    *n += 1;
                }
            }
            AggState::CountDistinct(set) => {
                if !value.is_null() {
                    set.insert(value.clone());
                }
            }
            AggState::ApproxCountDistinct(hll) => {
                if !value.is_null() {
                    hll.insert(value);
                }
            }
            AggState::ApproxPercentile { sketch, .. } => {
                if !value.is_null() {
                    sketch.record_value(value);
                }
            }
        }
        Ok(())
    }

    /// Folds another partial state for the same function into `self` — the
    /// combiner merge at the shuffle boundary. For algebraic functions the
    /// result is exactly what accumulating both inputs' rows into one state
    /// would produce; parallel map phases rely on this (plus a deterministic
    /// merge order) to match serial results byte-for-byte.
    pub fn merge(&mut self, other: AggState) -> DataflowResult<()> {
        match (self, other) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (
                AggState::Sum {
                    total,
                    any,
                    all_int,
                },
                AggState::Sum {
                    total: t2,
                    any: a2,
                    all_int: i2,
                },
            ) => {
                *total += t2;
                *any |= a2;
                *all_int &= i2;
            }
            (AggState::Min(cur), AggState::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v < *c) {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), AggState::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v > *c) {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Avg { total, n }, AggState::Avg { total: t2, n: n2 }) => {
                *total += t2;
                *n += n2;
            }
            (AggState::CountDistinct(set), AggState::CountDistinct(other)) => {
                set.extend(other);
            }
            (AggState::ApproxCountDistinct(hll), AggState::ApproxCountDistinct(other)) => {
                hll.merge(&other);
            }
            (
                AggState::ApproxPercentile { q_bp, sketch },
                AggState::ApproxPercentile {
                    q_bp: q2,
                    sketch: s2,
                },
            ) if *q_bp == q2 => {
                sketch.merge(&s2);
            }
            _ => {
                return Err(DataflowError::TypeError {
                    context: "combiner merge of mismatched aggregate states",
                })
            }
        }
        Ok(())
    }

    /// Final value for the group.
    pub fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                total,
                any,
                all_int,
            } => {
                if !any {
                    Value::Null
                } else if all_int {
                    Value::Int(total as i64)
                } else {
                    Value::Double(total)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg { total, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Double(total / n as f64)
                }
            }
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::ApproxCountDistinct(hll) => Value::Int(hll.estimate() as i64),
            AggState::ApproxPercentile { q_bp, sketch } => match sketch.quantile_bp(q_bp) {
                Some(v) => Value::Int(v as i64),
                None => Value::Null,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut st = AggState::new(func);
        for v in vals {
            st.accumulate(v).unwrap();
        }
        st.finish()
    }

    #[test]
    fn count_counts_rows_including_nulls() {
        assert_eq!(
            run(AggFunc::Count, &[Value::Int(1), Value::Null, Value::Int(3)]),
            Value::Int(3)
        );
    }

    #[test]
    fn sum_skips_nulls_and_keeps_int_type() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Null, Value::Int(3)]),
            Value::Int(4)
        );
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Double(0.5)]),
            Value::Double(1.5)
        );
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn min_max() {
        let vals = [Value::Int(5), Value::Int(2), Value::Null, Value::Int(9)];
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(9));
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
    }

    #[test]
    fn avg() {
        assert_eq!(
            run(AggFunc::Avg, &[Value::Int(1), Value::Int(2), Value::Int(3)]),
            Value::Double(2.0)
        );
        assert_eq!(run(AggFunc::Avg, &[Value::Null]), Value::Null);
    }

    #[test]
    fn count_distinct() {
        assert_eq!(
            run(
                AggFunc::CountDistinct,
                &[
                    Value::str("a"),
                    Value::str("b"),
                    Value::str("a"),
                    Value::Null
                ]
            ),
            Value::Int(2)
        );
    }

    #[test]
    fn algebraic_classification() {
        assert!(AggFunc::Count.is_algebraic());
        assert!(AggFunc::Sum.is_algebraic());
        assert!(AggFunc::Avg.is_algebraic());
        assert!(!AggFunc::CountDistinct.is_algebraic());
    }

    #[test]
    fn merge_equals_single_pass_accumulation() {
        let vals: Vec<Value> = (0..20)
            .map(|i| {
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(17 - i)
                }
            })
            .collect();
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
            AggFunc::CountDistinct,
        ] {
            let single = run(func, &vals);
            for split in [0usize, 5, 13, 20] {
                let mut left = AggState::new(func);
                for v in &vals[..split] {
                    left.accumulate(v).unwrap();
                }
                let mut right = AggState::new(func);
                for v in &vals[split..] {
                    right.accumulate(v).unwrap();
                }
                left.merge(right).unwrap();
                assert_eq!(left.finish(), single, "{func:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_rejects_mismatched_states() {
        let mut st = AggState::new(AggFunc::Count);
        assert!(st.merge(AggState::new(AggFunc::Sum)).is_err());
    }

    #[test]
    fn sum_type_error() {
        let mut st = AggState::new(AggFunc::Sum);
        assert!(st.accumulate(&Value::str("x")).is_err());
    }
}
