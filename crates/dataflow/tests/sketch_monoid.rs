//! Monoid-law property tests for every dataflow sketch.
//!
//! The lambda architecture (uli-stream) and the spillable combiner both
//! rest on one algebraic fact: sketch merge is a commutative monoid whose
//! merge-of-partials is byte-identical to a single-pass accumulation.
//! These properties pin all four laws for all four sketches —
//! associativity, commutativity, identity, and merge-order invariance
//! across arbitrary random shard splits — over proptest-generated inputs.
//!
//! TopK's laws hold exactly while the distinct-key universe fits its
//! candidate capacity (the regime it is built for; the event-name domain
//! is bounded), so its generators draw keys from a pool well under
//! `TOPK_CANDIDATES`.

use proptest::prelude::*;

use uli_dataflow::sketch::{CountMin, Hll, PercentileSketch, TopK, TOPK_CANDIDATES};
use uli_dataflow::Value;

/// One generated observation, interpreted by each sketch in its own way:
/// `key` scopes identity (HLL distinct, CM/TopK key), `weight` scopes
/// magnitude (CM/TopK count, percentile sample).
type Obs = (u16, u8);

fn arb_items() -> impl Strategy<Value = Vec<Obs>> {
    prop::collection::vec((0u16..120, 1u8..40), 0..400)
}

fn key_bytes(key: u16) -> Vec<u8> {
    format!("key-{key}").into_bytes()
}

/// Deterministically splits items into `shards` piles and returns the
/// piles in a seed-shuffled merge order — the adversary every monoid
/// merge must shrug off.
fn sharded(items: &[Obs], shards: usize, seed: u64) -> Vec<Vec<Obs>> {
    let mut piles = vec![Vec::new(); shards];
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for &item in items {
        let p = next() as usize % shards;
        piles[p].push(item);
    }
    // Fisher-Yates over the merge order.
    for i in (1..piles.len()).rev() {
        let j = next() as usize % (i + 1);
        piles.swap(i, j);
    }
    piles
}

/// Pins all four monoid laws for one sketch type, given a fold function
/// and an identity constructor.
fn assert_monoid_laws<S, F, I>(
    items: &[Obs],
    split: (usize, usize),
    shards: usize,
    seed: u64,
    identity: I,
    fold: F,
) where
    S: Clone + PartialEq + std::fmt::Debug,
    F: Fn(&[Obs]) -> S,
    I: Fn() -> S,
    S: Mergeable,
{
    let single_pass = fold(items);

    // Identity, both sides.
    let mut left = identity();
    left.merge_from(&single_pass);
    prop_assert_eq!(&left, &single_pass, "left identity violated");
    let mut right = single_pass.clone();
    right.merge_from(&identity());
    prop_assert_eq!(&right, &single_pass, "right identity violated");

    // Associativity and commutativity over a generated three-way split.
    let (i, j) = (
        split.0.min(items.len()),
        (split.0 + split.1).min(items.len()),
    );
    let (a, b, c) = (fold(&items[..i]), fold(&items[i..j]), fold(&items[j..]));
    let mut ab_c = a.clone();
    ab_c.merge_from(&b);
    ab_c.merge_from(&c);
    let mut bc = b.clone();
    bc.merge_from(&c);
    let mut a_bc = a.clone();
    a_bc.merge_from(&bc);
    prop_assert_eq!(&ab_c, &a_bc, "associativity violated");
    prop_assert_eq!(&ab_c, &single_pass, "merge-of-partials != single pass");
    let mut ba = b.clone();
    ba.merge_from(&a);
    let mut ab = a;
    ab.merge_from(&b);
    prop_assert_eq!(&ab, &ba, "commutativity violated");

    // Merge-order invariance across a random shard split.
    let mut merged = identity();
    for pile in sharded(items, shards, seed) {
        merged.merge_from(&fold(&pile));
    }
    prop_assert_eq!(&merged, &single_pass, "shard-split merge diverged");
}

/// Uniform merge access for the law harness.
trait Mergeable {
    fn merge_from(&mut self, other: &Self);
}

impl Mergeable for Hll {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}
impl Mergeable for PercentileSketch {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}
impl Mergeable for CountMin {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}
impl Mergeable for TopK {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hll_is_a_commutative_monoid(
        items in arb_items(),
        split in (0usize..200, 0usize..200),
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        assert_monoid_laws(
            &items,
            split,
            shards,
            seed,
            Hll::new,
            |obs| {
                let mut h = Hll::new();
                for (key, _) in obs {
                    h.insert(&Value::Int(*key as i64));
                }
                h
            },
        );
    }

    #[test]
    fn percentile_sketch_is_a_commutative_monoid(
        items in arb_items(),
        split in (0usize..200, 0usize..200),
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        assert_monoid_laws(
            &items,
            split,
            shards,
            seed,
            PercentileSketch::new,
            |obs| {
                let mut p = PercentileSketch::new();
                for (key, weight) in obs {
                    // Spread samples over several orders of magnitude so
                    // many log-linear buckets participate.
                    p.record(*key as u64 * *weight as u64 + 1);
                }
                p
            },
        );
    }

    #[test]
    fn count_min_is_a_commutative_monoid(
        items in arb_items(),
        split in (0usize..200, 0usize..200),
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        assert_monoid_laws(
            &items,
            split,
            shards,
            seed,
            CountMin::new,
            |obs| {
                let mut cm = CountMin::new();
                for (key, weight) in obs {
                    cm.add(&key_bytes(*key), *weight as u64);
                }
                cm
            },
        );
    }

    #[test]
    fn topk_is_a_commutative_monoid_within_capacity(
        items in arb_items(),
        split in (0usize..200, 0usize..200),
        shards in 1usize..9,
        seed in any::<u64>(),
        k in 1usize..12,
    ) {
        // The generator's key pool (120) stays far below the candidate
        // capacity, the exact-merge regime the streaming layer runs in.
        prop_assert!(120 < TOPK_CANDIDATES);
        assert_monoid_laws(
            &items,
            split,
            shards,
            seed,
            || TopK::new(k),
            |obs| {
                let mut t = TopK::new(k);
                for (key, weight) in obs {
                    t.add(&key_bytes(*key), *weight as u64);
                }
                t
            },
        );
    }
}
