//! Parallel execution must be invisible in results: for every plan shape
//! the engine parallelizes, rows from 2/4/8-worker runs must equal the
//! serial rows exactly, across several random datasets.

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use uli_dataflow::prelude::*;
use uli_dataflow::{CsvLoader, Engine, Parallelism, QueryResult};
use uli_warehouse::{Warehouse, WhPath};

/// Builds a warehouse with several files of seeded random CSV rows
/// (user, action, amount).
fn seeded_warehouse(seed: u64) -> (Warehouse, WhPath) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let wh = Warehouse::with_block_capacity(512);
    let dir = WhPath::parse("/logs/t").unwrap();
    let actions = ["click", "impression", "follow", "search"];
    for file in 0..4 {
        let mut w = wh
            .create(&dir.child(&format!("part-{file}")).unwrap())
            .unwrap();
        let rows = 150 + rng.gen_range(0..100);
        for _ in 0..rows {
            let user = rng.gen_range(0..25i64);
            let action = actions[rng.gen_range(0..actions.len())];
            let amount = rng.gen_range(-1000..1000i64);
            w.append_record(format!("{user},{action},{amount}").as_bytes());
        }
        w.finish().unwrap();
    }
    (wh, dir)
}

fn load(dir: &WhPath) -> Plan {
    Plan::load(
        dir.clone(),
        Arc::new(CsvLoader::new(3)),
        vec!["user", "action", "amount"],
    )
}

fn plans(dir: &WhPath) -> Vec<(&'static str, Plan)> {
    vec![
        ("scan", load(dir)),
        (
            "filter",
            load(dir).filter(Expr::col(1).eq(Expr::lit("click"))),
        ),
        (
            "filter+project",
            load(dir)
                .filter(Expr::col(2).gt(Expr::lit(0i64)))
                .foreach(vec![("user", Expr::col(0)), ("amount", Expr::col(2))]),
        ),
        (
            "algebraic agg",
            load(dir).aggregate_by(vec![0], vec![Agg::count(), Agg::sum(2), Agg::min(2)]),
        ),
        (
            "filtered agg",
            load(dir)
                .filter(Expr::col(1).eq(Expr::lit("impression")))
                .aggregate_by(vec![0], vec![Agg::count(), Agg::max(2), Agg::avg(2)]),
        ),
        (
            "holistic agg",
            load(dir).aggregate_by(vec![0], vec![Agg::count_distinct(1)]),
        ),
        ("group", load(dir).group_by(vec![0])),
        (
            "order",
            load(dir).order_by(vec![(2, SortOrder::Desc), (0, SortOrder::Asc)]),
        ),
        (
            "distinct",
            load(dir)
                .foreach(vec![("user", Expr::col(0)), ("action", Expr::col(1))])
                .distinct(),
        ),
    ]
}

fn run_with(seed: u64, workers: usize, name: &str) -> QueryResult {
    let (wh, dir) = seeded_warehouse(seed);
    let engine = Engine::new(wh).with_parallelism(Parallelism::fixed(workers));
    let plan = plans(&dir).into_iter().find(|(n, _)| *n == name).unwrap().1;
    engine.run(&plan).unwrap()
}

#[test]
fn parallel_rows_match_serial_across_seeds_and_workers() {
    for seed in [1u64, 7, 42] {
        let (wh, dir) = seeded_warehouse(seed);
        let names: Vec<&str> = plans(&dir).into_iter().map(|(n, _)| n).collect();
        drop(wh);
        for name in names {
            let serial = run_with(seed, 1, name);
            for workers in [2usize, 4, 8] {
                let parallel = run_with(seed, workers, name);
                assert_eq!(
                    serial.rows, parallel.rows,
                    "rows diverged: seed {seed}, plan {name:?}, {workers} workers"
                );
                assert_eq!(serial.schema, parallel.schema);
            }
        }
    }
}

#[test]
fn parallel_scan_accounting_matches_serial() {
    // Logical read counters must not depend on the worker count.
    let serial = run_with(3, 1, "filtered agg");
    for workers in [2usize, 4, 8] {
        let parallel = run_with(3, workers, "filtered agg");
        let (s, p) = (&serial.stats, &parallel.stats);
        assert_eq!(s.input_records, p.input_records);
        assert_eq!(s.input_blocks, p.input_blocks);
        assert_eq!(s.input_bytes_uncompressed, p.input_bytes_uncompressed);
        assert_eq!(s.mr_jobs, p.mr_jobs);
        assert_eq!(s.map_tasks, p.map_tasks);
        // The parallel combiner reports what actually crosses the shuffle,
        // which can only be at or below the serial upper-bound estimate.
        assert!(p.shuffle_records <= s.shuffle_records);
        assert!(p.shuffle_records >= serial.rows.len() as u64);
    }
}

#[test]
fn parallel_errors_match_serial() {
    // A type error deep in a parallel map chain must surface identically.
    let (wh, dir) = seeded_warehouse(9);
    let plan = load(&dir).filter(Expr::col(0).add(Expr::col(1)));
    let serial_err = format!(
        "{:?}",
        Engine::new(wh.clone())
            .with_parallelism(Parallelism::serial())
            .run(&plan)
            .unwrap_err()
    );
    let parallel_err = format!(
        "{:?}",
        Engine::new(wh)
            .with_parallelism(Parallelism::fixed(4))
            .run(&plan)
            .unwrap_err()
    );
    assert_eq!(serial_err, parallel_err);
}
