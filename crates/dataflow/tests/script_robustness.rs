//! Robustness: the script front-end must reject, never panic on,
//! arbitrary input.

use proptest::prelude::*;

use uli_dataflow::script::{lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics on arbitrary text.
    #[test]
    fn lexer_never_panics(src in "\\PC{0,200}") {
        let _ = lex(&src);
    }

    /// The parser never panics on arbitrary token streams derived from
    /// lexable text.
    #[test]
    fn parser_never_panics(src in "[a-z0-9 =;(),'<>*+$./_-]{0,200}") {
        if let Ok(tokens) = lex(&src) {
            let _ = parse(&tokens);
        }
    }

    /// Scripts assembled from grammar fragments either parse or error
    /// cleanly — and parsing is deterministic.
    #[test]
    fn fragment_scripts_parse_deterministically(
        // Trailing 'x' keeps generated names clear of grammar keywords
        // (no keyword ends in 'x').
        rel in "[a-z]{0,5}x",
        col in "[a-z]{0,5}x",
        n in 0usize..1000,
    ) {
        let src = format!(
            "x = load '/d' using L() as ({col}); {rel} = limit x {n}; dump {rel};"
        );
        let t1 = lex(&src).expect("valid fragment lexes");
        let a = parse(&t1);
        let b = parse(&t1);
        prop_assert_eq!(a.is_ok(), b.is_ok());
        prop_assert!(a.is_ok(), "fragment must parse: {:?}", a.err());
    }
}
