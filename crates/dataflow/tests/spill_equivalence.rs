//! A memory budget must be invisible in results: for every spillable plan
//! shape, rows from budgeted runs (which spill to warehouse run files)
//! must equal the unbounded rows byte-for-byte, across random budgets ×
//! worker counts {1, 4, 8}. Tiny budgets must actually spill, the peak
//! gauge must respect the budget, and no spill debris may survive a query.

use std::sync::Arc;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use uli_dataflow::prelude::*;
use uli_dataflow::{CsvLoader, Engine, Parallelism, QueryResult};
use uli_warehouse::{spill_root, Warehouse, WhPath};

fn seeded_warehouse(seed: u64) -> (Warehouse, WhPath) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let wh = Warehouse::with_block_capacity(512);
    let dir = WhPath::parse("/logs/t").unwrap();
    let actions = ["click", "impression", "follow", "search"];
    for file in 0..4 {
        let mut w = wh
            .create(&dir.child(&format!("part-{file}")).unwrap())
            .unwrap();
        let rows = 120 + rng.gen_range(0..60);
        for _ in 0..rows {
            let user = rng.gen_range(0..25i64);
            let action = actions[rng.gen_range(0..actions.len())];
            let amount = rng.gen_range(-1000..1000i64);
            w.append_record(format!("{user},{action},{amount}").as_bytes());
        }
        w.finish().unwrap();
    }
    (wh, dir)
}

fn load(dir: &WhPath) -> Plan {
    Plan::load(
        dir.clone(),
        Arc::new(CsvLoader::new(3)),
        vec!["user", "action", "amount"],
    )
}

/// Plan shapes that exercise every spillable operator. Integer aggregates
/// only: spilled partials merge in run order, and only integer merges are
/// bit-exact under reassociation (the engine shares this caveat with its
/// parallel combine path).
fn plans(dir: &WhPath) -> Vec<(&'static str, Plan)> {
    vec![
        (
            "order",
            load(dir).order_by(vec![(2, SortOrder::Desc), (0, SortOrder::Asc)]),
        ),
        ("group", load(dir).group_by(vec![0])),
        (
            "agg",
            load(dir).aggregate_by(
                vec![0],
                vec![Agg::count(), Agg::sum(2), Agg::min(2), Agg::max(2)],
            ),
        ),
        (
            "holistic agg",
            load(dir).aggregate_by(vec![0], vec![Agg::count_distinct(1)]),
        ),
        (
            "sketch agg",
            load(dir).aggregate_by(
                vec![1],
                vec![
                    Agg::approx_count_distinct(0),
                    Agg::approx_percentile(2, 0.95),
                ],
            ),
        ),
        (
            "distinct",
            load(dir)
                .foreach(vec![("user", Expr::col(0)), ("action", Expr::col(1))])
                .distinct(),
        ),
        (
            "order+limit",
            load(dir)
                .order_by(vec![(2, SortOrder::Desc), (0, SortOrder::Asc)])
                .limit(17),
        ),
    ]
}

fn run_one(seed: u64, name: &str, workers: usize, budget: Option<u64>) -> (QueryResult, Warehouse) {
    let (wh, dir) = seeded_warehouse(seed);
    let mut engine = Engine::new(wh.clone()).with_parallelism(Parallelism::fixed(workers));
    if let Some(b) = budget {
        engine = engine.with_mem_budget(b);
    }
    let plan = plans(&dir).into_iter().find(|(n, _)| *n == name).unwrap().1;
    (engine.run(&plan).unwrap(), wh)
}

fn assert_no_spill_debris(wh: &Warehouse) {
    let root = spill_root();
    assert!(
        !wh.exists(&root) || wh.list_files_recursive(&root).unwrap().is_empty(),
        "spill scratch files survived the query"
    );
}

#[test]
fn tiny_budget_spills_and_matches_unbounded() {
    for name in ["order", "group", "agg", "holistic agg", "distinct"] {
        let (unbounded, _) = run_one(11, name, 1, None);
        assert_eq!(unbounded.stats.spill_runs, 0);
        assert_eq!(unbounded.stats.mem_high_water_bytes, 0);
        // Aggregates hold one state per group (25 groups), far less than the
        // row operators' ~700 buffered rows — squeeze them harder so the
        // spiller actually fires.
        let budget = if name.contains("agg") { 1024 } else { 6 * 1024 };
        let (spilled, wh) = run_one(11, name, 1, Some(budget));
        assert!(
            spilled.stats.spill_runs > 0,
            "plan {name:?}: tiny budget must force spills"
        );
        assert!(spilled.stats.spill_bytes > 0, "plan {name:?}");
        assert!(
            spilled.stats.mem_high_water_bytes <= budget,
            "plan {name:?}: peak {} exceeded budget {budget}",
            spilled.stats.mem_high_water_bytes
        );
        assert_eq!(
            spilled.rows, unbounded.rows,
            "plan {name:?}: spilled rows must be byte-identical"
        );
        assert_no_spill_debris(&wh);
    }
}

#[test]
fn order_limit_short_circuit_equals_full_sort() {
    // The top-K path must equal ORDER then LIMIT applied the naive way,
    // including ties (user repeats across rows; stability matters).
    let (wh, dir) = seeded_warehouse(5);
    let engine = Engine::new(wh);
    let keys = vec![(0usize, SortOrder::Asc), (1usize, SortOrder::Desc)];
    for k in [0usize, 1, 13, 100, 10_000] {
        let top = engine
            .run(&load(&dir).order_by(keys.clone()).limit(k))
            .unwrap();
        let mut full = engine.run(&load(&dir).order_by(keys.clone())).unwrap();
        full.rows.truncate(k);
        assert_eq!(top.rows, full.rows, "top-{k} diverged from full sort");
    }
}

#[test]
fn approx_aggregates_track_exact_within_bounds() {
    let (wh, dir) = seeded_warehouse(23);
    let engine = Engine::new(wh);
    let exact = engine
        .run(&load(&dir).aggregate_by(vec![1], vec![Agg::count_distinct(0)]))
        .unwrap();
    let approx = engine
        .run(&load(&dir).aggregate_by(
            vec![1],
            vec![
                Agg::approx_count_distinct(0),
                Agg::approx_percentile(2, 0.5),
            ],
        ))
        .unwrap();
    assert_eq!(exact.rows.len(), approx.rows.len());
    for (e, a) in exact.rows.iter().zip(&approx.rows) {
        assert_eq!(e[0], a[0], "group keys must line up");
        let (Value::Int(exact_n), Value::Int(approx_n)) = (&e[1], &a[1]) else {
            panic!("expected int counts");
        };
        // HLL at p=12 has ~1.6% stderr; at 25 distinct users the
        // linear-counting regime is near-exact. Allow 10% slack.
        let err = (exact_n - approx_n).abs() as f64 / *exact_n as f64;
        assert!(err <= 0.10, "distinct {exact_n} vs approx {approx_n}");
        // Median amount is in [-1000, 1000); the histogram reports a
        // bucket upper bound, never below the true quantile.
        let Value::Int(p50) = &a[2] else {
            panic!("expected int percentile");
        };
        assert!((-1000..=1300).contains(p50), "implausible median {p50}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random budgets × workers {1, 4, 8}: rows identical to the unbounded
    /// serial run for every spillable plan shape, and no scratch debris.
    #[test]
    fn budgeted_rows_match_unbounded_for_any_budget_and_workers(
        seed in 1u64..200,
        budget in 4_096u64..262_144,
        plan_idx in 0usize..7,
    ) {
        let name = ["order", "group", "agg", "holistic agg", "sketch agg",
                    "distinct", "order+limit"][plan_idx];
        let (reference, _) = run_one(seed, name, 1, None);
        for workers in [1usize, 4, 8] {
            let (budgeted, wh) = run_one(seed, name, workers, Some(budget));
            prop_assert_eq!(
                &budgeted.rows, &reference.rows,
                "plan {} diverged: seed {}, budget {}, workers {}",
                name, seed, budget, workers
            );
            prop_assert!(budgeted.stats.mem_high_water_bytes <= budget);
            assert_no_spill_debris(&wh);
        }
    }
}
