//! A Scribe-like log delivery pipeline.
//!
//! Reproduces the architecture of Figure 1 of the paper: "Scribe daemons on
//! production hosts send log messages to Scribe aggregators, which deposit
//! aggregated log data onto per-datacenter staging Hadoop clusters. Periodic
//! processes then copy data from these staging clusters into our main Hadoop
//! data warehouse."
//!
//! The pieces, one module each:
//!
//! * [`message`]: a log entry is "two strings, a category and a message";
//! * [`network`]: the in-process stand-in for the datacenter network —
//!   aggregators expose channels, crashes close them;
//! * [`daemon`]: per-host daemons that discover aggregators through the
//!   coordination service, fail over when one dies, and buffer locally
//!   while none is reachable;
//! * [`aggregator`]: merges per-category streams and writes compressed
//!   files to the staging warehouse, buffering to "local disk" during
//!   staging-cluster outages;
//! * [`mover`]: the log mover — waits until every datacenter has sealed an
//!   hour, merges many small files into a few large ones, applies sanity
//!   checks, and **atomically slides** the hour into the main warehouse;
//! * [`pipeline`]: wires everything together and exposes fault injection
//!   (aggregator crashes, staging outages) plus end-to-end accounting.
//!
//! Delivery semantics mirror real Scribe: the system is robust to transient
//! failures (daemons fail over via the coordination service; aggregators
//! buffer during warehouse outages), but a hard aggregator crash loses the
//! entries it had accepted and not yet flushed. The E1 experiment measures
//! exactly this envelope.

pub mod aggregator;
pub mod config;
pub mod daemon;
pub mod faults;
pub mod message;
pub mod mover;
pub mod network;
pub mod pipeline;
pub mod seen;
pub mod staged;
pub mod tap;

pub use aggregator::Aggregator;
pub use config::{CategoryConfig, CategoryRegistry, Disposition};
pub use daemon::{BatchPolicy, RetryPolicy, ScribeDaemon};
pub use faults::{
    check_invariants, run_chaos, run_chaos_prepared, run_chaos_tapped, run_chaos_with, ChaosConfig,
    ChaosOutcome, FaultConfig, FaultPlan, InvariantReport, Sabotage,
};
pub use message::{EntryId, LogEntry, MessageBatch};
pub use mover::{LogMover, MoveReport};
pub use network::{LinkFaults, Network};
pub use pipeline::{PipelineConfig, PipelineReport, ScribePipeline};
pub use seen::SeenSet;
pub use tap::DeliveryTap;
