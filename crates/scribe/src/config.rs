//! Per-category configuration metadata (§2).
//!
//! "Each log entry consists of two strings, a category and a message. The
//! category is associated with configuration metadata that determine, among
//! other things, where the data is written." This module is that metadata:
//! routing (which directory tree a category lands in), sampling, size
//! limits, and an enable switch — the levers a logging operations team
//! actually turns.

use std::collections::BTreeMap;

/// Configuration for one Scribe category.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryConfig {
    /// Disabled categories are dropped at the aggregator (a kill switch for
    /// runaway producers).
    pub enabled: bool,
    /// Keep this fraction of messages (deterministic by message hash, so
    /// replays sample identically). 1.0 = keep everything.
    pub sample_rate: f64,
    /// Messages larger than this are dropped as malformed/abusive.
    pub max_message_bytes: usize,
    /// Store under this category name instead (directory aliasing — how a
    /// misnamed legacy category can be routed somewhere sane without
    /// changing producers).
    pub store_as: Option<String>,
}

impl Default for CategoryConfig {
    fn default() -> Self {
        CategoryConfig {
            enabled: true,
            sample_rate: 1.0,
            max_message_bytes: 1 << 20,
            store_as: None,
        }
    }
}

/// What the aggregator should do with one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Write it under the given category name.
    Store(String),
    /// Drop: category disabled.
    DropDisabled,
    /// Drop: sampled out.
    DropSampled,
    /// Drop: over the size limit.
    DropOversize,
}

/// The registry aggregators consult per message.
#[derive(Debug, Clone, Default)]
pub struct CategoryRegistry {
    configs: BTreeMap<String, CategoryConfig>,
}

fn message_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl CategoryRegistry {
    /// An empty registry: every category gets [`CategoryConfig::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the configuration for a category.
    pub fn set(&mut self, category: impl Into<String>, config: CategoryConfig) {
        self.configs.insert(category.into(), config);
    }

    /// The configuration for a category (default if unset).
    pub fn get(&self, category: &str) -> CategoryConfig {
        self.configs.get(category).cloned().unwrap_or_default()
    }

    /// Decides a message's fate.
    pub fn disposition(&self, category: &str, message: &[u8]) -> Disposition {
        let config = self.get(category);
        if !config.enabled {
            return Disposition::DropDisabled;
        }
        if message.len() > config.max_message_bytes {
            return Disposition::DropOversize;
        }
        if config.sample_rate < 1.0 {
            // Deterministic per-message sampling: the same message is kept
            // or dropped identically on every replay and every aggregator.
            let u = (message_hash(message) >> 11) as f64 / (1u64 << 53) as f64;
            if u >= config.sample_rate {
                return Disposition::DropSampled;
            }
        }
        Disposition::Store(config.store_as.unwrap_or_else(|| category.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stores_under_own_name() {
        let reg = CategoryRegistry::new();
        assert_eq!(
            reg.disposition("client_events", b"m"),
            Disposition::Store("client_events".into())
        );
    }

    #[test]
    fn disabled_categories_drop() {
        let mut reg = CategoryRegistry::new();
        reg.set(
            "runaway",
            CategoryConfig {
                enabled: false,
                ..Default::default()
            },
        );
        assert_eq!(reg.disposition("runaway", b"m"), Disposition::DropDisabled);
        // Other categories unaffected.
        assert!(matches!(
            reg.disposition("fine", b"m"),
            Disposition::Store(_)
        ));
    }

    #[test]
    fn oversize_messages_drop() {
        let mut reg = CategoryRegistry::new();
        reg.set(
            "small",
            CategoryConfig {
                max_message_bytes: 8,
                ..Default::default()
            },
        );
        assert_eq!(
            reg.disposition("small", b"tiny"),
            Disposition::Store("small".into())
        );
        assert_eq!(
            reg.disposition("small", b"way too large"),
            Disposition::DropOversize
        );
    }

    #[test]
    fn sampling_is_deterministic_and_proportional() {
        let mut reg = CategoryRegistry::new();
        reg.set(
            "sampled",
            CategoryConfig {
                sample_rate: 0.25,
                ..Default::default()
            },
        );
        let mut kept = 0;
        for i in 0..10_000 {
            let msg = format!("message-{i}");
            let d1 = reg.disposition("sampled", msg.as_bytes());
            let d2 = reg.disposition("sampled", msg.as_bytes());
            assert_eq!(d1, d2, "deterministic");
            if matches!(d1, Disposition::Store(_)) {
                kept += 1;
            }
        }
        let rate = kept as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&rate), "kept {rate}");
    }

    #[test]
    fn store_as_aliases_the_directory() {
        let mut reg = CategoryRegistry::new();
        reg.set(
            "rainbird",
            CategoryConfig {
                store_as: Some("web_frontend_legacy".into()),
                ..Default::default()
            },
        );
        assert_eq!(
            reg.disposition("rainbird", b"m"),
            Disposition::Store("web_frontend_legacy".into())
        );
    }
}
