//! Deterministic chaos harness for the Scribe delivery path.
//!
//! A [`FaultPlan`] is a seeded RNG schedule over every fault surface the
//! pipeline exposes: aggregator crashes and delayed respawns, coordination
//! session expiry for daemons and aggregators, staging-warehouse outage
//! windows, disk-full windows on host-local buffers, and per-send link
//! faults (drop / lost ack / duplicate / delay). [`run_chaos`] drives a
//! whole run from a single `u64` seed — chaotic phase, recovery, settle,
//! seal-and-move — and then [`check_invariants`] audits the end state:
//!
//! 1. **No silent loss**: every id ever logged is delivered, still
//!    buffered, accounted lost in an explicit crash window, or visibly
//!    dropped (disk-full or category policy). Anything else is a violation.
//! 2. **No duplicates**: no id survives the log-mover merge twice.
//! 3. **All-or-nothing hours**: no assembly debris under `/staging` in the
//!    main warehouse; an hour is either fully visible or absent.
//! 4. **Exact counter reconciliation**: `logged = moved + buffered + lost +
//!    dropped`, in unique-id terms, with `moved` matching the mover's
//!    byte-level output.
//!
//! Everything is deterministic in the seed, so any failing schedule is
//! reproducible with one number.

use std::collections::BTreeSet;

use rand::{Rng, SeedableRng, StdRng};

use crate::message::{EntryId, LogEntry};
use crate::mover::DONE_MARKER;
use crate::network::LinkFaults;
use crate::pipeline::{PipelineConfig, PipelineReport, ScribePipeline};

/// Per-step fault probabilities and window shapes for a chaos run.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Per aggregator-slot per step: probability of a hard crash.
    pub crash_rate: f64,
    /// Steps until a crashed slot respawns (uniform, inclusive).
    pub respawn_delay: (u64, u64),
    /// Per daemon per step: probability its coordination session expires.
    pub daemon_expiry_rate: f64,
    /// Per aggregator per step: probability its session expires (the
    /// process survives and re-registers on its next heartbeat).
    pub aggregator_expiry_rate: f64,
    /// Per datacenter per step: probability a staging outage window opens.
    pub staging_outage_rate: f64,
    /// Staging outage window length in steps (uniform, inclusive).
    pub staging_outage_len: (u64, u64),
    /// Per datacenter per step: probability a disk-full window opens on
    /// its hosts' local buffers.
    pub disk_full_rate: f64,
    /// Disk-full window length in steps (uniform, inclusive).
    pub disk_full_len: (u64, u64),
    /// Queue capacity imposed during a disk-full window.
    pub disk_full_capacity: usize,
    /// Per-send network faults, armed for the whole chaotic phase.
    pub link: LinkFaults,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            crash_rate: 0.02,
            respawn_delay: (2, 6),
            daemon_expiry_rate: 0.005,
            aggregator_expiry_rate: 0.01,
            staging_outage_rate: 0.04,
            staging_outage_len: (2, 6),
            disk_full_rate: 0.04,
            disk_full_len: (2, 5),
            // Tight enough that a burst of traffic during the window
            // actually overflows a host queue and drops entries.
            disk_full_capacity: 1,
            link: LinkFaults {
                drop_rate: 0.02,
                ack_loss_rate: 0.02,
                duplicate_rate: 0.02,
                delay_rate: 0.06,
                max_delay_steps: 3,
            },
        }
    }
}

impl FaultConfig {
    /// A configuration with every fault disabled (for negative tests that
    /// need a perfectly quiet delivery path).
    pub fn quiet() -> Self {
        FaultConfig {
            crash_rate: 0.0,
            respawn_delay: (1, 1),
            daemon_expiry_rate: 0.0,
            aggregator_expiry_rate: 0.0,
            staging_outage_rate: 0.0,
            staging_outage_len: (1, 1),
            disk_full_rate: 0.0,
            disk_full_len: (1, 1),
            disk_full_capacity: usize::MAX,
            link: LinkFaults::default(),
        }
    }
}

/// A seeded, replayable schedule of faults, applied one step at a time via
/// [`ScribePipeline::step_with_faults`].
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: StdRng,
    step: u64,
    dcs: usize,
    hosts: usize,
    slots: usize,
    /// Crashed slots and the step at which they respawn.
    respawn_at: Vec<(u64, usize, usize)>,
    staging_down_until: Vec<u64>,
    disk_full_until: Vec<u64>,
    /// Crashes injected so far.
    pub crashes: u64,
    /// Session expiries injected so far.
    pub expiries: u64,
    /// Staging outage windows opened so far.
    pub outages: u64,
    /// Disk-full windows opened so far.
    pub disk_full_windows: u64,
}

impl FaultPlan {
    /// Builds a plan for the given topology. The same `(seed, cfg,
    /// topology)` triple always yields the same schedule.
    pub fn new(seed: u64, cfg: FaultConfig, topology: &PipelineConfig) -> Self {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            dcs: topology.datacenters,
            hosts: topology.hosts_per_dc,
            slots: topology.aggregators_per_dc,
            respawn_at: Vec::new(),
            staging_down_until: vec![0; topology.datacenters],
            disk_full_until: vec![0; topology.datacenters],
            crashes: 0,
            expiries: 0,
            outages: 0,
            disk_full_windows: 0,
            cfg,
        }
    }

    /// Injects this step's faults. RNG draws happen in a fixed order
    /// regardless of pipeline state, so replays are exact.
    pub fn apply(&mut self, pipe: &mut ScribePipeline) {
        self.step += 1;
        let now = self.step;
        // Respawn crashed slots that have served their delay.
        let due: Vec<(u64, usize, usize)> = {
            let (due, later): (Vec<_>, Vec<_>) =
                self.respawn_at.drain(..).partition(|(at, _, _)| *at <= now);
            self.respawn_at = later;
            due
        };
        for (_, dc, slot) in due {
            if !pipe.aggregator_is_up(dc, slot) {
                pipe.spawn_aggregator(dc, slot);
            }
        }
        for dc in 0..self.dcs {
            // Staging outage windows.
            if self.staging_down_until[dc] <= now {
                pipe.set_staging_available(dc, true);
                if self.rng.gen_bool(self.cfg.staging_outage_rate) {
                    let (lo, hi) = self.cfg.staging_outage_len;
                    self.staging_down_until[dc] = now + self.rng.gen_range(lo..=hi);
                    pipe.set_staging_available(dc, false);
                    self.outages += 1;
                }
            }
            // Disk-full windows on host-local buffers.
            if self.disk_full_until[dc] <= now {
                pipe.set_host_queue_capacity(dc, None);
                if self.rng.gen_bool(self.cfg.disk_full_rate) {
                    let (lo, hi) = self.cfg.disk_full_len;
                    self.disk_full_until[dc] = now + self.rng.gen_range(lo..=hi);
                    pipe.set_host_queue_capacity(dc, Some(self.cfg.disk_full_capacity));
                    self.disk_full_windows += 1;
                }
            }
            // Aggregator crashes (with scheduled respawn) and expiries.
            for slot in 0..self.slots {
                if self.rng.gen_bool(self.cfg.crash_rate) && pipe.aggregator_is_up(dc, slot) {
                    pipe.crash_aggregator(dc, slot);
                    let (lo, hi) = self.cfg.respawn_delay;
                    self.respawn_at
                        .push((now + self.rng.gen_range(lo..=hi), dc, slot));
                    self.crashes += 1;
                }
                if self.rng.gen_bool(self.cfg.aggregator_expiry_rate) {
                    pipe.expire_aggregator_session(dc, slot);
                    self.expiries += 1;
                }
            }
            // Daemon session expiries.
            for host in 0..self.hosts {
                if self.rng.gen_bool(self.cfg.daemon_expiry_rate) {
                    pipe.expire_daemon_session(dc, host);
                    self.expiries += 1;
                }
            }
        }
    }

    /// Ends the chaotic phase: restores every availability window, respawns
    /// dead slots, disarms link faults. The pipeline can then drain.
    pub fn recover(&mut self, pipe: &mut ScribePipeline) {
        for dc in 0..self.dcs {
            pipe.set_staging_available(dc, true);
            pipe.set_host_queue_capacity(dc, None);
            self.staging_down_until[dc] = 0;
            self.disk_full_until[dc] = 0;
            for slot in 0..self.slots {
                if !pipe.aggregator_is_up(dc, slot) {
                    pipe.spawn_aggregator(dc, slot);
                }
            }
        }
        self.respawn_at.clear();
        pipe.clear_link_faults();
        pipe.set_main_available(true);
    }
}

/// Shape of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Pipeline topology.
    pub topology: PipelineConfig,
    /// Chaotic steps to drive.
    pub steps: u64,
    /// Steps per hour boundary (aggregators flush at each boundary).
    pub steps_per_hour: u64,
    /// Traffic: up to this many entries logged per step (uniform).
    pub max_entries_per_step: u64,
    /// Fault schedule parameters.
    pub faults: FaultConfig,
    /// Cap on post-recovery settle steps (must exceed the daemons' max
    /// backoff cooldown or a healthy run can fail to drain).
    pub settle_steps: u64,
    /// If set, the first move attempt of every hour happens during a main
    /// warehouse outage — it must fail, and the retry must succeed with no
    /// duplicates (exercises all-or-nothing under mover faults).
    pub main_outage_at_move: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            topology: PipelineConfig {
                datacenters: 2,
                hosts_per_dc: 4,
                aggregators_per_dc: 2,
                records_per_file: 64,
                batch: crate::daemon::BatchPolicy::default(),
                workers: uli_warehouse::Parallelism::serial(),
            },
            steps: 48,
            steps_per_hour: 8,
            max_entries_per_step: 12,
            faults: FaultConfig::default(),
            settle_steps: 64,
            main_outage_at_move: false,
        }
    }
}

/// An extra, deliberately *unaccounted* fault injected to prove the
/// checker can fail (negative testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// No sabotage: a clean run must produce zero violations.
    None,
    /// After the final flush, silently delete one staged file before the
    /// mover runs. Acked, durably-staged data vanishing outside any crash
    /// window must trip the checker.
    DeleteStagedFile,
    /// Arm the network's one-shot half-apply trap: the first multi-entry
    /// batch is stored only partially but acked whole. The silently
    /// dropped half must surface as unaccounted entries.
    HalfApplyBatch,
}

/// Everything a chaos run produces, reproducible from its seed.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Seed that generated this run (replay with `run_chaos(seed, cfg)`).
    pub seed: u64,
    /// Hours the run spanned.
    pub hours: u64,
    /// Final pipeline counters.
    pub report: PipelineReport,
    /// Invariant audit: unique-id accounting and any violations.
    pub accounting: InvariantReport,
}

impl ChaosOutcome {
    /// True if the run satisfied every delivery invariant.
    pub fn is_clean(&self) -> bool {
        self.accounting.violations.is_empty()
    }
}

/// Runs one seeded chaos schedule end to end and audits the result.
pub fn run_chaos(seed: u64, cfg: &ChaosConfig) -> ChaosOutcome {
    run_chaos_impl(seed, cfg, Sabotage::None, |_| {})
}

/// [`run_chaos`], optionally with an unaccounted sabotage injected.
pub fn run_chaos_with(seed: u64, cfg: &ChaosConfig, sabotage: Sabotage) -> ChaosOutcome {
    run_chaos_impl(seed, cfg, sabotage, |_| {})
}

/// [`run_chaos`] with a delivery tap installed before any traffic flows —
/// the streaming layer's chaos entry point. The tap observes exactly the
/// records the audited run delivers.
pub fn run_chaos_tapped(
    seed: u64,
    cfg: &ChaosConfig,
    tap: Box<dyn crate::tap::DeliveryTap>,
) -> ChaosOutcome {
    run_chaos_impl(seed, cfg, Sabotage::None, |pipe| pipe.add_delivery_tap(tap))
}

/// [`run_chaos`] with arbitrary pipeline preparation before any traffic
/// flows. The serving layer uses this to bind an index maintainer to the
/// run's own main warehouse (`pipe.main_warehouse()`) and to switch the
/// mover to a columnar landing, before installing its tap.
pub fn run_chaos_prepared(
    seed: u64,
    cfg: &ChaosConfig,
    prepare: impl FnOnce(&mut ScribePipeline),
) -> ChaosOutcome {
    run_chaos_impl(seed, cfg, Sabotage::None, prepare)
}

fn run_chaos_impl(
    seed: u64,
    cfg: &ChaosConfig,
    sabotage: Sabotage,
    prepare: impl FnOnce(&mut ScribePipeline),
) -> ChaosOutcome {
    let mut pipe = ScribePipeline::new(cfg.topology);
    prepare(&mut pipe);
    // Decorrelate the three RNG streams with distinct salts.
    let mut plan = FaultPlan::new(
        seed ^ 0x000F_A017_5C4E_D01E,
        cfg.faults.clone(),
        &cfg.topology,
    );
    pipe.set_link_faults(seed ^ 0x114B_FA17, cfg.faults.link);
    let mut traffic = StdRng::seed_from_u64(seed ^ 0x07EA_FF1C);
    if sabotage == Sabotage::HalfApplyBatch {
        pipe.network().arm_half_apply();
    }

    // Phase 1 — chaos: log traffic and advance under the fault schedule.
    // Hours are flushed at each boundary but never sealed or moved while
    // faults are live: re-deliveries of a moved hour land in later hours,
    // which is exactly what the mover's dedup must absorb.
    for step in 0..cfg.steps {
        let n = traffic.gen_range(0..=cfg.max_entries_per_step);
        for i in 0..n {
            let dc = traffic.gen_range(0..cfg.topology.datacenters);
            let host = traffic.gen_range(0..cfg.topology.hosts_per_dc);
            pipe.log(
                dc,
                host,
                LogEntry::new("client_events", format!("s{step}e{i}").into_bytes()),
            );
        }
        pipe.step_with_faults(&mut plan);
        if (step + 1) % cfg.steps_per_hour == 0 {
            pipe.flush_hour(step / cfg.steps_per_hour);
        }
    }
    let hours = cfg.steps.div_ceil(cfg.steps_per_hour).max(1);
    let last_hour = hours - 1;

    // Phase 2 — recovery and settle: clear faults, then pump until the
    // pipeline is quiescent (or the bounded settle budget runs out, which
    // the checker will then surface as buffered-vs-lost discrepancies).
    plan.recover(&mut pipe);
    for _ in 0..cfg.settle_steps {
        pipe.step();
        pipe.flush_hour(last_hour);
        let r = pipe.report();
        if r.host_buffered == 0 && r.in_flight == 0 && r.aggregator_buffered == 0 {
            break;
        }
    }

    let mut extra_violations = Vec::new();
    if sabotage == Sabotage::DeleteStagedFile && !delete_one_staged_file(&pipe) {
        extra_violations.push("sabotage requested but no staged file to delete".to_string());
    }

    // Phase 3 — seal and move every hour.
    for hour in 0..hours {
        pipe.seal_hour("client_events", hour);
        if cfg.main_outage_at_move {
            pipe.set_main_available(false);
            if pipe.move_hour("client_events", hour).is_ok() {
                extra_violations.push(format!("hour {hour}: move succeeded during main outage"));
            }
            pipe.set_main_available(true);
        }
        if let Err(e) = pipe.move_hour("client_events", hour) {
            extra_violations.push(format!("hour {hour}: move failed after recovery: {e}"));
        }
    }

    let mut accounting = check_invariants(&pipe);
    accounting.violations.extend(extra_violations);
    ChaosOutcome {
        seed,
        hours,
        report: pipe.report(),
        accounting,
    }
}

/// Silently deletes one staged (non-marker) file — the sabotage primitive.
fn delete_one_staged_file(pipe: &ScribePipeline) -> bool {
    let root = uli_warehouse::WhPath::parse("/logs").expect("valid path");
    for dc in 0..pipe.datacenter_count() {
        let wh = pipe.staging_warehouse(dc);
        let Ok(files) = wh.list_files_recursive(&root) else {
            continue;
        };
        for f in files {
            if f.name() == DONE_MARKER {
                continue;
            }
            if wh.delete_file(&f).is_ok() {
                return true;
            }
        }
    }
    false
}

/// Unique-id delivery accounting produced by [`check_invariants`].
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Human-readable invariant violations; empty for a healthy run.
    pub violations: Vec<String>,
    /// Distinct ids ever logged.
    pub logged: u64,
    /// Ids visible in the main warehouse.
    pub delivered: u64,
    /// Ids still buffered (host queue, aggregator, or in flight).
    pub buffered: u64,
    /// Ids lost in explicit crash windows (and in no other bucket).
    pub lost: u64,
    /// Ids visibly dropped (disk-full or category policy).
    pub dropped: u64,
}

/// Audits a settled pipeline against the delivery invariants. Expects
/// aggregator channels to be drained (run it after a settle phase);
/// undrained channels are themselves reported as a violation because their
/// ids are invisible to the audit.
pub fn check_invariants(pipe: &ScribePipeline) -> InvariantReport {
    let mut violations = Vec::new();

    // The ground truth: every id each daemon ever stamped.
    let mut logged: BTreeSet<EntryId> = BTreeSet::new();
    for d in pipe.daemons() {
        for seq in 0..d.logged {
            logged.insert(EntryId {
                host: d.host_id(),
                seq,
            });
        }
    }

    // Invariant: no duplicates survive the merge, and nothing is delivered
    // that was never logged.
    let mut delivered: BTreeSet<EntryId> = BTreeSet::new();
    for id in pipe.delivered_ids() {
        if !delivered.insert(*id) {
            violations.push(format!("duplicate survived the log-mover merge: {id}"));
        }
        if !logged.contains(id) {
            violations.push(format!("delivered id was never logged: {id}"));
        }
    }
    // Invariant: the moved counter is exactly the delivered-id count (all
    // pipeline traffic is stamped, so these must agree byte-for-byte).
    let report = pipe.report();
    if report.moved != pipe.delivered_ids().len() as u64 {
        violations.push(format!(
            "moved counter ({}) disagrees with delivered ids ({})",
            report.moved,
            pipe.delivered_ids().len()
        ));
    }

    let mut buffered: BTreeSet<EntryId> = BTreeSet::new();
    for d in pipe.daemons() {
        buffered.extend(d.queued_ids());
    }
    for a in pipe.aggregators() {
        buffered.extend(a.unflushed_ids());
    }
    buffered.extend(pipe.network().delayed_ids());
    let channel_backlog: u64 = pipe.aggregators().map(|a| a.in_channel()).sum();
    if channel_backlog > 0 {
        violations.push(format!(
            "{channel_backlog} entries undrained in aggregator channels: audit needs a settled pipeline"
        ));
    }

    let lost: BTreeSet<EntryId> = pipe.lost_ids().iter().copied().collect();
    let mut dropped: BTreeSet<EntryId> = BTreeSet::new();
    for d in pipe.daemons() {
        dropped.extend(d.dropped_ids().iter().copied());
    }
    dropped.extend(pipe.policy_dropped_ids());
    // Invariant: an entry dropped at its host never reached the network, so
    // a delivered copy would mean identity corruption.
    for id in &dropped {
        if delivered.contains(id) {
            violations.push(format!("host-dropped id was also delivered: {id}"));
        }
    }

    // Invariant: all-or-nothing hours — a successful run leaves no
    // assembly debris under /staging in the main warehouse.
    let staging_root = uli_warehouse::WhPath::parse("/staging").expect("valid path");
    if let Ok(debris) = pipe.main_warehouse().list_files_recursive(&staging_root) {
        if !debris.is_empty() {
            violations.push(format!(
                "{} assembly file(s) left under /staging: a move was not all-or-nothing",
                debris.len()
            ));
        }
    }

    // Invariant: exact reconciliation. Partition the logged set — an id may
    // appear in several buckets (a duplicated copy can be crash-lost while
    // another copy is delivered), so buckets are claimed in priority order;
    // an id claimed by no bucket is silent loss.
    let (mut n_delivered, mut n_buffered, mut n_lost, mut n_dropped) = (0u64, 0u64, 0u64, 0u64);
    for id in &logged {
        if delivered.contains(id) {
            n_delivered += 1;
        } else if buffered.contains(id) {
            n_buffered += 1;
        } else if lost.contains(id) {
            n_lost += 1;
        } else if dropped.contains(id) {
            n_dropped += 1;
        } else {
            violations.push(format!(
                "entry {id} unaccounted: acked data lost outside any crash window"
            ));
        }
    }

    InvariantReport {
        violations,
        logged: logged.len() as u64,
        delivered: n_delivered,
        buffered: n_buffered,
        lost: n_lost,
        dropped: n_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_delivers_everything_and_is_clean() {
        let cfg = ChaosConfig {
            faults: FaultConfig::quiet(),
            ..Default::default()
        };
        let o = run_chaos(1, &cfg);
        assert!(o.is_clean(), "violations: {:?}", o.accounting.violations);
        assert_eq!(o.accounting.delivered, o.accounting.logged);
        assert_eq!(o.report.lost_in_crashes, 0);
        assert_eq!(o.report.duplicates_merged, 0);
    }

    #[test]
    fn default_chaos_run_is_clean() {
        let o = run_chaos(7, &ChaosConfig::default());
        assert!(o.is_clean(), "violations: {:?}", o.accounting.violations);
        // Exact reconciliation, in unique-id terms.
        let a = &o.accounting;
        assert_eq!(a.logged, a.delivered + a.buffered + a.lost + a.dropped);
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let cfg = ChaosConfig::default();
        let a = run_chaos(1234, &cfg);
        let b = run_chaos(1234, &cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
        assert_eq!(a.accounting.violations, b.accounting.violations);
    }

    #[test]
    fn sabotage_trips_the_checker() {
        let cfg = ChaosConfig {
            faults: FaultConfig::quiet(),
            ..Default::default()
        };
        let o = run_chaos_with(1, &cfg, Sabotage::DeleteStagedFile);
        assert!(
            !o.is_clean(),
            "silently deleting staged data must violate the no-loss invariant"
        );
        assert!(o
            .accounting
            .violations
            .iter()
            .any(|v| v.contains("unaccounted")));
    }

    #[test]
    fn half_applied_batch_trips_the_checker() {
        let cfg = ChaosConfig {
            faults: FaultConfig::quiet(),
            ..Default::default()
        };
        let o = run_chaos_with(1, &cfg, Sabotage::HalfApplyBatch);
        assert!(
            !o.is_clean(),
            "a partially stored but fully acked batch must violate no-loss"
        );
        assert!(o
            .accounting
            .violations
            .iter()
            .any(|v| v.contains("unaccounted")));
    }

    #[test]
    fn main_outage_at_move_is_all_or_nothing() {
        let cfg = ChaosConfig {
            faults: FaultConfig::quiet(),
            main_outage_at_move: true,
            ..Default::default()
        };
        let o = run_chaos(3, &cfg);
        assert!(o.is_clean(), "violations: {:?}", o.accounting.violations);
        assert_eq!(
            o.report.duplicates_merged, 0,
            "move retries must not duplicate"
        );
        assert_eq!(o.accounting.delivered, o.accounting.logged);
    }
}
