//! The mover's persistent dedup set, with watermark compaction.
//!
//! Exactly-once delivery dedups on [`EntryId`]s, but a naive
//! `HashSet<EntryId>` grows without bound across a day — ~10M ids for the
//! 1m-user scale, all retained forever even though almost every hour lands
//! cleanly. Daemons stamp per-host sequence numbers contiguously from 0
//! ([`crate::daemon`]), so once an hour is fully landed the seen ids for
//! each host form a dense prefix `0..n`. [`SeenSet`] exploits that: after
//! every commit it compacts each host's contiguous prefix into a single
//! *watermark* (`next_seq`: every seq below it has been seen) and keeps only
//! the out-of-order remainder as an explicit *residual* set. Membership is
//! `seq < watermark || residual contains id`, so a duplicate from a
//! compacted hour is still squashed — the watermark remembers it without
//! storing it.
//!
//! Compaction never forgets an id and never invents one: ids only move from
//! the residual into the region below a watermark, and the watermark only
//! advances over ids actually present. Two sets fed the same ids are equal
//! regardless of insertion order or when `compact` ran, so the parallel
//! mover's seen-set commits compare bit-for-bit against serial runs.

use std::collections::{HashMap, HashSet};

use crate::message::EntryId;

/// Compacted set of delivered entry ids: per-host watermarks plus an
/// out-of-order residual. See the module docs for the invariants.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SeenSet {
    /// `host -> next_seq`: every seq strictly below the watermark is seen.
    watermarks: HashMap<u64, u64>,
    /// Seen ids not (yet) covered by their host's watermark.
    residual: HashSet<EntryId>,
}

impl SeenSet {
    /// An empty set: nothing seen, all watermarks at zero.
    pub fn new() -> Self {
        SeenSet::default()
    }

    /// True when `id` has been seen — either covered by its host's
    /// watermark or held in the residual.
    pub fn contains(&self, id: &EntryId) -> bool {
        id.seq < self.watermarks.get(&id.host).copied().unwrap_or(0) || self.residual.contains(id)
    }

    /// Records `id` as seen. Returns `true` if it was new.
    pub fn insert(&mut self, id: EntryId) -> bool {
        if id.seq < self.watermarks.get(&id.host).copied().unwrap_or(0) {
            return false;
        }
        self.residual.insert(id)
    }

    /// Records every id in `ids` as seen.
    pub fn extend(&mut self, ids: impl IntoIterator<Item = EntryId>) {
        for id in ids {
            self.insert(id);
        }
    }

    /// Advances each host's watermark across its contiguous residual prefix,
    /// dropping the absorbed ids. After a fully-landed hour this collapses
    /// that hour's ids to nothing but a bumped integer per host.
    pub fn compact(&mut self) {
        let hosts: HashSet<u64> = self.residual.iter().map(|id| id.host).collect();
        for host in hosts {
            let wm = self.watermarks.entry(host).or_insert(0);
            while self.residual.remove(&EntryId { host, seq: *wm }) {
                *wm += 1;
            }
        }
    }

    /// Number of ids still held explicitly (not absorbed by a watermark).
    pub fn residual_len(&self) -> usize {
        self.residual.len()
    }

    /// Number of hosts with a non-zero watermark.
    pub fn watermarked_hosts(&self) -> usize {
        self.watermarks.values().filter(|&&wm| wm > 0).count()
    }

    /// Total ids represented: watermark coverage plus the residual.
    pub fn len(&self) -> u64 {
        self.watermarks.values().sum::<u64>() + self.residual.len() as u64
    }

    /// True when no id has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical snapshot for identity checks: sorted `(host, next_seq)`
    /// watermarks (zero watermarks omitted) and sorted residual ids.
    pub fn snapshot(&self) -> (Vec<(u64, u64)>, Vec<EntryId>) {
        let mut wms: Vec<(u64, u64)> = self
            .watermarks
            .iter()
            .filter(|(_, &wm)| wm > 0)
            .map(|(&h, &wm)| (h, wm))
            .collect();
        wms.sort_unstable();
        let mut residual: Vec<EntryId> = self.residual.iter().copied().collect();
        residual.sort_unstable();
        (wms, residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(host: u64, seq: u64) -> EntryId {
        EntryId { host, seq }
    }

    #[test]
    fn contiguous_prefix_compacts_to_watermark() {
        let mut seen = SeenSet::new();
        seen.extend((0..100).map(|s| id(7, s)));
        assert_eq!(seen.residual_len(), 100);
        seen.compact();
        assert_eq!(seen.residual_len(), 0);
        assert_eq!(seen.watermarked_hosts(), 1);
        assert_eq!(seen.len(), 100);
        for s in 0..100 {
            assert!(seen.contains(&id(7, s)), "seq {s} lost by compaction");
        }
        assert!(!seen.contains(&id(7, 100)));
        assert!(!seen.contains(&id(8, 0)));
    }

    #[test]
    fn compacted_duplicate_is_still_squashed() {
        let mut seen = SeenSet::new();
        seen.extend((0..50).map(|s| id(3, s)));
        seen.compact();
        // Re-delivery of an id from the compacted range must not re-insert.
        assert!(!seen.insert(id(3, 10)));
        assert!(seen.contains(&id(3, 10)));
        assert_eq!(seen.residual_len(), 0);
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn gaps_stay_residual_until_filled() {
        let mut seen = SeenSet::new();
        seen.extend([id(1, 0), id(1, 1), id(1, 3), id(1, 4)]);
        seen.compact();
        // 0 and 1 absorbed; 3 and 4 blocked by the missing 2.
        assert_eq!(seen.residual_len(), 2);
        assert_eq!(seen.len(), 4);
        assert!(seen.contains(&id(1, 3)));
        assert!(!seen.contains(&id(1, 2)));
        seen.insert(id(1, 2));
        seen.compact();
        assert_eq!(seen.residual_len(), 0);
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn equality_is_insensitive_to_compaction_schedule() {
        let ids: Vec<EntryId> = (0..20).map(|s| id(2, s)).chain([id(5, 0)]).collect();
        let mut eager = SeenSet::new();
        for &i in &ids {
            eager.insert(i);
            eager.compact();
        }
        let mut lazy = SeenSet::new();
        let mut rev = ids.clone();
        rev.reverse();
        lazy.extend(rev);
        lazy.compact();
        assert_eq!(eager, lazy);
        assert_eq!(eager.snapshot(), lazy.snapshot());
    }

    #[test]
    fn snapshot_is_sorted_and_omits_zero_watermarks() {
        let mut seen = SeenSet::new();
        seen.extend([id(9, 0), id(9, 1), id(4, 2), id(1, 0)]);
        seen.compact();
        let (wms, residual) = seen.snapshot();
        assert_eq!(wms, vec![(1, 1), (9, 2)]);
        assert_eq!(residual, vec![id(4, 2)]);
    }
}
