//! The log mover pipeline.
//!
//! "Another process is responsible for moving these logs from the
//! per-datacenter staging clusters into the main Hadoop data warehouse. It
//! applies certain sanity checks and transformations, such as merging many
//! small files into a few big ones … it ensures that by the time logs are
//! made available in the main data warehouse, all datacenters that produce a
//! given log category have transferred their logs. Once all of this is done,
//! the log mover pipeline atomically slides an hour's worth of logs into the
//! main data warehouse." (§2)

use uli_warehouse::{HourlyPartition, Warehouse, WarehouseError, WarehouseResult};

/// Marker file an aggregator cluster writes once its hour is complete.
pub const DONE_MARKER: &str = "_DONE";

/// Result of moving one category-hour into the main warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveReport {
    /// The partition that was moved.
    pub partition: HourlyPartition,
    /// Small files read from all staging clusters.
    pub input_files: u64,
    /// Large files written into the main warehouse.
    pub output_files: u64,
    /// Records moved.
    pub records: u64,
    /// Records dropped by sanity checks (empty messages).
    pub dropped: u64,
}

/// Errors specific to the mover's readiness protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveError {
    /// A datacenter has not sealed this hour yet.
    NotReady {
        /// Name of the lagging datacenter.
        dc: String,
    },
    /// The hour already exists in the main warehouse.
    AlreadyMoved,
    /// An underlying warehouse failure.
    Warehouse(WarehouseError),
}

impl std::fmt::Display for MoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveError::NotReady { dc } => write!(f, "datacenter {dc} has not sealed the hour"),
            MoveError::AlreadyMoved => write!(f, "hour already present in main warehouse"),
            MoveError::Warehouse(e) => write!(f, "warehouse error: {e}"),
        }
    }
}

impl std::error::Error for MoveError {}

impl From<WarehouseError> for MoveError {
    fn from(e: WarehouseError) -> Self {
        MoveError::Warehouse(e)
    }
}

/// Seals a category-hour on one staging cluster by writing the done marker.
/// Called by the datacenter's flush driver once its aggregators have flushed
/// everything for the hour.
pub fn seal_hour(staging: &Warehouse, partition: &HourlyPartition) -> WarehouseResult<()> {
    let dir = partition.main_dir();
    staging.mkdirs(&dir)?;
    let marker = dir.child(DONE_MARKER).expect("valid marker name");
    staging.create(&marker)?.finish()?;
    Ok(())
}

/// The mover: merges sealed staging hours into the main warehouse.
pub struct LogMover {
    main: Warehouse,
    /// Target number of records per merged output file.
    records_per_file: u64,
}

impl LogMover {
    /// Creates a mover targeting `main`, merging into files of
    /// `records_per_file` records.
    pub fn new(main: Warehouse, records_per_file: u64) -> Self {
        assert!(records_per_file > 0);
        LogMover {
            main,
            records_per_file,
        }
    }

    /// Moves one category-hour from every staging cluster into the main
    /// warehouse, atomically.
    ///
    /// `staging` lists `(datacenter name, staging warehouse)` for every
    /// datacenter that produces this category. All of them must have sealed
    /// the hour (via [`seal_hour`]); otherwise [`MoveError::NotReady`].
    pub fn move_hour(
        &self,
        partition: &HourlyPartition,
        staging: &[(&str, &Warehouse)],
    ) -> Result<MoveReport, MoveError> {
        let final_dir = partition.main_dir();
        if self.main.exists(&final_dir) {
            return Err(MoveError::AlreadyMoved);
        }
        let src_dir = partition.main_dir();
        // Readiness: every datacenter must have the done marker.
        for (dc, wh) in staging {
            let marker = src_dir.child(DONE_MARKER).expect("valid marker");
            if !wh.exists(&marker) {
                return Err(MoveError::NotReady { dc: dc.to_string() });
            }
        }

        // Assemble the merged hour under /staging in the main warehouse.
        let assembly_dir = partition.staging_dir();
        if self.main.exists(&assembly_dir) {
            // A previous failed attempt left debris; restart cleanly.
            self.main.delete_dir(&assembly_dir)?;
        }
        self.main.mkdirs(&assembly_dir)?;

        let mut report = MoveReport {
            partition: partition.clone(),
            input_files: 0,
            output_files: 0,
            records: 0,
            dropped: 0,
        };
        let mut out: Option<uli_warehouse::RecordFileWriter> = None;
        let mut out_records = 0u64;
        let mut out_idx = 0u64;

        for (_dc, wh) in staging {
            let files = match wh.list_files_recursive(&src_dir) {
                Ok(f) => f,
                Err(WarehouseError::NotFound(_)) => continue,
                Err(e) => return Err(e.into()),
            };
            for file in files {
                if file.name() == DONE_MARKER {
                    continue;
                }
                report.input_files += 1;
                let mut reader = wh.open(&file)?;
                while let Some(record) = reader.next_record()? {
                    // Sanity check: drop empty messages.
                    if record.is_empty() {
                        report.dropped += 1;
                        continue;
                    }
                    if out.is_none() {
                        let path = assembly_dir
                            .child(&format!("part-{out_idx:05}"))
                            .expect("valid part name");
                        out = Some(self.main.create(&path)?);
                        out_idx += 1;
                    }
                    let w = out.as_mut().expect("writer created above");
                    w.append_record(record);
                    out_records += 1;
                    report.records += 1;
                    if out_records >= self.records_per_file {
                        out.take().expect("writer present").finish()?;
                        report.output_files += 1;
                        out_records = 0;
                    }
                }
            }
        }
        if let Some(w) = out.take() {
            w.finish()?;
            report.output_files += 1;
        }

        // The atomic slide: one rename makes the whole hour visible.
        if let Some(parent) = final_dir.parent() {
            self.main.mkdirs(&parent)?;
        }
        self.main.rename(&assembly_dir, &final_dir)?;
        Ok(report)
    }

    /// The main warehouse this mover writes into.
    pub fn main(&self) -> &Warehouse {
        &self.main
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staging_with(partition: &HourlyPartition, records: &[&[u8]]) -> Warehouse {
        let wh = Warehouse::new();
        let dir = partition.main_dir();
        let file = dir.child("agg-0-0").unwrap();
        let mut w = wh.create(&file).unwrap();
        for r in records {
            w.append_record(r);
        }
        w.finish().unwrap();
        wh
    }

    fn part() -> HourlyPartition {
        HourlyPartition::new("client_events", 2012, 8, 21, 14).unwrap()
    }

    #[test]
    fn refuses_until_all_dcs_sealed() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a"]);
        let dc2 = staging_with(&p, &[b"b"]);
        seal_hour(&dc1, &p).unwrap();
        let mover = LogMover::new(Warehouse::new(), 1000);
        let err = mover
            .move_hour(&p, &[("dc1", &dc1), ("dc2", &dc2)])
            .unwrap_err();
        assert_eq!(err, MoveError::NotReady { dc: "dc2".into() });

        seal_hour(&dc2, &p).unwrap();
        let report = mover
            .move_hour(&p, &[("dc1", &dc1), ("dc2", &dc2)])
            .unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.input_files, 2);
    }

    #[test]
    fn merges_small_files_into_big_ones() {
        let p = part();
        let wh = Warehouse::new();
        let dir = p.main_dir();
        // Ten small files of 10 records each.
        for f in 0..10 {
            let file = dir.child(&format!("agg-{f}")).unwrap();
            let mut w = wh.create(&file).unwrap();
            for r in 0..10 {
                w.append_record(format!("r{f}-{r}").as_bytes());
            }
            w.finish().unwrap();
        }
        seal_hour(&wh, &p).unwrap();
        let mover = LogMover::new(Warehouse::new(), 60);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.input_files, 10);
        assert_eq!(report.records, 100);
        assert_eq!(report.output_files, 2, "100 records at 60/file → 2 files");
        let files = mover.main().list_files_recursive(&p.main_dir()).unwrap();
        assert_eq!(files.len(), 2);
    }

    #[test]
    fn slide_is_atomic_nothing_under_logs_until_done() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a", b"b"]);
        seal_hour(&dc1, &p).unwrap();
        let mover = LogMover::new(Warehouse::new(), 1000);
        assert!(!mover.main().exists(&p.main_dir()));
        mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert!(mover.main().exists(&p.main_dir()));
        // Assembly area is gone after the rename.
        assert!(!mover.main().exists(&p.staging_dir()));
    }

    #[test]
    fn second_move_is_rejected() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a"]);
        seal_hour(&dc1, &p).unwrap();
        let mover = LogMover::new(Warehouse::new(), 1000);
        mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert_eq!(
            mover.move_hour(&p, &[("dc1", &dc1)]).unwrap_err(),
            MoveError::AlreadyMoved
        );
    }

    #[test]
    fn sanity_check_drops_empty_records() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a", b"", b"c", b""]);
        seal_hour(&dc1, &p).unwrap();
        let mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.dropped, 2);
    }

    #[test]
    fn sealed_but_empty_hour_moves_cleanly() {
        let p = part();
        let wh = Warehouse::new();
        seal_hour(&wh, &p).unwrap();
        let mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.output_files, 0);
        // The hour directory exists (readers see an empty, complete hour).
        assert!(mover.main().exists(&p.main_dir()));
    }
}
