//! The log mover pipeline.
//!
//! "Another process is responsible for moving these logs from the
//! per-datacenter staging clusters into the main Hadoop data warehouse. It
//! applies certain sanity checks and transformations, such as merging many
//! small files into a few big ones … it ensures that by the time logs are
//! made available in the main data warehouse, all datacenters that produce a
//! given log category have transferred their logs. Once all of this is done,
//! the log mover pipeline atomically slides an hour's worth of logs into the
//! main data warehouse." (§2)

use std::collections::HashSet;
use std::sync::Arc;

use uli_warehouse::{ColumnarLanding, HourlyPartition, Warehouse, WarehouseError, WarehouseResult};

use crate::message::EntryId;
use crate::staged;
use crate::tap::DeliveryTap;

/// Marker file an aggregator cluster writes once its hour is complete.
pub const DONE_MARKER: &str = "_DONE";

/// Result of moving one category-hour into the main warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveReport {
    /// The partition that was moved.
    pub partition: HourlyPartition,
    /// Small files read from all staging clusters.
    pub input_files: u64,
    /// Staging files rejected whole by sanity checks (unreadable: corrupt
    /// or truncated blocks). Rejection never poisons the slide.
    pub rejected_files: u64,
    /// Large files written into the main warehouse.
    pub output_files: u64,
    /// Records moved.
    pub records: u64,
    /// Records dropped by sanity checks (empty messages, bad envelopes).
    pub dropped: u64,
    /// Stamped records skipped because their id was already moved — the
    /// re-delivery duplicates the merge squashes.
    pub duplicates: u64,
    /// Delivery ids of the stamped records this move made visible.
    pub moved_ids: Vec<EntryId>,
}

/// Errors specific to the mover's readiness protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveError {
    /// A datacenter has not sealed this hour yet.
    NotReady {
        /// Name of the lagging datacenter.
        dc: String,
    },
    /// The hour already exists in the main warehouse.
    AlreadyMoved,
    /// An underlying warehouse failure.
    Warehouse(WarehouseError),
}

impl std::fmt::Display for MoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveError::NotReady { dc } => write!(f, "datacenter {dc} has not sealed the hour"),
            MoveError::AlreadyMoved => write!(f, "hour already present in main warehouse"),
            MoveError::Warehouse(e) => write!(f, "warehouse error: {e}"),
        }
    }
}

impl std::error::Error for MoveError {}

impl From<WarehouseError> for MoveError {
    fn from(e: WarehouseError) -> Self {
        MoveError::Warehouse(e)
    }
}

/// Seals a category-hour on one staging cluster by writing the done marker.
/// Called by the datacenter's flush driver once its aggregators have flushed
/// everything for the hour.
pub fn seal_hour(staging: &Warehouse, partition: &HourlyPartition) -> WarehouseResult<()> {
    let dir = partition.main_dir();
    staging.mkdirs(&dir)?;
    let marker = dir.child(DONE_MARKER).expect("valid marker name");
    staging.create(&marker)?.finish()?;
    Ok(())
}

/// The mover: merges sealed staging hours into the main warehouse.
///
/// The mover is idempotent under re-delivery: it remembers the delivery
/// ids of every stamped record it has moved (across hours) and squashes
/// duplicates during the merge, and a whole hour that is already present
/// is refused with [`MoveError::AlreadyMoved`]. Envelopes are stripped —
/// only bare payloads reach the main warehouse.
pub struct LogMover {
    main: Warehouse,
    /// Target number of records per merged output file.
    records_per_file: u64,
    /// Delivery ids already made visible in the main warehouse.
    seen: HashSet<EntryId>,
    /// Columnar landing codec, when the category lands columnar. `None`
    /// keeps the original row-format landing.
    landing: Option<Arc<dyn ColumnarLanding>>,
    /// Delivery taps, notified once per successful slide with the records
    /// it made visible.
    taps: Vec<Box<dyn DeliveryTap>>,
}

impl LogMover {
    /// Creates a mover targeting `main`, merging into files of
    /// `records_per_file` records.
    pub fn new(main: Warehouse, records_per_file: u64) -> Self {
        assert!(records_per_file > 0);
        LogMover {
            main,
            records_per_file,
            seen: HashSet::new(),
            landing: None,
            taps: Vec::new(),
        }
    }

    /// Attaches a delivery tap. Taps observe every record a successful
    /// slide makes visible — nothing on failed or retried moves — so a
    /// tap's totals track the delivered partition exactly.
    pub fn add_tap(&mut self, tap: Box<dyn DeliveryTap>) {
        self.taps.push(tap);
    }

    /// Lands merged hours columnar through `landing` instead of row-format.
    /// Payloads the codec rejects go to a row-format `…-rows` sibling file,
    /// so the slide still moves every sane record. Row landings stay
    /// readable forever — readers sniff the layout per file — so flipping
    /// this on (or back off) mid-history needs no migration.
    pub fn with_landing(mut self, landing: Arc<dyn ColumnarLanding>) -> Self {
        self.landing = Some(landing);
        self
    }

    /// In-place form of [`LogMover::with_landing`], for movers owned by a
    /// pipeline that was already built.
    pub fn set_landing(&mut self, landing: Arc<dyn ColumnarLanding>) {
        self.landing = Some(landing);
    }

    /// Moves one category-hour from every staging cluster into the main
    /// warehouse, atomically.
    ///
    /// `staging` lists `(datacenter name, staging warehouse)` for every
    /// datacenter that produces this category. All of them must have sealed
    /// the hour (via [`seal_hour`]); otherwise [`MoveError::NotReady`].
    pub fn move_hour(
        &mut self,
        partition: &HourlyPartition,
        staging: &[(&str, &Warehouse)],
    ) -> Result<MoveReport, MoveError> {
        let final_dir = partition.main_dir();
        if self.main.exists(&final_dir) {
            return Err(MoveError::AlreadyMoved);
        }
        let src_dir = partition.main_dir();
        // Readiness: every datacenter must have the done marker.
        for (dc, wh) in staging {
            let marker = src_dir.child(DONE_MARKER).expect("valid marker");
            if !wh.exists(&marker) {
                return Err(MoveError::NotReady { dc: dc.to_string() });
            }
        }

        // Assemble the merged hour under /staging in the main warehouse.
        let assembly_dir = partition.staging_dir();
        if self.main.exists(&assembly_dir) {
            // A previous failed attempt left debris; restart cleanly.
            self.main.delete_dir(&assembly_dir)?;
        }
        self.main.mkdirs(&assembly_dir)?;

        let mut report = MoveReport {
            partition: partition.clone(),
            input_files: 0,
            rejected_files: 0,
            output_files: 0,
            records: 0,
            dropped: 0,
            duplicates: 0,
            moved_ids: Vec::new(),
        };
        // Ids first seen during this move. Only committed to `self.seen`
        // once the slide succeeds, so a failed attempt can be retried
        // without its records counting as duplicates.
        let mut fresh: HashSet<EntryId> = HashSet::new();
        // Payloads this move will make visible, buffered for the taps and
        // released only after the slide succeeds (same commit point as
        // `fresh`), so a failed move feeds taps nothing.
        let mut tapped: Vec<Vec<u8>> = Vec::new();
        let mut out: Option<uli_warehouse::RecordFileWriter> = None;
        let mut out_records = 0u64;
        let mut out_idx = 0u64;
        // Columnar landing buffers a whole output file's payloads: the
        // landing codec needs them together to build the per-file dictionary.
        let mut chunk: Vec<Vec<u8>> = Vec::new();

        for (_dc, wh) in staging {
            let files = match wh.list_files_recursive(&src_dir) {
                Ok(f) => f,
                Err(WarehouseError::NotFound(_)) => continue,
                Err(e) => return Err(e.into()),
            };
            for file in files {
                if file.name() == DONE_MARKER {
                    continue;
                }
                // Sanity check: read the file whole. Corrupt or truncated
                // blocks reject the file without poisoning the slide.
                let records = match wh.open(&file).and_then(|r| r.read_all()) {
                    Ok(r) => r,
                    Err(WarehouseError::ChecksumMismatch { .. })
                    | Err(WarehouseError::Corrupt(_)) => {
                        report.rejected_files += 1;
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                report.input_files += 1;
                let framed = staged::is_framed(&records);
                let body = if framed { &records[1..] } else { &records[..] };
                for record in body {
                    let (id, payload) = if framed {
                        match staged::decode(record) {
                            Some(x) => x,
                            None => {
                                report.dropped += 1;
                                continue;
                            }
                        }
                    } else {
                        (None, record.as_slice())
                    };
                    // Sanity check: drop empty messages.
                    if payload.is_empty() {
                        report.dropped += 1;
                        continue;
                    }
                    if let Some(id) = id {
                        if self.seen.contains(&id) || !fresh.insert(id) {
                            report.duplicates += 1;
                            continue;
                        }
                        report.moved_ids.push(id);
                    }
                    if !self.taps.is_empty() {
                        tapped.push(payload.to_vec());
                    }
                    if let Some(landing) = &self.landing {
                        chunk.push(payload.to_vec());
                        report.records += 1;
                        if chunk.len() as u64 >= self.records_per_file {
                            report.output_files += flush_columnar(
                                &self.main,
                                landing.as_ref(),
                                &assembly_dir,
                                out_idx,
                                &mut chunk,
                            )?;
                            out_idx += 1;
                        }
                        continue;
                    }
                    if out.is_none() {
                        let path = assembly_dir
                            .child(&format!("part-{out_idx:05}"))
                            .expect("valid part name");
                        out = Some(self.main.create(&path)?);
                        out_idx += 1;
                    }
                    let w = out.as_mut().expect("writer created above");
                    w.append_record(payload);
                    out_records += 1;
                    report.records += 1;
                    if out_records >= self.records_per_file {
                        out.take().expect("writer present").finish()?;
                        report.output_files += 1;
                        out_records = 0;
                    }
                }
            }
        }
        if let (Some(landing), false) = (&self.landing, chunk.is_empty()) {
            report.output_files += flush_columnar(
                &self.main,
                landing.as_ref(),
                &assembly_dir,
                out_idx,
                &mut chunk,
            )?;
        }
        if let Some(w) = out.take() {
            w.finish()?;
            report.output_files += 1;
        }

        // The atomic slide: one rename makes the whole hour visible.
        if let Some(parent) = final_dir.parent() {
            self.main.mkdirs(&parent)?;
        }
        self.main.rename(&assembly_dir, &final_dir)?;
        self.seen.extend(fresh);
        // The slide succeeded: the taps now see exactly what batch readers
        // of this hour will see.
        for tap in &mut self.taps {
            tap.hour_delivered(partition, &tapped);
        }
        Ok(report)
    }

    /// The main warehouse this mover writes into.
    pub fn main(&self) -> &Warehouse {
        &self.main
    }
}

/// Lands one buffered output file columnar: the codec writes what it can
/// decode to `part-NNNNN`; rejected payloads go whole to a row-format
/// `part-NNNNN-rows` sibling. Returns the number of files written.
fn flush_columnar(
    main: &Warehouse,
    landing: &dyn ColumnarLanding,
    assembly_dir: &uli_warehouse::WhPath,
    idx: u64,
    chunk: &mut Vec<Vec<u8>>,
) -> Result<u64, MoveError> {
    let path = assembly_dir
        .child(&format!("part-{idx:05}"))
        .expect("valid part name");
    let rejected = landing.write_file(main, &path, chunk)?;
    let mut files = 1;
    if !rejected.is_empty() {
        let fallback = assembly_dir
            .child(&format!("part-{idx:05}-rows"))
            .expect("valid part name");
        let mut w = main.create(&fallback)?;
        for &i in &rejected {
            w.append_record(&chunk[i]);
        }
        w.finish()?;
        files += 1;
    }
    chunk.clear();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staging_with(partition: &HourlyPartition, records: &[&[u8]]) -> Warehouse {
        let wh = Warehouse::new();
        let dir = partition.main_dir();
        let file = dir.child("agg-0-0").unwrap();
        let mut w = wh.create(&file).unwrap();
        for r in records {
            w.append_record(r);
        }
        w.finish().unwrap();
        wh
    }

    fn part() -> HourlyPartition {
        HourlyPartition::new("client_events", 2012, 8, 21, 14).unwrap()
    }

    /// Writes a framed staging file the way an aggregator would.
    fn framed_staging_with(
        partition: &HourlyPartition,
        file_name: &str,
        records: &[(Option<EntryId>, &[u8])],
    ) -> Warehouse {
        let wh = Warehouse::new();
        write_framed(&wh, partition, file_name, records);
        wh
    }

    fn write_framed(
        wh: &Warehouse,
        partition: &HourlyPartition,
        file_name: &str,
        records: &[(Option<EntryId>, &[u8])],
    ) {
        let file = partition.main_dir().child(file_name).unwrap();
        let mut w = wh.create(&file).unwrap();
        w.append_record(staged::MAGIC);
        for (id, payload) in records {
            w.append_record(&staged::encode(*id, payload));
        }
        w.finish().unwrap();
    }

    fn id(host: u64, seq: u64) -> EntryId {
        EntryId { host, seq }
    }

    #[test]
    fn refuses_until_all_dcs_sealed() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a"]);
        let dc2 = staging_with(&p, &[b"b"]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let err = mover
            .move_hour(&p, &[("dc1", &dc1), ("dc2", &dc2)])
            .unwrap_err();
        assert_eq!(err, MoveError::NotReady { dc: "dc2".into() });

        seal_hour(&dc2, &p).unwrap();
        let report = mover
            .move_hour(&p, &[("dc1", &dc1), ("dc2", &dc2)])
            .unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.input_files, 2);
    }

    #[test]
    fn merges_small_files_into_big_ones() {
        let p = part();
        let wh = Warehouse::new();
        let dir = p.main_dir();
        // Ten small files of 10 records each.
        for f in 0..10 {
            let file = dir.child(&format!("agg-{f}")).unwrap();
            let mut w = wh.create(&file).unwrap();
            for r in 0..10 {
                w.append_record(format!("r{f}-{r}").as_bytes());
            }
            w.finish().unwrap();
        }
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 60);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.input_files, 10);
        assert_eq!(report.records, 100);
        assert_eq!(report.output_files, 2, "100 records at 60/file → 2 files");
        let files = mover.main().list_files_recursive(&p.main_dir()).unwrap();
        assert_eq!(files.len(), 2);
    }

    #[test]
    fn slide_is_atomic_nothing_under_logs_until_done() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a", b"b"]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        assert!(!mover.main().exists(&p.main_dir()));
        mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert!(mover.main().exists(&p.main_dir()));
        // Assembly area is gone after the rename.
        assert!(!mover.main().exists(&p.staging_dir()));
    }

    #[test]
    fn second_move_is_rejected() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a"]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert_eq!(
            mover.move_hour(&p, &[("dc1", &dc1)]).unwrap_err(),
            MoveError::AlreadyMoved
        );
    }

    #[test]
    fn sanity_check_drops_empty_records() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a", b"", b"c", b""]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.dropped, 2);
    }

    #[test]
    fn sealed_but_empty_hour_moves_cleanly() {
        let p = part();
        let wh = Warehouse::new();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.output_files, 0);
        // The hour directory exists (readers see an empty, complete hour).
        assert!(mover.main().exists(&p.main_dir()));
    }

    #[test]
    fn framed_envelopes_are_stripped_in_main_warehouse() {
        let p = part();
        let wh = framed_staging_with(&p, "agg-0", &[(Some(id(1, 0)), b"alpha"), (None, b"beta")]);
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.moved_ids, vec![id(1, 0)]);
        let files = mover.main().list_files_recursive(&p.main_dir()).unwrap();
        let payloads = mover.main().open(&files[0]).unwrap().read_all().unwrap();
        assert_eq!(payloads, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn duplicate_stamped_records_are_squashed_within_a_move() {
        let p = part();
        let wh = Warehouse::new();
        // The same stamped record delivered to two aggregators (ack-loss
        // retry), plus a clean one.
        write_framed(
            &wh,
            &p,
            "agg-0",
            &[(Some(id(1, 0)), b"x"), (Some(id(1, 1)), b"y")],
        );
        write_framed(&wh, &p, "agg-1", &[(Some(id(1, 0)), b"x")]);
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.moved_ids, vec![id(1, 0), id(1, 1)]);
    }

    #[test]
    fn redelivery_into_a_later_hour_is_a_no_op() {
        let h14 = part();
        let h15 = HourlyPartition::new("client_events", 2012, 8, 21, 15).unwrap();
        let wh = Warehouse::new();
        write_framed(
            &wh,
            &h14,
            "agg-0",
            &[(Some(id(2, 0)), b"x"), (Some(id(2, 1)), b"y")],
        );
        seal_hour(&wh, &h14).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        assert_eq!(mover.move_hour(&h14, &[("dc1", &wh)]).unwrap().records, 2);

        // The sealed hour's content shows up again in the next hour (an
        // aggregator replayed its local-disk buffer after the move).
        write_framed(
            &wh,
            &h15,
            "agg-0",
            &[(Some(id(2, 0)), b"x"), (Some(id(2, 1)), b"y")],
        );
        seal_hour(&wh, &h15).unwrap();
        let report = mover.move_hour(&h15, &[("dc1", &wh)]).unwrap();
        assert_eq!(
            report.records, 0,
            "re-delivered records must not move twice"
        );
        assert_eq!(report.duplicates, 2);
        // And moving the sealed hour itself again is refused outright.
        assert_eq!(
            mover.move_hour(&h14, &[("dc1", &wh)]).unwrap_err(),
            MoveError::AlreadyMoved
        );
    }

    #[test]
    fn corrupt_block_rejects_the_file_without_poisoning_the_slide() {
        let p = part();
        let wh = Warehouse::new();
        write_framed(&wh, &p, "agg-0", &[(Some(id(1, 0)), b"good")]);
        write_framed(&wh, &p, "agg-1", &[(Some(id(1, 1)), b"bad")]);
        let damaged = p.main_dir().child("agg-1").unwrap();
        wh.corrupt_block(&damaged, 0).unwrap();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.rejected_files, 1);
        assert_eq!(report.input_files, 1);
        assert_eq!(report.records, 1, "the healthy file still moves");
        assert_eq!(report.moved_ids, vec![id(1, 0)]);
        // The slide completed: the hour is visible and no debris remains.
        assert!(mover.main().exists(&p.main_dir()));
        assert!(!mover.main().exists(&p.staging_dir()));
    }

    #[test]
    fn truncated_file_rejects_without_poisoning_the_slide() {
        let p = part();
        let wh = Warehouse::new();
        write_framed(&wh, &p, "agg-0", &[(Some(id(3, 0)), b"keep")]);
        // A half-written file whose checksum was nonetheless persisted.
        let file = p.main_dir().child("agg-1").unwrap();
        let mut w = wh.create(&file).unwrap();
        w.append_record(staged::MAGIC);
        for i in 0..32u64 {
            w.append_record(&staged::encode(Some(id(3, 1 + i)), b"truncated-away"));
        }
        w.finish().unwrap();
        wh.truncate_block(&file, 0).unwrap();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.rejected_files, 1);
        assert_eq!(report.records, 1);
        assert_eq!(report.moved_ids, vec![id(3, 0)]);
        assert!(mover.main().exists(&p.main_dir()));
    }

    /// A toy landing codec: payloads of the form `k,v` become two columns;
    /// anything else is rejected to the row fallback.
    struct CsvLanding;

    impl uli_warehouse::ColumnarLanding for CsvLanding {
        fn write_file(
            &self,
            warehouse: &Warehouse,
            path: &uli_warehouse::WhPath,
            payloads: &[Vec<u8>],
        ) -> WarehouseResult<Vec<usize>> {
            let mut w = uli_warehouse::ColumnarFileWriter::create(warehouse, path, 2, 64, None)?;
            let mut rejected = Vec::new();
            for (i, p) in payloads.iter().enumerate() {
                let cell_count = p.iter().filter(|b| **b == b',').count();
                match (std::str::from_utf8(p), cell_count) {
                    (Ok(s), 1) => {
                        let (k, v) = s.split_once(',').expect("one comma counted");
                        w.append_row(&[k.as_bytes(), v.as_bytes()]);
                    }
                    _ => rejected.push(i),
                }
            }
            w.finish()?;
            Ok(rejected)
        }
    }

    #[test]
    fn columnar_landing_writes_columnar_files_with_row_fallback() {
        let p = part();
        let wh = Warehouse::new();
        write_framed(
            &wh,
            &p,
            "agg-0",
            &[
                (Some(id(1, 0)), b"a,1"),
                (Some(id(1, 1)), b"not columnar"),
                (Some(id(1, 2)), b"b,2"),
            ],
        );
        seal_hour(&wh, &p).unwrap();
        let mut mover =
            LogMover::new(Warehouse::new(), 1000).with_landing(std::sync::Arc::new(CsvLanding));
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 3, "rejects still move, via the fallback");
        assert_eq!(report.output_files, 2, "one columnar + one fallback");

        let main = mover.main();
        let files = main.list_files_recursive(&p.main_dir()).unwrap();
        let col = files.iter().find(|f| f.name() == "part-00000").unwrap();
        let rows = files
            .iter()
            .find(|f| f.name() == "part-00000-rows")
            .unwrap();
        assert!(uli_warehouse::sniff_columnar(main, col).unwrap().is_some());
        let file = uli_warehouse::ColumnarFile::open(main, col).unwrap();
        let group = file.read_group(0, &[true, true]).unwrap();
        assert_eq!(group.rows(), 2);
        assert_eq!(
            group.cell(0, 1),
            Some(uli_warehouse::ColumnCell::Bytes(b"b"))
        );
        assert_eq!(
            main.open(rows).unwrap().read_all().unwrap(),
            vec![b"not columnar".to_vec()]
        );
    }

    #[test]
    fn columnar_landing_still_merges_and_chunks_by_records_per_file() {
        let p = part();
        let wh = Warehouse::new();
        for f in 0..4 {
            let file = p.main_dir().child(&format!("agg-{f}")).unwrap();
            let mut w = wh.create(&file).unwrap();
            for r in 0..10 {
                w.append_record(format!("f{f},{r}").as_bytes());
            }
            w.finish().unwrap();
        }
        seal_hour(&wh, &p).unwrap();
        let mut mover =
            LogMover::new(Warehouse::new(), 25).with_landing(std::sync::Arc::new(CsvLanding));
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 40);
        assert_eq!(report.output_files, 2, "40 records at 25/file → 2 files");
        // Every landed record is readable back out of the columnar files.
        let main = mover.main();
        let mut rows = 0;
        for f in main.list_files_recursive(&p.main_dir()).unwrap() {
            let file = uli_warehouse::ColumnarFile::open(main, &f).unwrap();
            for g in 0..file.group_count() {
                rows += file.read_group(g, &[true, true]).unwrap().rows();
            }
        }
        assert_eq!(rows, 40);
    }

    #[test]
    fn malformed_envelope_is_dropped_not_fatal() {
        let p = part();
        let wh = Warehouse::new();
        let file = p.main_dir().child("agg-0").unwrap();
        let mut w = wh.create(&file).unwrap();
        w.append_record(staged::MAGIC);
        w.append_record(&staged::encode(Some(id(1, 0)), b"good"));
        w.append_record(&[1u8, 2, 3]); // truncated stamped envelope
        w.finish().unwrap();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.dropped, 1);
    }
}
