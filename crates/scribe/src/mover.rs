//! The log mover pipeline.
//!
//! "Another process is responsible for moving these logs from the
//! per-datacenter staging clusters into the main Hadoop data warehouse. It
//! applies certain sanity checks and transformations, such as merging many
//! small files into a few big ones … it ensures that by the time logs are
//! made available in the main data warehouse, all datacenters that produce a
//! given log category have transferred their logs. Once all of this is done,
//! the log mover pipeline atomically slides an hour's worth of logs into the
//! main data warehouse." (§2)
//!
//! ## Parallel pipelined delivery
//!
//! The hot path of a move is staged in three phases so the heavy work
//! shards across a [`ScanPool`] while every exactly-once guarantee keeps a
//! single serialization point:
//!
//! 1. **Decode** (parallel): each staged file is read, sanity-checked and
//!    envelope-decoded independently — pure per-file work with no shared
//!    state, mapped over the pool in input order.
//! 2. **Merge** (serial): decoded files are walked in the exact datacenter
//!    → file → record order the serial mover used, deduping against the
//!    seen set. This stage is the determinism anchor: it alone decides
//!    which records land, their order, and the `moved_ids` sequence, so
//!    the result is byte-identical at any worker count.
//! 3. **Land** (parallel): the accepted record sequence is cut into
//!    `records_per_file` chunks; each chunk's encode + block compression is
//!    an independent pool task writing `part-{chunk:05}`. File bytes are a
//!    pure function of chunk contents, and the warehouse tree is keyed by
//!    path, so install order cannot leak into the landed hour. Workers
//!    draw reusable [`Compressor`](uli_warehouse::compress::Compressor)s
//!    from the warehouse's shared pool, so compression of one chunk
//!    overlaps encode of the next without re-paying allocation.
//!
//! The **commit** — atomic slide, seen-set extend + compaction, tap
//! dispatch — stays serial and runs only after every chunk landed, so taps
//! fire exactly once per successful slide, in payload order, same as serial.

use std::collections::HashSet;
use std::sync::Arc;

use uli_warehouse::{
    ColumnarLanding, HourlyPartition, Parallelism, ScanPool, Warehouse, WarehouseError,
    WarehouseResult, WhPath,
};

use crate::message::EntryId;
use crate::seen::SeenSet;
use crate::staged;
use crate::tap::DeliveryTap;

/// Marker file an aggregator cluster writes once its hour is complete.
pub const DONE_MARKER: &str = "_DONE";

/// Result of moving one category-hour into the main warehouse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveReport {
    /// The partition that was moved.
    pub partition: HourlyPartition,
    /// Small files read from all staging clusters.
    pub input_files: u64,
    /// Staging files rejected whole by sanity checks (unreadable: corrupt
    /// or truncated blocks). Rejection never poisons the slide.
    pub rejected_files: u64,
    /// Large files written into the main warehouse.
    pub output_files: u64,
    /// Records moved.
    pub records: u64,
    /// Records dropped by sanity checks (empty messages, bad envelopes).
    pub dropped: u64,
    /// Stamped records skipped because their id was already moved — the
    /// re-delivery duplicates the merge squashes.
    pub duplicates: u64,
    /// Delivery ids of the stamped records this move made visible.
    pub moved_ids: Vec<EntryId>,
    /// Uncompressed staged bytes the decode stage read (accepted files
    /// only). Deterministic — the cost-model input for the parallel decode
    /// stage.
    pub decode_bytes: u64,
    /// Payload bytes handed to the landing stage (encode + compression
    /// input). Deterministic — the cost-model input for the parallel land
    /// stage.
    pub encode_bytes: u64,
}

/// Errors specific to the mover's readiness protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveError {
    /// A datacenter has not sealed this hour yet.
    NotReady {
        /// Name of the lagging datacenter.
        dc: String,
    },
    /// The hour already exists in the main warehouse.
    AlreadyMoved,
    /// An underlying warehouse failure.
    Warehouse(WarehouseError),
}

impl std::fmt::Display for MoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveError::NotReady { dc } => write!(f, "datacenter {dc} has not sealed the hour"),
            MoveError::AlreadyMoved => write!(f, "hour already present in main warehouse"),
            MoveError::Warehouse(e) => write!(f, "warehouse error: {e}"),
        }
    }
}

impl std::error::Error for MoveError {}

impl From<WarehouseError> for MoveError {
    fn from(e: WarehouseError) -> Self {
        MoveError::Warehouse(e)
    }
}

/// Seals a category-hour on one staging cluster by writing the done marker.
/// Called by the datacenter's flush driver once its aggregators have flushed
/// everything for the hour.
pub fn seal_hour(staging: &Warehouse, partition: &HourlyPartition) -> WarehouseResult<()> {
    let dir = partition.main_dir();
    staging.mkdirs(&dir)?;
    let marker = dir.child(DONE_MARKER).expect("valid marker name");
    staging.create(&marker)?.finish()?;
    Ok(())
}

/// Registry-backed delivery metrics, attached via [`LogMover::attach_obs`].
/// Counters accumulate across successful moves; gauges track the compacted
/// seen set. The mover also opens `delivery/{decode,merge,land}` spans
/// around the three pipeline stages when obs is attached.
struct DeliveryObs {
    registry: uli_obs::Registry,
    hours_moved: uli_obs::Counter,
    records_moved: uli_obs::Counter,
    duplicates_squashed: uli_obs::Counter,
    files_rejected: uli_obs::Counter,
    records_dropped: uli_obs::Counter,
    output_files: uli_obs::Counter,
    decode_bytes: uli_obs::Counter,
    encode_bytes: uli_obs::Counter,
    seen_residual_ids: uli_obs::Gauge,
    seen_watermark_hosts: uli_obs::Gauge,
}

impl DeliveryObs {
    fn new(registry: &uli_obs::Registry) -> Self {
        DeliveryObs {
            registry: registry.clone(),
            hours_moved: registry.counter("delivery", "hours_moved"),
            records_moved: registry.counter("delivery", "records_moved"),
            duplicates_squashed: registry.counter("delivery", "duplicates_squashed"),
            files_rejected: registry.counter("delivery", "files_rejected"),
            records_dropped: registry.counter("delivery", "records_dropped"),
            output_files: registry.counter("delivery", "output_files"),
            decode_bytes: registry.counter("delivery", "decode_bytes"),
            encode_bytes: registry.counter("delivery", "encode_bytes"),
            seen_residual_ids: registry.gauge("delivery", "seen_residual_ids"),
            seen_watermark_hosts: registry.gauge("delivery", "seen_watermark_hosts"),
        }
    }

    /// Folds one successful move into the counters and refreshes the
    /// seen-set gauges.
    fn record(&self, report: &MoveReport, seen: &SeenSet) {
        self.hours_moved.inc();
        self.records_moved.add(report.records);
        self.duplicates_squashed.add(report.duplicates);
        self.files_rejected.add(report.rejected_files);
        self.records_dropped.add(report.dropped);
        self.output_files.add(report.output_files);
        self.decode_bytes.add(report.decode_bytes);
        self.encode_bytes.add(report.encode_bytes);
        self.seen_residual_ids.set(seen.residual_len() as i64);
        self.seen_watermark_hosts
            .set(seen.watermarked_hosts() as i64);
    }

    fn span(&self, name: &str) -> uli_obs::SpanGuard {
        self.registry.span("delivery", name)
    }
}

/// One staged file after the parallel decode stage.
enum DecodedFile {
    /// Sanity checks rejected the whole file (corrupt/truncated block).
    Rejected,
    /// The file decoded; records carry their envelope id (if stamped).
    Decoded {
        /// Records dropped inside this file (bad envelopes, empty payloads).
        dropped: u64,
        /// Uncompressed record bytes read from this file.
        bytes: u64,
        /// Surviving `(id, payload)` pairs, in file order.
        records: Vec<(Option<EntryId>, Vec<u8>)>,
    },
}

/// The mover: merges sealed staging hours into the main warehouse.
///
/// The mover is idempotent under re-delivery: it remembers the delivery
/// ids of every stamped record it has moved (across hours, compacted to
/// per-host watermarks — see [`SeenSet`]) and squashes duplicates during
/// the merge, and a whole hour that is already present is refused with
/// [`MoveError::AlreadyMoved`]. Envelopes are stripped — only bare
/// payloads reach the main warehouse.
pub struct LogMover {
    main: Warehouse,
    /// Target number of records per merged output file.
    records_per_file: u64,
    /// Delivery ids already made visible in the main warehouse.
    seen: SeenSet,
    /// Columnar landing codec, when the category lands columnar. `None`
    /// keeps the original row-format landing.
    landing: Option<Arc<dyn ColumnarLanding>>,
    /// Delivery taps, notified once per successful slide with the records
    /// it made visible.
    taps: Vec<Box<dyn DeliveryTap>>,
    /// Worker count for the decode and land stages. Serial by default;
    /// every worker count lands byte-identical hours.
    workers: Parallelism,
    /// Delivery counters + spans, when attached.
    obs: Option<DeliveryObs>,
}

impl LogMover {
    /// Creates a mover targeting `main`, merging into files of
    /// `records_per_file` records.
    pub fn new(main: Warehouse, records_per_file: u64) -> Self {
        assert!(records_per_file > 0);
        LogMover {
            main,
            records_per_file,
            seen: SeenSet::new(),
            landing: None,
            taps: Vec::new(),
            workers: Parallelism::serial(),
            obs: None,
        }
    }

    /// Shards the decode and land stages across `workers`. The merge and
    /// commit stay serial, so output is byte-identical at any setting.
    pub fn with_parallelism(mut self, workers: Parallelism) -> Self {
        self.workers = workers;
        self
    }

    /// In-place form of [`LogMover::with_parallelism`].
    pub fn set_parallelism(&mut self, workers: Parallelism) {
        self.workers = workers;
    }

    /// The configured delivery parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.workers
    }

    /// Registers `delivery/*` counters and gauges in `registry` and opens
    /// `delivery/{decode,merge,land}` spans around every subsequent move.
    pub fn attach_obs(&mut self, registry: &uli_obs::Registry) {
        self.obs = Some(DeliveryObs::new(registry));
    }

    /// Canonical snapshot of the seen set (sorted watermarks + sorted
    /// residual ids) — the identity tests' view of dedup state.
    pub fn seen_snapshot(&self) -> (Vec<(u64, u64)>, Vec<EntryId>) {
        self.seen.snapshot()
    }

    /// Attaches a delivery tap. Taps observe every record a successful
    /// slide makes visible — nothing on failed or retried moves — so a
    /// tap's totals track the delivered partition exactly.
    pub fn add_tap(&mut self, tap: Box<dyn DeliveryTap>) {
        self.taps.push(tap);
    }

    /// Lands merged hours columnar through `landing` instead of row-format.
    /// Payloads the codec rejects go to a row-format `…-rows` sibling file,
    /// so the slide still moves every sane record. Row landings stay
    /// readable forever — readers sniff the layout per file — so flipping
    /// this on (or back off) mid-history needs no migration.
    pub fn with_landing(mut self, landing: Arc<dyn ColumnarLanding>) -> Self {
        self.landing = Some(landing);
        self
    }

    /// In-place form of [`LogMover::with_landing`], for movers owned by a
    /// pipeline that was already built.
    pub fn set_landing(&mut self, landing: Arc<dyn ColumnarLanding>) {
        self.landing = Some(landing);
    }

    /// Moves one category-hour from every staging cluster into the main
    /// warehouse, atomically.
    ///
    /// `staging` lists `(datacenter name, staging warehouse)` for every
    /// datacenter that produces this category. All of them must have sealed
    /// the hour (via [`seal_hour`]); otherwise [`MoveError::NotReady`].
    pub fn move_hour(
        &mut self,
        partition: &HourlyPartition,
        staging: &[(&str, &Warehouse)],
    ) -> Result<MoveReport, MoveError> {
        let final_dir = partition.main_dir();
        if self.main.exists(&final_dir) {
            return Err(MoveError::AlreadyMoved);
        }
        let src_dir = partition.main_dir();
        // Readiness: every datacenter must have the done marker.
        for (dc, wh) in staging {
            let marker = src_dir.child(DONE_MARKER).expect("valid marker");
            if !wh.exists(&marker) {
                return Err(MoveError::NotReady { dc: dc.to_string() });
            }
        }

        // Assemble the merged hour under /staging in the main warehouse.
        let assembly_dir = partition.staging_dir();
        if self.main.exists(&assembly_dir) {
            // A previous failed attempt left debris; restart cleanly.
            self.main.delete_dir(&assembly_dir)?;
        }
        self.main.mkdirs(&assembly_dir)?;

        let mut report = MoveReport {
            partition: partition.clone(),
            input_files: 0,
            rejected_files: 0,
            output_files: 0,
            records: 0,
            dropped: 0,
            duplicates: 0,
            moved_ids: Vec::new(),
            decode_bytes: 0,
            encode_bytes: 0,
        };
        let pool = ScanPool::new(self.workers);

        // Stage 1 — decode (parallel). Gather the staged files in the
        // canonical datacenter → sorted-file order, then decode each one
        // independently: pure per-file work, results re-sequenced to input
        // order by the pool.
        let mut inputs: Vec<(&Warehouse, WhPath)> = Vec::new();
        for (_dc, wh) in staging {
            let files = match wh.list_files_recursive(&src_dir) {
                Ok(f) => f,
                Err(WarehouseError::NotFound(_)) => continue,
                Err(e) => return Err(e.into()),
            };
            for file in files {
                if file.name() == DONE_MARKER {
                    continue;
                }
                inputs.push((wh, file));
            }
        }
        let decode_span = self.obs.as_ref().map(|o| o.span("decode"));
        let decoded: Vec<Result<DecodedFile, WarehouseError>> =
            pool.map(inputs, |_i, (wh, file)| decode_staged_file(wh, &file));
        drop(decode_span);
        // A fatal (non-sanity) failure surfaces exactly as in the serial
        // mover: the first one in input order wins.
        for d in &decoded {
            if let Err(e) = d {
                return Err(e.clone().into());
            }
        }

        // Stage 2 — merge (serial). The determinism anchor: walks decoded
        // files in input order, applying the exact serial dedup, so the
        // accepted payload sequence, `moved_ids`, and every counter are
        // independent of worker count.
        //
        // `fresh` holds ids first seen during this move; it reaches
        // `self.seen` only once the slide succeeds, so a failed attempt
        // retries without its records counting as duplicates.
        let merge_span = self.obs.as_ref().map(|o| o.span("merge"));
        let mut fresh: HashSet<EntryId> = HashSet::new();
        let mut accepted: Vec<Vec<u8>> = Vec::new();
        for file in decoded {
            match file.expect("fatal errors surfaced above") {
                DecodedFile::Rejected => report.rejected_files += 1,
                DecodedFile::Decoded {
                    dropped,
                    bytes,
                    records,
                } => {
                    report.input_files += 1;
                    report.dropped += dropped;
                    report.decode_bytes += bytes;
                    for (id, payload) in records {
                        if let Some(id) = id {
                            if self.seen.contains(&id) || !fresh.insert(id) {
                                report.duplicates += 1;
                                continue;
                            }
                            report.moved_ids.push(id);
                        }
                        report.encode_bytes += payload.len() as u64;
                        accepted.push(payload);
                    }
                }
            }
        }
        report.records = accepted.len() as u64;
        drop(merge_span);

        // Stage 3 — land (parallel). The accepted sequence is cut into
        // `records_per_file` chunks; chunk `i` always becomes
        // `part-{i:05}` with exactly those payloads, so the landed bytes
        // are a pure function of the merge output. Workers reuse pooled
        // compressors via the warehouse, overlapping one chunk's block
        // compression with the next chunk's encode.
        let rpf = self.records_per_file as usize;
        let n_chunks = accepted.len().div_ceil(rpf);
        let chunks: Vec<(u64, std::ops::Range<usize>)> = (0..n_chunks)
            .map(|i| (i as u64, i * rpf..((i + 1) * rpf).min(accepted.len())))
            .collect();
        let land_span = self.obs.as_ref().map(|o| o.span("land"));
        let landed: Vec<Result<u64, MoveError>> = pool.map(chunks, |_i, (idx, range)| {
            land_chunk(
                &self.main,
                self.landing.as_deref(),
                &assembly_dir,
                idx,
                &accepted[range],
            )
        });
        drop(land_span);
        for files in landed {
            report.output_files += files?;
        }

        // Commit — the single serialization point. One rename makes the
        // whole hour visible; only then do the fresh ids commit (and the
        // seen set compact to watermarks) and the taps fire, in payload
        // order, exactly once.
        if let Some(parent) = final_dir.parent() {
            self.main.mkdirs(&parent)?;
        }
        self.main.rename(&assembly_dir, &final_dir)?;
        self.seen.extend(fresh);
        self.seen.compact();
        // The slide succeeded: the taps now see exactly what batch readers
        // of this hour will see.
        for tap in &mut self.taps {
            tap.hour_delivered(partition, &accepted);
        }
        if let Some(obs) = &self.obs {
            obs.record(&report, &self.seen);
        }
        Ok(report)
    }

    /// The main warehouse this mover writes into.
    pub fn main(&self) -> &Warehouse {
        &self.main
    }
}

/// Decode-stage worker: reads one staged file whole, applies the sanity
/// checks, and strips envelopes. Corrupt or truncated blocks reject the
/// file without poisoning the slide; any other failure is fatal.
fn decode_staged_file(wh: &Warehouse, file: &WhPath) -> Result<DecodedFile, WarehouseError> {
    let records = match wh.open(file).and_then(|r| r.read_all()) {
        Ok(r) => r,
        Err(WarehouseError::ChecksumMismatch { .. }) | Err(WarehouseError::Corrupt(_)) => {
            return Ok(DecodedFile::Rejected);
        }
        Err(e) => return Err(e),
    };
    let framed = staged::is_framed(&records);
    let body = if framed { &records[1..] } else { &records[..] };
    let mut dropped = 0u64;
    let mut bytes = 0u64;
    let mut out = Vec::with_capacity(body.len());
    for record in body {
        bytes += record.len() as u64;
        let (id, payload) = if framed {
            match staged::decode(record) {
                Some(x) => x,
                None => {
                    dropped += 1;
                    continue;
                }
            }
        } else {
            (None, record.as_slice())
        };
        // Sanity check: drop empty messages.
        if payload.is_empty() {
            dropped += 1;
            continue;
        }
        out.push((id, payload.to_vec()));
    }
    Ok(DecodedFile::Decoded {
        dropped,
        bytes,
        records: out,
    })
}

/// Land-stage worker: writes one chunk of the accepted sequence as
/// `part-{idx:05}` (plus a row-format `-rows` sibling for payloads a
/// columnar codec rejects). Returns the number of files written.
fn land_chunk(
    main: &Warehouse,
    landing: Option<&dyn ColumnarLanding>,
    assembly_dir: &WhPath,
    idx: u64,
    payloads: &[Vec<u8>],
) -> Result<u64, MoveError> {
    match landing {
        Some(landing) => flush_columnar(main, landing, assembly_dir, idx, payloads),
        None => {
            let path = assembly_dir
                .child(&format!("part-{idx:05}"))
                .expect("valid part name");
            let mut w = main.create(&path)?;
            for p in payloads {
                w.append_record(p);
            }
            w.finish()?;
            Ok(1)
        }
    }
}

/// Lands one output chunk columnar: the codec writes what it can decode to
/// `part-NNNNN`; rejected payloads go whole to a row-format
/// `part-NNNNN-rows` sibling. Returns the number of files written.
fn flush_columnar(
    main: &Warehouse,
    landing: &dyn ColumnarLanding,
    assembly_dir: &WhPath,
    idx: u64,
    chunk: &[Vec<u8>],
) -> Result<u64, MoveError> {
    let path = assembly_dir
        .child(&format!("part-{idx:05}"))
        .expect("valid part name");
    let rejected = landing.write_file(main, &path, chunk)?;
    let mut files = 1;
    if !rejected.is_empty() {
        let fallback = assembly_dir
            .child(&format!("part-{idx:05}-rows"))
            .expect("valid part name");
        let mut w = main.create(&fallback)?;
        for &i in &rejected {
            w.append_record(&chunk[i]);
        }
        w.finish()?;
        files += 1;
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staging_with(partition: &HourlyPartition, records: &[&[u8]]) -> Warehouse {
        let wh = Warehouse::new();
        let dir = partition.main_dir();
        let file = dir.child("agg-0-0").unwrap();
        let mut w = wh.create(&file).unwrap();
        for r in records {
            w.append_record(r);
        }
        w.finish().unwrap();
        wh
    }

    fn part() -> HourlyPartition {
        HourlyPartition::new("client_events", 2012, 8, 21, 14).unwrap()
    }

    /// Writes a framed staging file the way an aggregator would.
    fn framed_staging_with(
        partition: &HourlyPartition,
        file_name: &str,
        records: &[(Option<EntryId>, &[u8])],
    ) -> Warehouse {
        let wh = Warehouse::new();
        write_framed(&wh, partition, file_name, records);
        wh
    }

    fn write_framed(
        wh: &Warehouse,
        partition: &HourlyPartition,
        file_name: &str,
        records: &[(Option<EntryId>, &[u8])],
    ) {
        let file = partition.main_dir().child(file_name).unwrap();
        let mut w = wh.create(&file).unwrap();
        w.append_record(staged::MAGIC);
        for (id, payload) in records {
            w.append_record(&staged::encode(*id, payload));
        }
        w.finish().unwrap();
    }

    fn id(host: u64, seq: u64) -> EntryId {
        EntryId { host, seq }
    }

    #[test]
    fn refuses_until_all_dcs_sealed() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a"]);
        let dc2 = staging_with(&p, &[b"b"]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let err = mover
            .move_hour(&p, &[("dc1", &dc1), ("dc2", &dc2)])
            .unwrap_err();
        assert_eq!(err, MoveError::NotReady { dc: "dc2".into() });

        seal_hour(&dc2, &p).unwrap();
        let report = mover
            .move_hour(&p, &[("dc1", &dc1), ("dc2", &dc2)])
            .unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.input_files, 2);
    }

    #[test]
    fn merges_small_files_into_big_ones() {
        let p = part();
        let wh = Warehouse::new();
        let dir = p.main_dir();
        // Ten small files of 10 records each.
        for f in 0..10 {
            let file = dir.child(&format!("agg-{f}")).unwrap();
            let mut w = wh.create(&file).unwrap();
            for r in 0..10 {
                w.append_record(format!("r{f}-{r}").as_bytes());
            }
            w.finish().unwrap();
        }
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 60);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.input_files, 10);
        assert_eq!(report.records, 100);
        assert_eq!(report.output_files, 2, "100 records at 60/file → 2 files");
        let files = mover.main().list_files_recursive(&p.main_dir()).unwrap();
        assert_eq!(files.len(), 2);
    }

    #[test]
    fn slide_is_atomic_nothing_under_logs_until_done() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a", b"b"]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        assert!(!mover.main().exists(&p.main_dir()));
        mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert!(mover.main().exists(&p.main_dir()));
        // Assembly area is gone after the rename.
        assert!(!mover.main().exists(&p.staging_dir()));
    }

    #[test]
    fn second_move_is_rejected() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a"]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert_eq!(
            mover.move_hour(&p, &[("dc1", &dc1)]).unwrap_err(),
            MoveError::AlreadyMoved
        );
    }

    #[test]
    fn sanity_check_drops_empty_records() {
        let p = part();
        let dc1 = staging_with(&p, &[b"a", b"", b"c", b""]);
        seal_hour(&dc1, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &dc1)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.dropped, 2);
    }

    #[test]
    fn sealed_but_empty_hour_moves_cleanly() {
        let p = part();
        let wh = Warehouse::new();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.output_files, 0);
        // The hour directory exists (readers see an empty, complete hour).
        assert!(mover.main().exists(&p.main_dir()));
    }

    #[test]
    fn framed_envelopes_are_stripped_in_main_warehouse() {
        let p = part();
        let wh = framed_staging_with(&p, "agg-0", &[(Some(id(1, 0)), b"alpha"), (None, b"beta")]);
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.moved_ids, vec![id(1, 0)]);
        let files = mover.main().list_files_recursive(&p.main_dir()).unwrap();
        let payloads = mover.main().open(&files[0]).unwrap().read_all().unwrap();
        assert_eq!(payloads, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn duplicate_stamped_records_are_squashed_within_a_move() {
        let p = part();
        let wh = Warehouse::new();
        // The same stamped record delivered to two aggregators (ack-loss
        // retry), plus a clean one.
        write_framed(
            &wh,
            &p,
            "agg-0",
            &[(Some(id(1, 0)), b"x"), (Some(id(1, 1)), b"y")],
        );
        write_framed(&wh, &p, "agg-1", &[(Some(id(1, 0)), b"x")]);
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.moved_ids, vec![id(1, 0), id(1, 1)]);
    }

    #[test]
    fn redelivery_into_a_later_hour_is_a_no_op() {
        let h14 = part();
        let h15 = HourlyPartition::new("client_events", 2012, 8, 21, 15).unwrap();
        let wh = Warehouse::new();
        write_framed(
            &wh,
            &h14,
            "agg-0",
            &[(Some(id(2, 0)), b"x"), (Some(id(2, 1)), b"y")],
        );
        seal_hour(&wh, &h14).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        assert_eq!(mover.move_hour(&h14, &[("dc1", &wh)]).unwrap().records, 2);

        // The sealed hour's content shows up again in the next hour (an
        // aggregator replayed its local-disk buffer after the move).
        write_framed(
            &wh,
            &h15,
            "agg-0",
            &[(Some(id(2, 0)), b"x"), (Some(id(2, 1)), b"y")],
        );
        seal_hour(&wh, &h15).unwrap();
        let report = mover.move_hour(&h15, &[("dc1", &wh)]).unwrap();
        assert_eq!(
            report.records, 0,
            "re-delivered records must not move twice"
        );
        assert_eq!(report.duplicates, 2);
        // And moving the sealed hour itself again is refused outright.
        assert_eq!(
            mover.move_hour(&h14, &[("dc1", &wh)]).unwrap_err(),
            MoveError::AlreadyMoved
        );
    }

    #[test]
    fn corrupt_block_rejects_the_file_without_poisoning_the_slide() {
        let p = part();
        let wh = Warehouse::new();
        write_framed(&wh, &p, "agg-0", &[(Some(id(1, 0)), b"good")]);
        write_framed(&wh, &p, "agg-1", &[(Some(id(1, 1)), b"bad")]);
        let damaged = p.main_dir().child("agg-1").unwrap();
        wh.corrupt_block(&damaged, 0).unwrap();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.rejected_files, 1);
        assert_eq!(report.input_files, 1);
        assert_eq!(report.records, 1, "the healthy file still moves");
        assert_eq!(report.moved_ids, vec![id(1, 0)]);
        // The slide completed: the hour is visible and no debris remains.
        assert!(mover.main().exists(&p.main_dir()));
        assert!(!mover.main().exists(&p.staging_dir()));
    }

    #[test]
    fn truncated_file_rejects_without_poisoning_the_slide() {
        let p = part();
        let wh = Warehouse::new();
        write_framed(&wh, &p, "agg-0", &[(Some(id(3, 0)), b"keep")]);
        // A half-written file whose checksum was nonetheless persisted.
        let file = p.main_dir().child("agg-1").unwrap();
        let mut w = wh.create(&file).unwrap();
        w.append_record(staged::MAGIC);
        for i in 0..32u64 {
            w.append_record(&staged::encode(Some(id(3, 1 + i)), b"truncated-away"));
        }
        w.finish().unwrap();
        wh.truncate_block(&file, 0).unwrap();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.rejected_files, 1);
        assert_eq!(report.records, 1);
        assert_eq!(report.moved_ids, vec![id(3, 0)]);
        assert!(mover.main().exists(&p.main_dir()));
    }

    /// A toy landing codec: payloads of the form `k,v` become two columns;
    /// anything else is rejected to the row fallback.
    struct CsvLanding;

    impl uli_warehouse::ColumnarLanding for CsvLanding {
        fn write_file(
            &self,
            warehouse: &Warehouse,
            path: &uli_warehouse::WhPath,
            payloads: &[Vec<u8>],
        ) -> WarehouseResult<Vec<usize>> {
            let mut w = uli_warehouse::ColumnarFileWriter::create(warehouse, path, 2, 64, None)?;
            let mut rejected = Vec::new();
            for (i, p) in payloads.iter().enumerate() {
                let cell_count = p.iter().filter(|b| **b == b',').count();
                match (std::str::from_utf8(p), cell_count) {
                    (Ok(s), 1) => {
                        let (k, v) = s.split_once(',').expect("one comma counted");
                        w.append_row(&[k.as_bytes(), v.as_bytes()]);
                    }
                    _ => rejected.push(i),
                }
            }
            w.finish()?;
            Ok(rejected)
        }
    }

    #[test]
    fn columnar_landing_writes_columnar_files_with_row_fallback() {
        let p = part();
        let wh = Warehouse::new();
        write_framed(
            &wh,
            &p,
            "agg-0",
            &[
                (Some(id(1, 0)), b"a,1"),
                (Some(id(1, 1)), b"not columnar"),
                (Some(id(1, 2)), b"b,2"),
            ],
        );
        seal_hour(&wh, &p).unwrap();
        let mut mover =
            LogMover::new(Warehouse::new(), 1000).with_landing(std::sync::Arc::new(CsvLanding));
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 3, "rejects still move, via the fallback");
        assert_eq!(report.output_files, 2, "one columnar + one fallback");

        let main = mover.main();
        let files = main.list_files_recursive(&p.main_dir()).unwrap();
        let col = files.iter().find(|f| f.name() == "part-00000").unwrap();
        let rows = files
            .iter()
            .find(|f| f.name() == "part-00000-rows")
            .unwrap();
        assert!(uli_warehouse::sniff_columnar(main, col).unwrap().is_some());
        let file = uli_warehouse::ColumnarFile::open(main, col).unwrap();
        let group = file.read_group(0, &[true, true]).unwrap();
        assert_eq!(group.rows(), 2);
        assert_eq!(
            group.cell(0, 1),
            Some(uli_warehouse::ColumnCell::Bytes(b"b"))
        );
        assert_eq!(
            main.open(rows).unwrap().read_all().unwrap(),
            vec![b"not columnar".to_vec()]
        );
    }

    #[test]
    fn columnar_landing_still_merges_and_chunks_by_records_per_file() {
        let p = part();
        let wh = Warehouse::new();
        for f in 0..4 {
            let file = p.main_dir().child(&format!("agg-{f}")).unwrap();
            let mut w = wh.create(&file).unwrap();
            for r in 0..10 {
                w.append_record(format!("f{f},{r}").as_bytes());
            }
            w.finish().unwrap();
        }
        seal_hour(&wh, &p).unwrap();
        let mut mover =
            LogMover::new(Warehouse::new(), 25).with_landing(std::sync::Arc::new(CsvLanding));
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 40);
        assert_eq!(report.output_files, 2, "40 records at 25/file → 2 files");
        // Every landed record is readable back out of the columnar files.
        let main = mover.main();
        let mut rows = 0;
        for f in main.list_files_recursive(&p.main_dir()).unwrap() {
            let file = uli_warehouse::ColumnarFile::open(main, &f).unwrap();
            for g in 0..file.group_count() {
                rows += file.read_group(g, &[true, true]).unwrap().rows();
            }
        }
        assert_eq!(rows, 40);
    }

    /// Tap that records every delivered payload, for dispatch-order checks.
    struct RecordingTap(std::sync::Arc<std::sync::Mutex<Vec<Vec<u8>>>>);

    impl DeliveryTap for RecordingTap {
        fn hour_delivered(&mut self, _partition: &HourlyPartition, payloads: &[Vec<u8>]) {
            self.0.lock().unwrap().extend(payloads.iter().cloned());
        }
    }

    /// Canonical view of a delivered hour: sorted (path, physical digest)
    /// pairs — byte-identical hours and nothing less.
    fn hour_digest(main: &Warehouse, partition: &HourlyPartition) -> Vec<(String, u64)> {
        let mut files: Vec<_> = main.list_files_recursive(&partition.main_dir()).unwrap();
        files.sort();
        files
            .into_iter()
            .map(|f| {
                let d = main.file_digest(&f).unwrap();
                (f.as_str().to_string(), d)
            })
            .collect()
    }

    /// Builds a messy staged hour — several DCs, many files, duplicates
    /// across aggregators, empty payloads, a corrupt file — and returns the
    /// staging warehouses.
    fn messy_staging(p: &HourlyPartition) -> Vec<Warehouse> {
        let mut dcs = Vec::new();
        for dc in 0..3u64 {
            let wh = Warehouse::new();
            for agg in 0..4u64 {
                let name = format!("agg-{agg}");
                let mut records: Vec<(Option<EntryId>, Vec<u8>)> = Vec::new();
                for r in 0..40u64 {
                    let host = dc * 4 + agg;
                    let payload = format!("dc{dc}-agg{agg}-rec{r}-{}", "x".repeat(r as usize % 23));
                    records.push((Some(id(host, r)), payload.into_bytes()));
                }
                // Cross-aggregator duplicates (ack-loss retry shape).
                if agg > 0 {
                    records.push((Some(id(dc * 4 + agg - 1, 7)), b"dup".to_vec()));
                }
                // Unstamped and empty records.
                records.push((None, format!("raw-{dc}-{agg}").into_bytes()));
                records.push((Some(id(dc * 4 + agg, 40)), Vec::new()));
                let refs: Vec<(Option<EntryId>, &[u8])> =
                    records.iter().map(|(i, p)| (*i, p.as_slice())).collect();
                write_framed(&wh, p, &name, &refs);
            }
            // One corrupt file per DC, rejected whole.
            let damaged = p.main_dir().child("agg-bad").unwrap();
            let mut w = wh.create(&damaged).unwrap();
            w.append_record(staged::MAGIC);
            w.append_record(&staged::encode(Some(id(99, dc)), b"doomed"));
            w.finish().unwrap();
            wh.corrupt_block(&damaged, 0).unwrap();
            seal_hour(&wh, p).unwrap();
            dcs.push(wh);
        }
        dcs
    }

    #[allow(clippy::type_complexity)]
    fn run_messy_move(
        workers: usize,
        columnar: bool,
    ) -> (
        MoveReport,
        Vec<(String, u64)>,
        (Vec<(u64, u64)>, Vec<EntryId>),
        Vec<Vec<u8>>,
    ) {
        let p = part();
        let dcs = messy_staging(&p);
        let staging: Vec<(&str, &Warehouse)> = dcs
            .iter()
            .enumerate()
            .map(|(i, wh)| (["dc0", "dc1", "dc2"][i], wh))
            .collect();
        let mut mover = LogMover::new(Warehouse::new(), 37)
            .with_parallelism(uli_warehouse::Parallelism::fixed(workers));
        if columnar {
            mover.set_landing(std::sync::Arc::new(CsvLanding));
        }
        let tapped = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        mover.add_tap(Box::new(RecordingTap(tapped.clone())));
        let report = mover.move_hour(&p, &staging).unwrap();
        let digest = hour_digest(mover.main(), &p);
        let seen = mover.seen_snapshot();
        let payloads = tapped.lock().unwrap().clone();
        (report, digest, seen, payloads)
    }

    #[test]
    fn parallel_landing_is_byte_identical_to_serial() {
        for columnar in [false, true] {
            let serial = run_messy_move(1, columnar);
            for workers in [4, 8] {
                let parallel = run_messy_move(workers, columnar);
                assert_eq!(
                    serial.0, parallel.0,
                    "report must not depend on workers ({workers}, columnar={columnar})"
                );
                assert_eq!(
                    serial.1, parallel.1,
                    "landed bytes must not depend on workers ({workers}, columnar={columnar})"
                );
                assert_eq!(
                    serial.2, parallel.2,
                    "seen set must not depend on workers ({workers}, columnar={columnar})"
                );
                assert_eq!(
                    serial.3, parallel.3,
                    "tap dispatch must not depend on workers ({workers}, columnar={columnar})"
                );
            }
            assert!(serial.0.duplicates > 0, "the fixture must exercise dedup");
            assert!(serial.0.rejected_files > 0 && serial.0.dropped > 0);
            assert!(serial.0.output_files > 1, "the fixture must chunk");
        }
    }

    #[test]
    fn seen_set_compacts_to_watermarks_after_a_clean_hour() {
        let p = part();
        let wh = Warehouse::new();
        let records: Vec<(Option<EntryId>, Vec<u8>)> = (0..30u64)
            .map(|r| (Some(id(r % 3, r / 3)), format!("r{r}").into_bytes()))
            .collect();
        let refs: Vec<(Option<EntryId>, &[u8])> =
            records.iter().map(|(i, p)| (*i, p.as_slice())).collect();
        write_framed(&wh, &p, "agg-0", &refs);
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        let (watermarks, residual) = mover.seen_snapshot();
        assert_eq!(watermarks, vec![(0, 10), (1, 10), (2, 10)]);
        assert!(
            residual.is_empty(),
            "contiguous per-host ids must fully compact"
        );
    }

    #[test]
    fn redelivery_of_a_compacted_hours_duplicate_is_still_squashed() {
        let h14 = part();
        let h15 = HourlyPartition::new("client_events", 2012, 8, 21, 15).unwrap();
        let wh = Warehouse::new();
        let records: Vec<(Option<EntryId>, &[u8])> = vec![
            (Some(id(5, 0)), b"a"),
            (Some(id(5, 1)), b"b"),
            (Some(id(5, 2)), b"c"),
        ];
        write_framed(&wh, &h14, "agg-0", &records);
        seal_hour(&wh, &h14).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        mover.move_hour(&h14, &[("dc1", &wh)]).unwrap();
        // The hour compacted: its ids live only in the host-5 watermark.
        let (watermarks, residual) = mover.seen_snapshot();
        assert_eq!(watermarks, vec![(5, 3)]);
        assert!(residual.is_empty());

        // The same records replay into the next hour; the watermark alone
        // must squash them.
        write_framed(&wh, &h15, "agg-0", &records);
        seal_hour(&wh, &h15).unwrap();
        let report = mover.move_hour(&h15, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(report.duplicates, 3);
    }

    #[test]
    fn landing_reuses_pooled_compressors_across_hours() {
        let h14 = part();
        let h15 = HourlyPartition::new("client_events", 2012, 8, 21, 15).unwrap();
        let wh = Warehouse::new();
        for (hour_idx, p) in [&h14, &h15].into_iter().enumerate() {
            let records: Vec<(Option<EntryId>, Vec<u8>)> = (0..200u64)
                .map(|r| {
                    let seq = hour_idx as u64 * 200 + r;
                    (Some(id(1, seq)), format!("payload-{seq}").into_bytes())
                })
                .collect();
            let refs: Vec<(Option<EntryId>, &[u8])> =
                records.iter().map(|(i, p)| (*i, p.as_slice())).collect();
            write_framed(&wh, p, "agg-0", &refs);
            seal_hour(&wh, p).unwrap();
        }
        let mut mover = LogMover::new(Warehouse::new(), 25)
            .with_parallelism(uli_warehouse::Parallelism::fixed(4));
        mover.move_hour(&h14, &[("dc1", &wh)]).unwrap();
        let pool = std::sync::Arc::clone(mover.main().compressor_pool());
        assert!(
            pool.idle_len() > 0,
            "finished writers must recycle their compressors"
        );
        mover.move_hour(&h15, &[("dc1", &wh)]).unwrap();
        // Two hours × 8 chunks each = 16 files written, but the pool never
        // holds more compressors than could run concurrently: every file
        // past the first wave reused a recycled one.
        assert!(
            pool.idle_len() <= 4,
            "pool must stay bounded by worker concurrency, got {}",
            pool.idle_len()
        );
    }

    #[test]
    fn malformed_envelope_is_dropped_not_fatal() {
        let p = part();
        let wh = Warehouse::new();
        let file = p.main_dir().child("agg-0").unwrap();
        let mut w = wh.create(&file).unwrap();
        w.append_record(staged::MAGIC);
        w.append_record(&staged::encode(Some(id(1, 0)), b"good"));
        w.append_record(&[1u8, 2, 3]); // truncated stamped envelope
        w.finish().unwrap();
        seal_hour(&wh, &p).unwrap();
        let mut mover = LogMover::new(Warehouse::new(), 1000);
        let report = mover.move_hour(&p, &[("dc1", &wh)]).unwrap();
        assert_eq!(report.records, 1);
        assert_eq!(report.dropped, 1);
    }
}
