//! The delivery tap: the speed layer's view of the batch pipeline.
//!
//! A [`DeliveryTap`] observes the *exactly-once delivered* record stream —
//! the records a successful atomic slide makes visible in the main
//! warehouse, after the mover's sanity checks and duplicate squashing.
//! Tapping at this point (rather than at the daemons or aggregators) is
//! what makes lambda-architecture convergence provable: the streaming
//! layer sees precisely the partition of records batch jobs will read, so
//! exact streaming aggregates can be asserted byte-identical to batch
//! answers over the delivered set, fault schedules and re-deliveries
//! notwithstanding.
//!
//! The mover notifies taps only **after** the slide's rename succeeds and
//! the fresh delivery ids are committed to its dedup set — a failed or
//! retried move feeds the tap nothing, mirroring how the ids themselves
//! only count as delivered on success.

use uli_warehouse::HourlyPartition;

/// Observer of the exactly-once delivered record stream.
///
/// Implementations receive one callback per successfully moved
/// category-hour, carrying every record payload that slide made visible
/// (envelopes stripped, duplicates squashed, sanity-checked) in the
/// deterministic merge order the mover landed them in.
pub trait DeliveryTap: Send {
    /// One category-hour was atomically slid into the main warehouse.
    fn hour_delivered(&mut self, partition: &HourlyPartition, payloads: &[Vec<u8>]);
}
