//! The simulated datacenter network.
//!
//! Aggregators expose an unbounded channel endpoint under a name; daemons
//! look the name up (after discovering it in the coordination service) and
//! send entries. Crashing an aggregator closes its receiving end, so
//! subsequent sends fail exactly like writes to a dead TCP peer — which is
//! the signal daemons use to go back to ZooKeeper for a live aggregator.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::message::LogEntry;

/// Error returned when sending to a crashed or unknown aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerDown;

/// Registry of live channel endpoints, keyed by aggregator member name.
#[derive(Clone, Default)]
pub struct Network {
    peers: Arc<Mutex<HashMap<String, Sender<LogEntry>>>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an endpoint and returns its receiving half.
    pub fn register(&self, name: &str) -> Receiver<LogEntry> {
        let (tx, rx) = unbounded();
        self.peers.lock().insert(name.to_string(), tx);
        rx
    }

    /// Removes an endpoint (crash or clean shutdown). Sends to it fail from
    /// now on; entries already in the channel stay readable by the holder of
    /// the receiver (in-flight packets drain).
    pub fn unregister(&self, name: &str) {
        self.peers.lock().remove(name);
    }

    /// Sends an entry to the named endpoint.
    pub fn send(&self, name: &str, entry: LogEntry) -> Result<(), PeerDown> {
        let sender = {
            let peers = self.peers.lock();
            peers.get(name).cloned()
        };
        match sender {
            Some(tx) => tx.send(entry).map_err(|_| PeerDown),
            None => Err(PeerDown),
        }
    }

    /// True if the endpoint is registered.
    pub fn is_up(&self, name: &str) -> bool {
        self.peers.lock().contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new();
        let rx = net.register("agg-1");
        net.send("agg-1", LogEntry::new("c", b"m".to_vec()))
            .unwrap();
        assert_eq!(rx.recv().unwrap().category, "c");
    }

    #[test]
    fn send_to_unknown_fails() {
        let net = Network::new();
        assert_eq!(net.send("nope", LogEntry::new("c", vec![])), Err(PeerDown));
    }

    #[test]
    fn unregister_breaks_sends_but_drains_in_flight() {
        let net = Network::new();
        let rx = net.register("agg-1");
        net.send("agg-1", LogEntry::new("c", b"1".to_vec()))
            .unwrap();
        net.unregister("agg-1");
        assert!(!net.is_up("agg-1"));
        assert_eq!(net.send("agg-1", LogEntry::new("c", vec![])), Err(PeerDown));
        // The in-flight entry is still deliverable to the receiver.
        assert_eq!(rx.recv().unwrap().message, b"1");
    }

    #[test]
    fn dropped_receiver_fails_sends() {
        let net = Network::new();
        let rx = net.register("agg-1");
        drop(rx);
        assert_eq!(net.send("agg-1", LogEntry::new("c", vec![])), Err(PeerDown));
    }
}
