//! The simulated datacenter network.
//!
//! Aggregators expose an unbounded channel endpoint under a name; daemons
//! look the name up (after discovering it in the coordination service) and
//! send entries. Crashing an aggregator closes its receiving end, so
//! subsequent sends fail exactly like writes to a dead TCP peer — which is
//! the signal daemons use to go back to ZooKeeper for a live aggregator.
//!
//! The unit of transfer is a [`MessageBatch`]: daemons coalesce queued
//! entries into one message, so a wire fault lands at batch granularity — a
//! dropped packet loses (and re-buffers) a whole batch, a lost ack retries
//! and therefore duplicates every entry in it, a delayed packet holds the
//! batch intact until it is due. Receivers still see individual entries:
//! delivery unpacks the batch into the endpoint's channel, which keeps
//! per-entry accounting (aggregator backlog, crash loss) exact.
//!
//! For chaos testing the network can additionally sample per-send link
//! faults from a seeded RNG ([`LinkFaults`]): dropped packets, lost acks
//! (delivered but reported failed, so the sender retries and the entry is
//! duplicated), duplicated deliveries, and delayed packets that arrive a few
//! [`advance_step`](Network::advance_step) calls later. Everything is
//! deterministic in the seed, which is what makes chaos schedules
//! replayable.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng, StdRng};

use crate::message::{EntryId, LogEntry, MessageBatch};

/// Error returned when sending to a crashed or unknown aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerDown;

/// Per-send fault probabilities. Rates are sampled from one roll per send,
/// so they must sum to at most 1; the remainder is a clean delivery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Packet silently dropped; the sender sees a failure.
    pub drop_rate: f64,
    /// Packet delivered but the ack is lost: the sender sees a failure and
    /// will retry, duplicating the entry downstream.
    pub ack_loss_rate: f64,
    /// Packet delivered twice; the sender sees success.
    pub duplicate_rate: f64,
    /// Packet held back and delivered on a later step; sender sees success.
    pub delay_rate: f64,
    /// Maximum steps a delayed packet is held (uniform in `1..=max`).
    pub max_delay_steps: u64,
}

impl LinkFaults {
    fn total_rate(&self) -> f64 {
        self.drop_rate + self.ack_loss_rate + self.duplicate_rate + self.delay_rate
    }
}

struct FaultState {
    rng: StdRng,
    faults: LinkFaults,
}

#[derive(Default)]
struct Shared {
    peers: HashMap<String, Sender<LogEntry>>,
    faults: Option<FaultState>,
    /// Delayed packets: (due step, endpoint, batch), in send order. A
    /// delayed batch is held whole — it was acked as one message.
    delayed: VecDeque<(u64, String, MessageBatch)>,
    /// Current simulation step, advanced by [`Network::advance_step`].
    now: u64,
    /// Cost model: messages ever offered to the network (every
    /// [`Network::send_batch`] call, successful or not).
    messages: u64,
    /// Cost model: encoded bytes of those messages.
    message_bytes: u64,
    /// One-shot sabotage: the next multi-entry batch is half-applied —
    /// delivered partially but acked whole (negative testing only).
    half_apply_armed: bool,
}

/// Registry of live channel endpoints, keyed by aggregator endpoint name.
#[derive(Clone, Default)]
pub struct Network {
    inner: Arc<Mutex<Shared>>,
}

enum Decision {
    Deliver,
    Drop,
    AckLoss,
    Duplicate,
    Delay(u64),
}

impl Network {
    /// Creates an empty, fault-free network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an endpoint and returns its receiving half.
    pub fn register(&self, name: &str) -> Receiver<LogEntry> {
        let (tx, rx) = unbounded();
        self.inner.lock().peers.insert(name.to_string(), tx);
        rx
    }

    /// Removes an endpoint (crash or clean shutdown). Sends to it fail from
    /// now on; entries already in the channel stay readable by the holder of
    /// the receiver (in-flight packets drain).
    pub fn unregister(&self, name: &str) {
        self.inner.lock().peers.remove(name);
    }

    /// Arms seeded link-fault injection. Replaces any previous fault state,
    /// so the same seed always produces the same per-send decisions.
    pub fn set_faults(&self, seed: u64, faults: LinkFaults) {
        assert!(
            faults.total_rate() <= 1.0,
            "link fault rates must sum to at most 1"
        );
        self.inner.lock().faults = Some(FaultState {
            rng: StdRng::seed_from_u64(seed),
            faults,
        });
    }

    /// Disarms link-fault injection. Delayed packets already in flight keep
    /// their schedule.
    pub fn clear_faults(&self) {
        self.inner.lock().faults = None;
    }

    /// Sends a single entry to the named endpoint — a batch of one.
    pub fn send(&self, name: &str, entry: LogEntry) -> Result<(), PeerDown> {
        self.send_batch(name, MessageBatch::of(entry))
    }

    /// Sends a batch of entries to the named endpoint as one message: one
    /// fault roll, one ack. Fault outcomes apply to the batch as a unit —
    /// drop loses it whole (the sender re-buffers it), ack loss delivers
    /// all entries but reports failure, duplicate re-delivers every entry,
    /// delay holds the batch intact until due. Delivery unpacks entries
    /// into the endpoint's channel in batch order.
    pub fn send_batch(&self, name: &str, batch: MessageBatch) -> Result<(), PeerDown> {
        let mut s = self.inner.lock();
        s.messages += 1;
        s.message_bytes += batch.wire_size() as u64;
        // One roll per send, partitioning [0,1) into the fault kinds. The
        // roll happens before the liveness check so RNG consumption — and
        // therefore every later decision — does not depend on peer state.
        let decision = match &mut s.faults {
            None => Decision::Deliver,
            Some(f) => {
                let roll: f64 = f.rng.gen();
                let lf = f.faults;
                let drop_edge = lf.drop_rate;
                let ack_edge = drop_edge + lf.ack_loss_rate;
                let dup_edge = ack_edge + lf.duplicate_rate;
                let delay_edge = dup_edge + lf.delay_rate;
                if roll < drop_edge {
                    Decision::Drop
                } else if roll < ack_edge {
                    Decision::AckLoss
                } else if roll < dup_edge {
                    Decision::Duplicate
                } else if roll < delay_edge {
                    Decision::Delay(f.rng.gen_range(1..=lf.max_delay_steps.max(1)))
                } else {
                    Decision::Deliver
                }
            }
        };
        if let Decision::Drop = decision {
            // Simulated timeout: nothing reaches the peer, sender retries.
            return Err(PeerDown);
        }
        let Some(tx) = s.peers.get(name).cloned() else {
            return Err(PeerDown);
        };
        if s.half_apply_armed && batch.len() >= 2 {
            // Sabotage: store only the first half, ack the whole batch.
            // The lost half is accounted nowhere — the invariant checker
            // must catch exactly this.
            s.half_apply_armed = false;
            let half = batch.len() / 2;
            for entry in batch.into_entries().into_iter().take(half) {
                let _ = tx.send(entry);
            }
            return Ok(());
        }
        match decision {
            Decision::Drop => unreachable!("handled above"),
            Decision::Delay(steps) => {
                let due = s.now + steps;
                s.delayed.push_back((due, name.to_string(), batch));
                Ok(())
            }
            Decision::Deliver => {
                for entry in batch.into_entries() {
                    tx.send(entry).map_err(|_| PeerDown)?;
                }
                Ok(())
            }
            Decision::AckLoss => {
                // Delivered, but the sender is told it failed.
                for entry in batch.into_entries() {
                    let _ = tx.send(entry);
                }
                Err(PeerDown)
            }
            Decision::Duplicate => {
                for entry in &batch {
                    let _ = tx.send(entry.clone());
                }
                for entry in batch.into_entries() {
                    tx.send(entry).map_err(|_| PeerDown)?;
                }
                Ok(())
            }
        }
    }

    /// Arms the one-shot half-apply sabotage: the next batch of two or more
    /// entries is partially delivered but fully acked. For negative tests
    /// proving the delivery-invariant checker catches half-applied batches.
    pub fn arm_half_apply(&self) {
        self.inner.lock().half_apply_armed = true;
    }

    /// Cost model: `(messages, bytes)` ever offered to the network — one
    /// message per [`send_batch`](Self::send_batch) call (including failed
    /// sends, which consumed the wire), bytes as encoded frame sizes.
    pub fn message_cost(&self) -> (u64, u64) {
        let s = self.inner.lock();
        (s.messages, s.message_bytes)
    }

    /// Advances simulated time one step, delivering due delayed packets.
    /// Entries of batches whose endpoint has since crashed are returned as
    /// dead letters: they were acked to the sender, so the caller must
    /// account them as crash losses.
    pub fn advance_step(&self) -> Vec<LogEntry> {
        let mut s = self.inner.lock();
        s.now += 1;
        let now = s.now;
        let mut dead = Vec::new();
        let mut keep = VecDeque::new();
        while let Some((due, name, batch)) = s.delayed.pop_front() {
            if due > now {
                keep.push_back((due, name, batch));
                continue;
            }
            match s.peers.get(&name).cloned() {
                Some(tx) => {
                    for entry in batch.into_entries() {
                        if let Err(e) = tx.send(entry) {
                            dead.push(e.0);
                        }
                    }
                }
                None => dead.extend(batch.into_entries()),
            }
        }
        s.delayed = keep;
        dead
    }

    /// Number of delayed packets currently in flight.
    pub fn delayed_count(&self) -> u64 {
        self.inner.lock().delayed.len() as u64
    }

    /// Ids of delayed entries currently in flight (stamped entries only),
    /// flattened across delayed batches.
    pub fn delayed_ids(&self) -> Vec<EntryId> {
        self.inner
            .lock()
            .delayed
            .iter()
            .flat_map(|(_, _, b)| b.entries())
            .filter_map(|e| e.id)
            .collect()
    }

    /// True if the endpoint is registered.
    pub fn is_up(&self, name: &str) -> bool {
        self.inner.lock().peers.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let net = Network::new();
        let rx = net.register("agg-1");
        net.send("agg-1", LogEntry::new("c", b"m".to_vec()))
            .unwrap();
        assert_eq!(rx.recv().unwrap().category, "c");
    }

    #[test]
    fn send_to_unknown_fails() {
        let net = Network::new();
        assert_eq!(net.send("nope", LogEntry::new("c", vec![])), Err(PeerDown));
    }

    #[test]
    fn unregister_breaks_sends_but_drains_in_flight() {
        let net = Network::new();
        let rx = net.register("agg-1");
        net.send("agg-1", LogEntry::new("c", b"1".to_vec()))
            .unwrap();
        net.unregister("agg-1");
        assert!(!net.is_up("agg-1"));
        assert_eq!(net.send("agg-1", LogEntry::new("c", vec![])), Err(PeerDown));
        // The in-flight entry is still deliverable to the receiver.
        assert_eq!(rx.recv().unwrap().message, b"1");
    }

    #[test]
    fn dropped_receiver_fails_sends() {
        let net = Network::new();
        let rx = net.register("agg-1");
        drop(rx);
        assert_eq!(net.send("agg-1", LogEntry::new("c", vec![])), Err(PeerDown));
    }

    #[test]
    fn drop_fault_loses_packet_and_reports_failure() {
        let net = Network::new();
        let rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                drop_rate: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(
            net.send("a", LogEntry::new("c", b"x".to_vec())),
            Err(PeerDown)
        );
        assert!(rx.try_iter().next().is_none());
    }

    #[test]
    fn ack_loss_delivers_but_reports_failure() {
        let net = Network::new();
        let rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                ack_loss_rate: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(
            net.send("a", LogEntry::new("c", b"x".to_vec())),
            Err(PeerDown)
        );
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let net = Network::new();
        let rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                duplicate_rate: 1.0,
                ..Default::default()
            },
        );
        net.send("a", LogEntry::new("c", b"x".to_vec())).unwrap();
        assert_eq!(rx.try_iter().count(), 2);
    }

    #[test]
    fn delayed_packet_arrives_after_steps() {
        let net = Network::new();
        let rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                delay_rate: 1.0,
                max_delay_steps: 3,
                ..Default::default()
            },
        );
        net.send("a", LogEntry::new("c", b"x".to_vec())).unwrap();
        assert_eq!(rx.try_iter().count(), 0);
        assert_eq!(net.delayed_count(), 1);
        let mut steps = 0;
        while net.delayed_count() > 0 {
            assert!(net.advance_step().is_empty());
            steps += 1;
            assert!(steps <= 3, "delay is bounded by max_delay_steps");
        }
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn delayed_packet_to_crashed_peer_is_a_dead_letter() {
        let net = Network::new();
        let _rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                delay_rate: 1.0,
                max_delay_steps: 1,
                ..Default::default()
            },
        );
        net.send("a", LogEntry::new("c", b"x".to_vec())).unwrap();
        net.unregister("a");
        let dead = net.advance_step();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].message, b"x");
    }

    fn batch_of(n: u8) -> MessageBatch {
        let mut b = MessageBatch::new();
        for i in 0..n {
            b.push(LogEntry::new("c", vec![i]));
        }
        b
    }

    #[test]
    fn batch_delivers_entries_in_order() {
        let net = Network::new();
        let rx = net.register("a");
        net.send_batch("a", batch_of(3)).unwrap();
        let got: Vec<Vec<u8>> = rx.try_iter().map(|e| e.message).collect();
        assert_eq!(got, vec![vec![0], vec![1], vec![2]]);
        let (messages, bytes) = net.message_cost();
        assert_eq!(messages, 1, "one batch is one network message");
        assert!(bytes > 0);
    }

    #[test]
    fn faults_land_at_batch_granularity() {
        // Drop: the whole batch is lost and the sender told so.
        let net = Network::new();
        let rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                drop_rate: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(net.send_batch("a", batch_of(4)), Err(PeerDown));
        assert_eq!(rx.try_iter().count(), 0);

        // Duplicate: every entry in the batch arrives twice.
        net.set_faults(
            1,
            LinkFaults {
                duplicate_rate: 1.0,
                ..Default::default()
            },
        );
        net.send_batch("a", batch_of(4)).unwrap();
        assert_eq!(rx.try_iter().count(), 8);

        // Delay: the batch is held whole, its ids visible in flight.
        net.set_faults(
            1,
            LinkFaults {
                delay_rate: 1.0,
                max_delay_steps: 1,
                ..Default::default()
            },
        );
        let mut b = batch_of(2);
        b.push({
            let mut e = LogEntry::new("c", vec![9]);
            e.id = Some(EntryId { host: 5, seq: 0 });
            e
        });
        net.send_batch("a", b).unwrap();
        assert_eq!(net.delayed_count(), 1, "one delayed packet, three entries");
        assert_eq!(net.delayed_ids(), vec![EntryId { host: 5, seq: 0 }]);
        net.clear_faults();
        net.advance_step();
        assert_eq!(rx.try_iter().count(), 3);
    }

    #[test]
    fn delayed_batch_to_crashed_peer_flattens_to_dead_letters() {
        let net = Network::new();
        let _rx = net.register("a");
        net.set_faults(
            1,
            LinkFaults {
                delay_rate: 1.0,
                max_delay_steps: 1,
                ..Default::default()
            },
        );
        net.send_batch("a", batch_of(3)).unwrap();
        net.unregister("a");
        assert_eq!(net.advance_step().len(), 3);
    }

    #[test]
    fn half_apply_sabotage_delivers_half_but_acks_whole() {
        let net = Network::new();
        let rx = net.register("a");
        net.arm_half_apply();
        // Single-entry batches are not half-appliable; the trap stays armed.
        net.send_batch("a", batch_of(1)).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
        assert!(net.send_batch("a", batch_of(5)).is_ok(), "acked whole");
        assert_eq!(rx.try_iter().count(), 2, "only half stored");
        // One-shot: later batches are intact again.
        net.send_batch("a", batch_of(5)).unwrap();
        assert_eq!(rx.try_iter().count(), 5);
    }

    #[test]
    fn same_seed_same_decisions() {
        let outcomes = |seed: u64| {
            let net = Network::new();
            let _rx = net.register("a");
            net.set_faults(
                seed,
                LinkFaults {
                    drop_rate: 0.3,
                    ack_loss_rate: 0.2,
                    ..Default::default()
                },
            );
            (0..64)
                .map(|i| net.send("a", LogEntry::new("c", vec![i])).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(42), outcomes(42));
        assert_ne!(outcomes(42), outcomes(43), "different seeds should differ");
    }
}
