//! End-to-end pipeline driver with fault injection.
//!
//! Wires daemons, aggregators, staging clusters, and the mover into the
//! multi-datacenter topology of Figure 1, advanced by explicit steps so
//! tests and benchmarks stay deterministic.

use uli_coord::CoordService;
use uli_warehouse::{HourlyPartition, Warehouse};

use crate::aggregator::Aggregator;
use crate::daemon::ScribeDaemon;
use crate::message::LogEntry;
use crate::mover::{seal_hour, LogMover, MoveError, MoveReport};
use crate::network::Network;

/// Topology and sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of datacenters.
    pub datacenters: usize,
    /// Production hosts per datacenter.
    pub hosts_per_dc: usize,
    /// Aggregators per datacenter.
    pub aggregators_per_dc: usize,
    /// Merged-output file size used by the log mover, in records.
    pub records_per_file: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            datacenters: 3,
            hosts_per_dc: 16,
            aggregators_per_dc: 4,
            records_per_file: 100_000,
        }
    }
}

struct Datacenter {
    name: String,
    staging: Warehouse,
    daemons: Vec<ScribeDaemon>,
    /// `None` marks a crashed slot.
    aggregators: Vec<Option<Aggregator>>,
}

/// Cumulative end-to-end accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Entries logged on production hosts.
    pub logged: u64,
    /// Entries still buffered on hosts (no aggregator reachable yet).
    pub host_buffered: u64,
    /// Entries accepted by aggregators.
    pub accepted: u64,
    /// Entries written durably to staging clusters.
    pub flushed: u64,
    /// Entries sitting in aggregator local-disk buffers (staging outage).
    pub aggregator_buffered: u64,
    /// Entries lost to hard aggregator crashes.
    pub lost_in_crashes: u64,
    /// Entries moved into the main warehouse.
    pub moved: u64,
}

/// The full simulated pipeline.
pub struct ScribePipeline {
    coord: CoordService,
    network: Network,
    datacenters: Vec<Datacenter>,
    mover: LogMover,
    flushed: u64,
    lost_in_crashes: u64,
    /// Accepted counts of aggregators that have since crashed, so the
    /// report's `accepted` stays a true cumulative total.
    accepted_by_crashed: u64,
    moved: u64,
}

impl ScribePipeline {
    /// Builds the topology: every datacenter gets a staging warehouse, its
    /// aggregators register, and every host gets a daemon.
    pub fn new(config: PipelineConfig) -> Self {
        let coord = CoordService::new();
        let network = Network::new();
        let mut datacenters = Vec::with_capacity(config.datacenters);
        for dc_idx in 0..config.datacenters {
            let name = format!("dc{dc_idx}");
            let staging = Warehouse::new();
            let aggregators = (0..config.aggregators_per_dc)
                .map(|_| Some(Aggregator::spawn(&coord, &network, &name, staging.clone())))
                .collect();
            let daemons = (0..config.hosts_per_dc)
                .map(|h| {
                    ScribeDaemon::new(
                        (dc_idx * config.hosts_per_dc + h) as u64,
                        &name,
                        coord.connect(),
                        network.clone(),
                    )
                })
                .collect();
            datacenters.push(Datacenter {
                name,
                staging,
                daemons,
                aggregators,
            });
        }
        ScribePipeline {
            coord,
            network,
            datacenters,
            mover: LogMover::new(Warehouse::new(), config.records_per_file),
            flushed: 0,
            lost_in_crashes: 0,
            accepted_by_crashed: 0,
            moved: 0,
        }
    }

    /// Number of datacenters.
    pub fn datacenter_count(&self) -> usize {
        self.datacenters.len()
    }

    /// Logs an entry on a specific host.
    pub fn log(&mut self, dc: usize, host: usize, entry: LogEntry) {
        self.datacenters[dc].daemons[host].log(entry);
    }

    /// One delivery step: every daemon pumps, every aggregator drains.
    pub fn step(&mut self) {
        for dc in &mut self.datacenters {
            for d in &mut dc.daemons {
                d.pump();
            }
            for a in dc.aggregators.iter_mut().flatten() {
                a.process();
            }
        }
    }

    /// Flushes all aggregators for the given hour index.
    pub fn flush_hour(&mut self, hour_index: u64) {
        for dc in &mut self.datacenters {
            for a in dc.aggregators.iter_mut().flatten() {
                let r = a.flush(hour_index);
                self.flushed += r.flushed_records;
            }
        }
    }

    /// Seals the hour for `category` on every staging cluster.
    pub fn seal_hour(&self, category: &str, hour_index: u64) {
        let partition = HourlyPartition::from_hour_index(category, hour_index);
        for dc in &self.datacenters {
            // Outage means the seal itself fails; the mover then reports
            // the datacenter as not ready, which is the correct behaviour.
            let _ = seal_hour(&dc.staging, &partition);
        }
    }

    /// Moves a sealed category-hour into the main warehouse.
    pub fn move_hour(&mut self, category: &str, hour_index: u64) -> Result<MoveReport, MoveError> {
        let partition = HourlyPartition::from_hour_index(category, hour_index);
        let staging: Vec<(&str, &Warehouse)> = self
            .datacenters
            .iter()
            .map(|dc| (dc.name.as_str(), &dc.staging))
            .collect();
        let report = self.mover.move_hour(&partition, &staging)?;
        self.moved += report.records;
        Ok(report)
    }

    /// Hard-crashes one aggregator; returns entries lost with it.
    pub fn crash_aggregator(&mut self, dc: usize, slot: usize) -> u64 {
        let coord = self.coord.clone();
        match self.datacenters[dc].aggregators[slot].take() {
            Some(agg) => {
                self.accepted_by_crashed += agg.accepted;
                let lost = agg.crash(&coord);
                self.lost_in_crashes += lost;
                lost
            }
            None => 0,
        }
    }

    /// Starts a replacement aggregator in an empty slot.
    pub fn spawn_aggregator(&mut self, dc: usize, slot: usize) {
        let name = self.datacenters[dc].name.clone();
        let staging = self.datacenters[dc].staging.clone();
        let agg = Aggregator::spawn(&self.coord, &self.network, &name, staging);
        self.datacenters[dc].aggregators[slot] = Some(agg);
    }

    /// Injects or clears a staging-cluster outage in one datacenter.
    pub fn set_staging_available(&self, dc: usize, available: bool) {
        self.datacenters[dc].staging.set_available(available);
    }

    /// The main data warehouse the mover fills.
    pub fn main_warehouse(&self) -> &Warehouse {
        self.mover.main()
    }

    /// Current end-to-end accounting.
    pub fn report(&self) -> PipelineReport {
        let mut r = PipelineReport {
            flushed: self.flushed,
            lost_in_crashes: self.lost_in_crashes,
            accepted: self.accepted_by_crashed,
            moved: self.moved,
            ..Default::default()
        };
        for dc in &self.datacenters {
            for d in &dc.daemons {
                r.logged += d.logged;
                r.host_buffered += d.buffered();
            }
            for a in dc.aggregators.iter().flatten() {
                r.accepted += a.accepted;
                r.aggregator_buffered += a.unflushed();
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            datacenters: 2,
            hosts_per_dc: 4,
            aggregators_per_dc: 2,
            records_per_file: 50,
        }
    }

    fn log_round(pipe: &mut ScribePipeline, per_host: usize, tag: &str) -> u64 {
        let mut n = 0;
        for dc in 0..2 {
            for host in 0..4 {
                for i in 0..per_host {
                    pipe.log(
                        dc,
                        host,
                        LogEntry::new(
                            "client_events",
                            format!("{tag}-{dc}-{host}-{i}").into_bytes(),
                        ),
                    );
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn happy_path_delivers_everything() {
        let mut pipe = ScribePipeline::new(small_config());
        let logged = log_round(&mut pipe, 25, "a");
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let report = pipe.move_hour("client_events", 0).unwrap();
        assert_eq!(report.records, logged);

        let totals = pipe.report();
        assert_eq!(totals.logged, logged);
        assert_eq!(totals.accepted, logged);
        assert_eq!(totals.flushed, logged);
        assert_eq!(totals.moved, logged);
        assert_eq!(totals.lost_in_crashes, 0);
        assert_eq!(totals.host_buffered, 0);
    }

    #[test]
    fn mover_merges_small_files() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 25, "a");
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let report = pipe.move_hour("client_events", 0).unwrap();
        // Up to 4 aggregators flushed files; outputs are 50-record merges.
        assert!(report.input_files >= 2);
        assert_eq!(report.output_files, 4, "200 records at 50/file");
    }

    #[test]
    fn aggregator_crash_fails_over_with_bounded_loss() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 10, "a");
        pipe.step(); // everything accepted, nothing flushed
        let lost = pipe.crash_aggregator(0, 0) + pipe.crash_aggregator(0, 1);
        // New traffic still gets through via rediscovery (dc0 has no
        // aggregators now, so its daemons buffer; dc1 still delivers).
        log_round(&mut pipe, 10, "b");
        pipe.step();
        pipe.spawn_aggregator(0, 0);
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let moved = pipe.move_hour("client_events", 0).unwrap().records;
        let totals = pipe.report();
        assert_eq!(totals.lost_in_crashes, lost);
        assert_eq!(
            moved + lost,
            totals.logged,
            "every entry is moved or accounted lost"
        );
        assert_eq!(totals.host_buffered, 0);
    }

    #[test]
    fn staging_outage_buffers_and_recovers_without_loss() {
        let mut pipe = ScribePipeline::new(small_config());
        let logged = log_round(&mut pipe, 10, "a");
        pipe.step();
        pipe.set_staging_available(0, false);
        pipe.flush_hour(0);
        let mid = pipe.report();
        assert!(mid.aggregator_buffered > 0, "dc0 aggregators must buffer");
        assert!(mid.flushed < logged);

        pipe.set_staging_available(0, true);
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let moved = pipe.move_hour("client_events", 0).unwrap().records;
        assert_eq!(moved, logged);
        assert_eq!(pipe.report().aggregator_buffered, 0);
    }

    #[test]
    fn move_waits_for_lagging_datacenter() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 5, "a");
        pipe.step();
        pipe.set_staging_available(1, false); // dc1 cannot flush or seal
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let err = pipe.move_hour("client_events", 0).unwrap_err();
        assert!(matches!(err, MoveError::NotReady { .. }));

        pipe.set_staging_available(1, true);
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let report = pipe.move_hour("client_events", 0).unwrap();
        assert_eq!(report.records, pipe.report().logged);
    }

    #[test]
    fn hours_land_in_hourly_directories() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 5, "h0");
        pipe.step();
        pipe.flush_hour(0);
        log_round(&mut pipe, 5, "h1");
        pipe.step();
        pipe.flush_hour(1);
        for h in [0, 1] {
            pipe.seal_hour("client_events", h);
            pipe.move_hour("client_events", h).unwrap();
        }
        let main = pipe.main_warehouse();
        for h in [0, 1] {
            let dir = HourlyPartition::from_hour_index("client_events", h).main_dir();
            assert!(main.exists(&dir), "hour {h} directory must exist");
        }
    }
}
