//! End-to-end pipeline driver with fault injection.
//!
//! Wires daemons, aggregators, staging clusters, and the mover into the
//! multi-datacenter topology of Figure 1, advanced by explicit steps so
//! tests and benchmarks stay deterministic. Fault hooks cover every layer:
//! aggregator crashes and respawns, coordination-session expiry for daemons
//! and aggregators, staging and main-warehouse outages, seeded per-send
//! link faults, and host-local disk-full windows. [`step_with_faults`]
//! (Self::step_with_faults) drives a [`FaultPlan`] schedule into all of
//! them deterministically.

use uli_coord::CoordService;
use uli_obs::{Counter, Gauge, Registry};
use uli_warehouse::{HourlyPartition, Warehouse};

use crate::aggregator::Aggregator;
use crate::daemon::{BatchPolicy, ScribeDaemon};
use crate::faults::FaultPlan;
use crate::message::{EntryId, LogEntry};
use crate::mover::{seal_hour, LogMover, MoveError, MoveReport};
use crate::network::{LinkFaults, Network};

/// Topology and sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of datacenters.
    pub datacenters: usize,
    /// Production hosts per datacenter.
    pub hosts_per_dc: usize,
    /// Aggregators per datacenter.
    pub aggregators_per_dc: usize,
    /// Merged-output file size used by the log mover, in records.
    pub records_per_file: u64,
    /// Batching policy applied to every host daemon's send path.
    pub batch: BatchPolicy,
    /// Worker count for the mover's parallel decode and land stages.
    /// Serial by default; every setting lands byte-identical hours.
    pub workers: uli_warehouse::Parallelism,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            datacenters: 3,
            hosts_per_dc: 16,
            aggregators_per_dc: 4,
            records_per_file: 100_000,
            batch: BatchPolicy::default(),
            workers: uli_warehouse::Parallelism::serial(),
        }
    }
}

struct Datacenter {
    name: String,
    staging: Warehouse,
    daemons: Vec<ScribeDaemon>,
    /// `None` marks a crashed slot.
    aggregators: Vec<Option<Aggregator>>,
}

/// Cumulative end-to-end accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Entries logged on production hosts.
    pub logged: u64,
    /// Entries still buffered on hosts (no aggregator reachable yet).
    pub host_buffered: u64,
    /// Entries dropped at hosts because the local buffer was full.
    pub dropped_disk_full: u64,
    /// Delayed packets still in flight on the network.
    pub in_flight: u64,
    /// Entries accepted by aggregators.
    pub accepted: u64,
    /// Entries written durably to staging clusters.
    pub flushed: u64,
    /// Entries sitting in aggregator local-disk buffers (staging outage).
    pub aggregator_buffered: u64,
    /// Entries lost to hard aggregator crashes (including acked packets
    /// that were in flight to a crashed endpoint).
    pub lost_in_crashes: u64,
    /// Entries moved into the main warehouse.
    pub moved: u64,
    /// Duplicate copies the log-mover merge squashed.
    pub duplicates_merged: u64,
    /// Failed send attempts across all daemons (each triggered rediscovery
    /// and, past the per-pump budget, exponential backoff).
    pub retried: u64,
    /// Batches daemons handed to aggregators (acked network messages).
    pub batches_sent: u64,
    /// Encoded bytes of those acked batches.
    pub wire_bytes_sent: u64,
    /// Cost model: messages ever offered to the network, including failed
    /// and retried sends. Batching's headline saving.
    pub network_messages: u64,
}

/// Registry handles behind [`ScribePipeline::new_with_obs`].
///
/// Every handle mirrors one [`PipelineReport`] field via
/// [`Counter::set_total`] / [`Gauge::set`] on each sync: the report stays
/// the authoritative accounting, and the registry can only ever show a
/// value the report computed — divergence is impossible by construction.
struct PipelineObs {
    registry: Registry,
    logged: Counter,
    accepted: Counter,
    flushed: Counter,
    moved: Counter,
    duplicates_merged: Counter,
    lost_in_crashes: Counter,
    dropped_disk_full: Counter,
    retried: Counter,
    batches_sent: Counter,
    wire_bytes_sent: Counter,
    network_messages: Counter,
    host_buffered: Gauge,
    aggregator_buffered: Gauge,
    in_flight: Gauge,
}

impl PipelineObs {
    fn new(registry: &Registry) -> PipelineObs {
        let c = |name: &str| registry.counter("scribe", name);
        let g = |name: &str| registry.gauge("scribe", name);
        PipelineObs {
            registry: registry.clone(),
            logged: c("logged"),
            accepted: c("accepted"),
            flushed: c("flushed"),
            moved: c("moved"),
            duplicates_merged: c("duplicates_merged"),
            lost_in_crashes: c("lost_in_crashes"),
            dropped_disk_full: c("dropped_disk_full"),
            retried: c("retried"),
            batches_sent: c("batches_sent"),
            wire_bytes_sent: c("wire_bytes_sent"),
            network_messages: c("network_messages"),
            host_buffered: g("host_buffered"),
            aggregator_buffered: g("aggregator_buffered"),
            in_flight: g("in_flight"),
        }
    }

    fn sync(&self, r: &PipelineReport) {
        self.logged.set_total(r.logged);
        self.accepted.set_total(r.accepted);
        self.flushed.set_total(r.flushed);
        self.moved.set_total(r.moved);
        self.duplicates_merged.set_total(r.duplicates_merged);
        self.lost_in_crashes.set_total(r.lost_in_crashes);
        self.dropped_disk_full.set_total(r.dropped_disk_full);
        self.retried.set_total(r.retried);
        self.batches_sent.set_total(r.batches_sent);
        self.wire_bytes_sent.set_total(r.wire_bytes_sent);
        self.network_messages.set_total(r.network_messages);
        self.host_buffered.set(r.host_buffered as i64);
        self.aggregator_buffered.set(r.aggregator_buffered as i64);
        self.in_flight.set(r.in_flight as i64);
    }
}

/// The full simulated pipeline.
pub struct ScribePipeline {
    coord: CoordService,
    network: Network,
    datacenters: Vec<Datacenter>,
    mover: LogMover,
    flushed: u64,
    lost_in_crashes: u64,
    /// Accepted counts of aggregators that have since crashed, so the
    /// report's `accepted` stays a true cumulative total.
    accepted_by_crashed: u64,
    moved: u64,
    duplicates_merged: u64,
    /// Ids of stamped entries lost in crashes (aggregator state and dead
    /// in-flight packets).
    lost_ids: Vec<EntryId>,
    /// Ids of stamped entries the mover made visible.
    delivered_ids: Vec<EntryId>,
    /// Policy-dropped ids carried over from crashed aggregators.
    policy_dropped_by_crashed: Vec<EntryId>,
    /// Registry-backed telemetry, when attached.
    obs: Option<PipelineObs>,
}

impl ScribePipeline {
    /// Builds the topology: every datacenter gets a staging warehouse, its
    /// aggregators register, and every host gets a daemon.
    pub fn new(config: PipelineConfig) -> Self {
        Self::build(config, None)
    }

    /// [`ScribePipeline::new`] plus registry-backed telemetry: the report's
    /// delivery totals mirror into `scribe/*` counters and gauges, delivery
    /// phases trace as spans, and the main warehouse's scan counters
    /// register under `warehouse` (staging clusters stay private — their
    /// reads are mover internals, not query traffic).
    pub fn new_with_obs(config: PipelineConfig, registry: &Registry) -> Self {
        Self::build(config, Some(PipelineObs::new(registry)))
    }

    fn build(config: PipelineConfig, obs: Option<PipelineObs>) -> Self {
        let coord = CoordService::new();
        let network = Network::new();
        let mut datacenters = Vec::with_capacity(config.datacenters);
        for dc_idx in 0..config.datacenters {
            let name = format!("dc{dc_idx}");
            let staging = Warehouse::new();
            let aggregators = (0..config.aggregators_per_dc)
                .map(|_| Some(Aggregator::spawn(&coord, &network, &name, staging.clone())))
                .collect();
            let daemons = (0..config.hosts_per_dc)
                .map(|h| {
                    ScribeDaemon::new(
                        (dc_idx * config.hosts_per_dc + h) as u64,
                        &name,
                        &coord,
                        network.clone(),
                    )
                    .with_batch_policy(config.batch)
                })
                .collect();
            datacenters.push(Datacenter {
                name,
                staging,
                daemons,
                aggregators,
            });
        }
        let main = match &obs {
            Some(o) => Warehouse::new_with_obs(&o.registry),
            None => Warehouse::new(),
        };
        let mut mover =
            LogMover::new(main, config.records_per_file).with_parallelism(config.workers);
        if let Some(o) = &obs {
            mover.attach_obs(&o.registry);
        }
        ScribePipeline {
            coord,
            network,
            datacenters,
            mover,
            flushed: 0,
            lost_in_crashes: 0,
            accepted_by_crashed: 0,
            moved: 0,
            duplicates_merged: 0,
            lost_ids: Vec::new(),
            delivered_ids: Vec::new(),
            policy_dropped_by_crashed: Vec::new(),
            obs,
        }
    }

    /// Number of datacenters.
    pub fn datacenter_count(&self) -> usize {
        self.datacenters.len()
    }

    /// The mover's committed seen-set, as `(watermarks, residual)` — see
    /// [`crate::mover::LogMover::seen_snapshot`].
    pub fn seen_snapshot(&self) -> (Vec<(u64, u64)>, Vec<crate::message::EntryId>) {
        self.mover.seen_snapshot()
    }

    /// Logs an entry on a specific host.
    pub fn log(&mut self, dc: usize, host: usize, entry: LogEntry) {
        self.datacenters[dc].daemons[host].log(entry);
    }

    /// Attaches a delivery tap to the mover: the streaming analytics
    /// layer's hook into the exactly-once delivered record stream. See
    /// [`crate::tap::DeliveryTap`].
    pub fn add_delivery_tap(&mut self, tap: Box<dyn crate::tap::DeliveryTap>) {
        self.mover.add_tap(tap);
    }

    /// Lands merged hours columnar through `landing` instead of row-format.
    /// See [`crate::mover::LogMover::with_landing`]: payloads the codec
    /// rejects still move, via a row-format sibling file.
    pub fn set_columnar_landing(
        &mut self,
        landing: std::sync::Arc<dyn uli_warehouse::ColumnarLanding>,
    ) {
        self.mover.set_landing(landing);
    }

    /// One delivery step: the network ticks (delivering delayed packets),
    /// every daemon pumps, every aggregator heartbeats and drains.
    pub fn step(&mut self) {
        let _span = self.obs.as_ref().map(|o| o.registry.span("scribe", "step"));
        let coord = self.coord.clone();
        for entry in self.network.advance_step() {
            // Acked to the sender, endpoint gone before delivery: the crash
            // took this packet with it.
            self.lost_in_crashes += 1;
            if let Some(id) = entry.id {
                self.lost_ids.push(id);
            }
        }
        for dc in &mut self.datacenters {
            for d in &mut dc.daemons {
                d.pump();
            }
            for a in dc.aggregators.iter_mut().flatten() {
                a.heartbeat(&coord);
                a.process();
            }
        }
        self.sync_obs();
    }

    /// Pushes the current report into the registry mirrors, if attached.
    fn sync_obs(&self) {
        if self.obs.is_some() {
            let _ = self.report(); // report() syncs as a side effect
        }
    }

    /// One delivery step under a chaos schedule: the plan injects this
    /// step's faults, then the pipeline advances normally.
    pub fn step_with_faults(&mut self, plan: &mut FaultPlan) {
        plan.apply(self);
        self.step();
    }

    /// Flushes all aggregators for the given hour index.
    pub fn flush_hour(&mut self, hour_index: u64) {
        let _span = self.obs.as_ref().map(|o| {
            o.registry
                .span_labeled("scribe", "flush_hour", &[("hour", hour_index.to_string())])
        });
        for dc in &mut self.datacenters {
            for a in dc.aggregators.iter_mut().flatten() {
                let r = a.flush(hour_index);
                self.flushed += r.flushed_records;
            }
        }
        self.sync_obs();
    }

    /// Seals the hour for `category` on every staging cluster.
    pub fn seal_hour(&self, category: &str, hour_index: u64) {
        let partition = HourlyPartition::from_hour_index(category, hour_index);
        for dc in &self.datacenters {
            // Outage means the seal itself fails; the mover then reports
            // the datacenter as not ready, which is the correct behaviour.
            let _ = seal_hour(&dc.staging, &partition);
        }
    }

    /// Moves a sealed category-hour into the main warehouse.
    pub fn move_hour(&mut self, category: &str, hour_index: u64) -> Result<MoveReport, MoveError> {
        let _span = self.obs.as_ref().map(|o| {
            o.registry
                .span_labeled("scribe", "move_hour", &[("hour", hour_index.to_string())])
        });
        let partition = HourlyPartition::from_hour_index(category, hour_index);
        let staging: Vec<(&str, &Warehouse)> = self
            .datacenters
            .iter()
            .map(|dc| (dc.name.as_str(), &dc.staging))
            .collect();
        let report = self.mover.move_hour(&partition, &staging)?;
        self.moved += report.records;
        self.duplicates_merged += report.duplicates;
        self.delivered_ids.extend_from_slice(&report.moved_ids);
        self.sync_obs();
        Ok(report)
    }

    /// Hard-crashes one aggregator; returns entries lost with it.
    pub fn crash_aggregator(&mut self, dc: usize, slot: usize) -> u64 {
        let coord = self.coord.clone();
        match self.datacenters[dc].aggregators[slot].take() {
            Some(agg) => {
                self.accepted_by_crashed += agg.accepted;
                let crash = agg.crash(&coord);
                self.lost_in_crashes += crash.records;
                self.lost_ids.extend_from_slice(&crash.ids);
                self.policy_dropped_by_crashed
                    .extend_from_slice(&crash.policy_dropped_ids);
                self.sync_obs();
                crash.records
            }
            None => 0,
        }
    }

    /// Starts a replacement aggregator in an empty slot.
    pub fn spawn_aggregator(&mut self, dc: usize, slot: usize) {
        let name = self.datacenters[dc].name.clone();
        let staging = self.datacenters[dc].staging.clone();
        let agg = Aggregator::spawn(&self.coord, &self.network, &name, staging);
        self.datacenters[dc].aggregators[slot] = Some(agg);
    }

    /// True if the aggregator slot currently holds a live process.
    pub fn aggregator_is_up(&self, dc: usize, slot: usize) -> bool {
        self.datacenters[dc].aggregators[slot].is_some()
    }

    /// Expires the coordination session of one host daemon. The daemon
    /// reconnects on its next discovery.
    pub fn expire_daemon_session(&self, dc: usize, host: usize) {
        let sid = self.datacenters[dc].daemons[host].session_id();
        self.coord.expire_session(sid);
    }

    /// Expires the coordination session of one aggregator (missed
    /// heartbeats). Its znode vanishes; the process itself stays up and
    /// re-registers on its next heartbeat.
    pub fn expire_aggregator_session(&self, dc: usize, slot: usize) {
        if let Some(agg) = &self.datacenters[dc].aggregators[slot] {
            self.coord.expire_session(agg.session_id());
        }
    }

    /// Injects or clears a staging-cluster outage in one datacenter.
    pub fn set_staging_available(&self, dc: usize, available: bool) {
        self.datacenters[dc].staging.set_available(available);
    }

    /// Injects or clears an outage of the main warehouse (mover writes
    /// fail; already-moved hours stay readable).
    pub fn set_main_available(&self, available: bool) {
        self.mover.main().set_available(available);
    }

    /// Arms seeded link faults on the shared network.
    pub fn set_link_faults(&self, seed: u64, faults: LinkFaults) {
        self.network.set_faults(seed, faults);
    }

    /// Disarms link faults (delayed packets keep their schedule).
    pub fn clear_link_faults(&self) {
        self.network.clear_faults();
    }

    /// Caps (or uncaps) the local buffer of every host in one datacenter —
    /// the disk-full fault.
    pub fn set_host_queue_capacity(&mut self, dc: usize, capacity: Option<usize>) {
        for d in &mut self.datacenters[dc].daemons {
            d.set_queue_capacity(capacity);
        }
    }

    /// The shared network (for in-flight introspection).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// One datacenter's staging warehouse.
    pub fn staging_warehouse(&self, dc: usize) -> &Warehouse {
        &self.datacenters[dc].staging
    }

    /// All host daemons, across datacenters.
    pub fn daemons(&self) -> impl Iterator<Item = &ScribeDaemon> {
        self.datacenters.iter().flat_map(|dc| dc.daemons.iter())
    }

    /// All live aggregators, across datacenters.
    pub fn aggregators(&self) -> impl Iterator<Item = &Aggregator> {
        self.datacenters
            .iter()
            .flat_map(|dc| dc.aggregators.iter().flatten())
    }

    /// Ids of stamped entries lost in crashes so far.
    pub fn lost_ids(&self) -> &[EntryId] {
        &self.lost_ids
    }

    /// Ids of stamped entries the mover has made visible so far.
    pub fn delivered_ids(&self) -> &[EntryId] {
        &self.delivered_ids
    }

    /// Ids dropped by category policy, including by since-crashed
    /// aggregators.
    pub fn policy_dropped_ids(&self) -> Vec<EntryId> {
        let mut ids = self.policy_dropped_by_crashed.clone();
        for a in self.aggregators() {
            ids.extend_from_slice(a.policy_dropped_ids());
        }
        ids
    }

    /// The main data warehouse the mover fills.
    pub fn main_warehouse(&self) -> &Warehouse {
        self.mover.main()
    }

    /// Current end-to-end accounting.
    pub fn report(&self) -> PipelineReport {
        let mut r = PipelineReport {
            flushed: self.flushed,
            lost_in_crashes: self.lost_in_crashes,
            accepted: self.accepted_by_crashed,
            moved: self.moved,
            duplicates_merged: self.duplicates_merged,
            in_flight: self.network.delayed_count(),
            network_messages: self.network.message_cost().0,
            ..Default::default()
        };
        for dc in &self.datacenters {
            for d in &dc.daemons {
                r.logged += d.logged;
                r.host_buffered += d.buffered();
                r.dropped_disk_full += d.dropped_disk_full;
                r.retried += d.send_failures;
                r.batches_sent += d.batches_sent;
                r.wire_bytes_sent += d.wire_bytes_sent;
            }
            for a in dc.aggregators.iter().flatten() {
                r.accepted += a.accepted;
                r.aggregator_buffered += a.unflushed() + a.in_channel();
            }
        }
        if let Some(obs) = &self.obs {
            obs.sync(&r);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            datacenters: 2,
            hosts_per_dc: 4,
            aggregators_per_dc: 2,
            records_per_file: 50,
            batch: BatchPolicy::default(),
            workers: uli_warehouse::Parallelism::serial(),
        }
    }

    fn log_round(pipe: &mut ScribePipeline, per_host: usize, tag: &str) -> u64 {
        let mut n = 0;
        for dc in 0..2 {
            for host in 0..4 {
                for i in 0..per_host {
                    pipe.log(
                        dc,
                        host,
                        LogEntry::new(
                            "client_events",
                            format!("{tag}-{dc}-{host}-{i}").into_bytes(),
                        ),
                    );
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn happy_path_delivers_everything() {
        let mut pipe = ScribePipeline::new(small_config());
        let logged = log_round(&mut pipe, 25, "a");
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let report = pipe.move_hour("client_events", 0).unwrap();
        assert_eq!(report.records, logged);

        let totals = pipe.report();
        assert_eq!(totals.logged, logged);
        assert_eq!(totals.accepted, logged);
        assert_eq!(totals.flushed, logged);
        assert_eq!(totals.moved, logged);
        assert_eq!(totals.lost_in_crashes, 0);
        assert_eq!(totals.host_buffered, 0);
        // Every logged entry's id is accounted as delivered.
        assert_eq!(pipe.delivered_ids().len() as u64, logged);
    }

    #[test]
    fn mover_merges_small_files() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 25, "a");
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let report = pipe.move_hour("client_events", 0).unwrap();
        // Up to 4 aggregators flushed files; outputs are 50-record merges.
        assert!(report.input_files >= 2);
        assert_eq!(report.output_files, 4, "200 records at 50/file");
    }

    #[test]
    fn aggregator_crash_fails_over_with_bounded_loss() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 10, "a");
        pipe.step(); // everything accepted, nothing flushed
        let lost = pipe.crash_aggregator(0, 0) + pipe.crash_aggregator(0, 1);
        // New traffic still gets through via rediscovery (dc0 has no
        // aggregators now, so its daemons buffer; dc1 still delivers).
        log_round(&mut pipe, 10, "b");
        pipe.step();
        pipe.spawn_aggregator(0, 0);
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let moved = pipe.move_hour("client_events", 0).unwrap().records;
        let totals = pipe.report();
        assert_eq!(totals.lost_in_crashes, lost);
        assert_eq!(
            moved + lost,
            totals.logged,
            "every entry is moved or accounted lost"
        );
        assert_eq!(totals.host_buffered, 0);
        // Lost ids and delivered ids partition the logged set.
        assert_eq!(pipe.lost_ids().len() as u64, lost);
        assert_eq!(pipe.delivered_ids().len() as u64, moved);
    }

    #[test]
    fn staging_outage_buffers_and_recovers_without_loss() {
        let mut pipe = ScribePipeline::new(small_config());
        let logged = log_round(&mut pipe, 10, "a");
        pipe.step();
        pipe.set_staging_available(0, false);
        pipe.flush_hour(0);
        let mid = pipe.report();
        assert!(mid.aggregator_buffered > 0, "dc0 aggregators must buffer");
        assert!(mid.flushed < logged);

        pipe.set_staging_available(0, true);
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let moved = pipe.move_hour("client_events", 0).unwrap().records;
        assert_eq!(moved, logged);
        assert_eq!(pipe.report().aggregator_buffered, 0);
    }

    #[test]
    fn move_waits_for_lagging_datacenter() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 5, "a");
        pipe.step();
        pipe.set_staging_available(1, false); // dc1 cannot flush or seal
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let err = pipe.move_hour("client_events", 0).unwrap_err();
        assert!(matches!(err, MoveError::NotReady { .. }));

        pipe.set_staging_available(1, true);
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let report = pipe.move_hour("client_events", 0).unwrap();
        assert_eq!(report.records, pipe.report().logged);
    }

    #[test]
    fn hours_land_in_hourly_directories() {
        let mut pipe = ScribePipeline::new(small_config());
        log_round(&mut pipe, 5, "h0");
        pipe.step();
        pipe.flush_hour(0);
        log_round(&mut pipe, 5, "h1");
        pipe.step();
        pipe.flush_hour(1);
        for h in [0, 1] {
            pipe.seal_hour("client_events", h);
            pipe.move_hour("client_events", h).unwrap();
        }
        let main = pipe.main_warehouse();
        for h in [0, 1] {
            let dir = HourlyPartition::from_hour_index("client_events", h).main_dir();
            assert!(main.exists(&dir), "hour {h} directory must exist");
        }
    }

    #[test]
    fn expired_sessions_recover_transparently() {
        let mut pipe = ScribePipeline::new(small_config());
        for host in 0..4 {
            pipe.expire_daemon_session(0, host);
        }
        pipe.expire_aggregator_session(0, 0);
        pipe.expire_aggregator_session(0, 1);
        let logged = log_round(&mut pipe, 5, "a");
        pipe.step(); // heartbeats re-register, daemons reconnect
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        let moved = pipe.move_hour("client_events", 0).unwrap().records;
        assert_eq!(moved, logged, "expiry alone must not lose data");
        assert_eq!(pipe.report().lost_in_crashes, 0);
    }

    #[test]
    fn obs_mirrors_report_and_traces_delivery() {
        let registry = Registry::new();
        let mut pipe = ScribePipeline::new_with_obs(small_config(), &registry);
        let logged = log_round(&mut pipe, 25, "a");
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        pipe.move_hour("client_events", 0).unwrap();

        let totals = pipe.report();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("scribe/logged"), Some(logged));
        assert_eq!(snap.counter_value("scribe/accepted"), Some(totals.accepted));
        assert_eq!(snap.counter_value("scribe/flushed"), Some(totals.flushed));
        assert_eq!(snap.counter_value("scribe/moved"), Some(totals.moved));
        assert_eq!(snap.gauge_value("scribe/host_buffered"), Some(0));
        assert!(registry.duplicate_registrations().is_empty());

        // The main warehouse registered under `warehouse`: the mover's merge
        // read staged files, so some records flowed through its counters? No
        // — the mover reads *staging* (detached); main only receives writes,
        // so its scan counters exist but stay zero until a query runs.
        assert_eq!(snap.counter_value("warehouse/records_read"), Some(0));

        // Delivery phases traced in open order: step, flush, then the move
        // with its three pipeline stages nested inside it.
        let keys: Vec<String> = registry.finished_spans().iter().map(|s| s.key()).collect();
        assert_eq!(
            keys,
            [
                "scribe/step",
                "scribe/flush_hour",
                "scribe/move_hour",
                "delivery/decode",
                "delivery/merge",
                "delivery/land"
            ]
        );
        let stages = &registry.finished_spans()[3..];
        assert!(
            stages.iter().all(|s| s.parent == Some(2)),
            "delivery stages must nest under scribe/move_hour"
        );

        // The mover's delivery counters track the move it just did.
        assert_eq!(snap.counter_value("delivery/hours_moved"), Some(1));
        assert_eq!(
            snap.counter_value("delivery/records_moved"),
            Some(totals.moved)
        );
    }

    #[test]
    fn obs_accounts_crash_loss() {
        let registry = Registry::new();
        let mut pipe = ScribePipeline::new_with_obs(small_config(), &registry);
        log_round(&mut pipe, 10, "a");
        pipe.step();
        let lost = pipe.crash_aggregator(0, 0) + pipe.crash_aggregator(0, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("scribe/lost_in_crashes"), Some(lost));
    }

    #[test]
    fn batching_cuts_messages_and_lands_identical_files() {
        let run = |batch: BatchPolicy| {
            let mut pipe = ScribePipeline::new(PipelineConfig {
                batch,
                ..small_config()
            });
            let logged = log_round(&mut pipe, 25, "a");
            pipe.step();
            pipe.flush_hour(0);
            pipe.seal_hour("client_events", 0);
            assert_eq!(pipe.move_hour("client_events", 0).unwrap().records, logged);
            let main = pipe.main_warehouse();
            let root = uli_warehouse::WhPath::parse("/logs").unwrap();
            let mut files = Vec::new();
            for f in main.list_files_recursive(&root).unwrap() {
                files.push((f.to_string(), main.open(&f).unwrap().read_all().unwrap()));
            }
            (pipe.report(), files)
        };
        let (batched, batched_files) = run(BatchPolicy::default());
        let (unbatched, unbatched_files) = run(BatchPolicy::unbatched());
        assert_eq!(batched.moved, unbatched.moved);
        assert_eq!(
            batched_files, unbatched_files,
            "landed warehouse files must be byte-identical"
        );
        assert_eq!(unbatched.network_messages, unbatched.logged);
        assert!(
            batched.network_messages < unbatched.network_messages / 4,
            "batching must collapse messages: {} vs {}",
            batched.network_messages,
            unbatched.network_messages
        );
        assert!(batched.wire_bytes_sent < unbatched.wire_bytes_sent);
    }

    #[test]
    fn main_outage_fails_move_then_recovers() {
        let mut pipe = ScribePipeline::new(small_config());
        let logged = log_round(&mut pipe, 5, "a");
        pipe.step();
        pipe.flush_hour(0);
        pipe.seal_hour("client_events", 0);
        pipe.set_main_available(false);
        assert!(matches!(
            pipe.move_hour("client_events", 0),
            Err(MoveError::Warehouse(_))
        ));
        pipe.set_main_available(true);
        let report = pipe.move_hour("client_events", 0).unwrap();
        assert_eq!(report.records, logged, "failed move retries cleanly");
        assert_eq!(report.duplicates, 0, "retry is not a duplicate");
    }
}
