//! The per-host Scribe daemon.
//!
//! "A Scribe daemon runs on every production host and is responsible for
//! sending local log data across the network to a cluster of dedicated
//! aggregators in the same datacenter. … the Scribe daemons consult
//! \[ZooKeeper\] to find a live aggregator they can connect to. If an
//! aggregator crashes … Scribe daemons simply check ZooKeeper again to find
//! another live aggregator. The same mechanism is used for balancing load
//! across aggregators." (§2)
//!
//! Delivery failures are retried with bounded exponential backoff: each
//! pump spends at most [`RetryPolicy::attempts_per_pump`] send/discovery
//! attempts, rediscovering through the coordination service between
//! attempts; when the budget is exhausted the queue stays on local disk and
//! the daemon cools down for an exponentially growing (capped) number of
//! pumps before trying again.

use std::collections::VecDeque;

use uli_coord::{CoordError, CoordService, Session, SessionId};

use crate::aggregator::{endpoint_key, registry_path};
use crate::message::{EntryId, LogEntry};
use crate::network::Network;

/// Retry/backoff knobs for the daemon's delivery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Send or discovery attempts spent per pump before giving up and
    /// leaving the queue on local disk.
    pub attempts_per_pump: u32,
    /// Cooldown (in pumps) after the second consecutive failed pump.
    /// The first failure retries on the very next pump.
    pub base_cooldown: u64,
    /// Cooldown cap; backoff doubles up to this.
    pub max_cooldown: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts_per_pump: 4,
            base_cooldown: 1,
            max_cooldown: 16,
        }
    }
}

impl RetryPolicy {
    /// Cooldown after `failures` consecutive failed pumps: 0, then
    /// `base`, `2*base`, `4*base`, … capped at `max_cooldown`.
    pub fn cooldown_after(&self, failures: u32) -> u64 {
        if failures <= 1 {
            return 0;
        }
        let doublings = (failures - 2).min(63);
        self.base_cooldown
            .saturating_mul(1u64 << doublings)
            .min(self.max_cooldown)
    }
}

/// Outcome of one [`ScribeDaemon::pump`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PumpReport {
    /// Entries handed to an aggregator.
    pub sent: u64,
    /// Entries still buffered locally (no live aggregator reachable).
    pub still_buffered: u64,
    /// Times the daemon went back to the coordination service to discover.
    pub discoveries: u64,
    /// True if this pump was skipped entirely by backoff cooldown.
    pub cooling_down: bool,
}

/// A production-host daemon: queues entries locally and pushes them to a
/// discovered aggregator, failing over on errors.
pub struct ScribeDaemon {
    host_id: u64,
    dc: String,
    coord: CoordService,
    session: Session,
    network: Network,
    /// Entries not yet accepted by any aggregator ("buffered on local disk").
    queue: VecDeque<LogEntry>,
    /// Cached aggregator endpoint from the last discovery.
    current: Option<String>,
    policy: RetryPolicy,
    /// Consecutive pumps that ended with undelivered entries.
    failed_pumps: u32,
    /// Pumps left to skip before retrying.
    cooldown: u64,
    /// Local-disk capacity in entries; beyond it new entries are dropped
    /// (the disk-full fault). `usize::MAX` means unbounded.
    queue_capacity: usize,
    /// Entries dropped because the local buffer was full.
    pub dropped_disk_full: u64,
    dropped_ids: Vec<EntryId>,
    /// Times the daemon reconnected after a coordination session expiry.
    pub reconnects: u64,
    /// Total failed send attempts over the daemon's lifetime (each one
    /// triggers rediscovery and, when the budget runs out, backoff).
    pub send_failures: u64,
    /// Total entries ever logged on this host.
    pub logged: u64,
}

impl ScribeDaemon {
    /// Creates a daemon for `host_id` in datacenter `dc`. The daemon keeps a
    /// handle to the coordination service so it can reconnect when its
    /// session expires.
    pub fn new(host_id: u64, dc: &str, coord: &CoordService, network: Network) -> Self {
        ScribeDaemon {
            host_id,
            dc: dc.to_string(),
            coord: coord.clone(),
            session: coord.connect(),
            network,
            queue: VecDeque::new(),
            current: None,
            policy: RetryPolicy::default(),
            failed_pumps: 0,
            cooldown: 0,
            queue_capacity: usize::MAX,
            dropped_disk_full: 0,
            dropped_ids: Vec::new(),
            reconnects: 0,
            send_failures: 0,
            logged: 0,
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The host identifier (used for load-balanced aggregator choice).
    pub fn host_id(&self) -> u64 {
        self.host_id
    }

    /// This daemon's coordination session id (for expiry injection).
    pub fn session_id(&self) -> SessionId {
        self.session.id()
    }

    /// Caps (or uncaps, with `None`) the local buffer — the disk-full fault.
    pub fn set_queue_capacity(&mut self, capacity: Option<usize>) {
        self.queue_capacity = capacity.unwrap_or(usize::MAX);
    }

    /// Ids of entries dropped on the floor because local disk was full.
    pub fn dropped_ids(&self) -> &[EntryId] {
        &self.dropped_ids
    }

    /// Ids of entries currently buffered locally.
    pub fn queued_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.queue.iter().filter_map(|e| e.id)
    }

    /// Queues a log entry locally, stamping its delivery id; nothing crosses
    /// the network until [`pump`](Self::pump). If the local buffer is at
    /// capacity the entry is dropped and counted — a full local disk loses
    /// data at the host, visibly.
    pub fn log(&mut self, mut entry: LogEntry) {
        let id = EntryId {
            host: self.host_id,
            seq: self.logged,
        };
        entry.id = Some(id);
        self.logged += 1;
        if self.queue.len() >= self.queue_capacity {
            self.dropped_disk_full += 1;
            self.dropped_ids.push(id);
            return;
        }
        self.queue.push_back(entry);
    }

    /// Entries currently buffered on this host.
    pub fn buffered(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Picks an aggregator from the live set, spreading hosts across members
    /// by hashing the host id (the paper's "balancing load across
    /// aggregators" via the same discovery mechanism). Reconnects first if
    /// the coordination session has expired.
    pub(crate) fn discover(&mut self) -> Option<String> {
        let path = registry_path(&self.dc);
        let members = match self.session.get_children(&path) {
            Ok(m) => m,
            Err(CoordError::SessionExpired) => {
                self.session = self.coord.connect();
                self.reconnects += 1;
                self.session.get_children(&path).unwrap_or_default()
            }
            Err(_) => Vec::new(),
        };
        if members.is_empty() {
            return None;
        }
        // Stable multiplicative hash of the host id.
        let idx = (self.host_id.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize % members.len();
        let member = &members[idx];
        // The endpoint lives in the znode's data, so an aggregator that
        // re-registers after a session expiry keeps its network channel.
        match self.session.get_data(&format!("{path}/{member}")) {
            Ok((data, _)) if !data.is_empty() => String::from_utf8(data).ok(),
            _ => Some(endpoint_key(&self.dc, member)),
        }
    }

    /// Attempts to drain the local queue to a live aggregator.
    ///
    /// Spends at most `attempts_per_pump` send/discovery attempts,
    /// rediscovering through the coordination service after every failure.
    /// If the budget runs out the remaining entries stay buffered and the
    /// daemon backs off exponentially (capped) before the next real try.
    pub fn pump(&mut self) -> PumpReport {
        let mut report = PumpReport::default();
        if self.queue.is_empty() {
            self.failed_pumps = 0;
            self.cooldown = 0;
            return report;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            report.cooling_down = true;
            report.still_buffered = self.queue.len() as u64;
            return report;
        }
        let mut attempts = 0u32;
        'drain: while let Some(entry) = self.queue.pop_front() {
            loop {
                if attempts >= self.policy.attempts_per_pump {
                    self.queue.push_front(entry);
                    break 'drain;
                }
                let target = match &self.current {
                    Some(t) => t.clone(),
                    None => {
                        attempts += 1;
                        report.discoveries += 1;
                        match self.discover() {
                            Some(t) => {
                                self.current = Some(t.clone());
                                t
                            }
                            None => continue,
                        }
                    }
                };
                match self.network.send(&target, entry.clone()) {
                    Ok(()) => {
                        report.sent += 1;
                        break;
                    }
                    Err(_) => {
                        attempts += 1;
                        self.send_failures += 1;
                        self.current = None;
                    }
                }
            }
        }
        report.still_buffered = self.queue.len() as u64;
        if report.still_buffered == 0 || report.sent > 0 {
            self.failed_pumps = 0;
            self.cooldown = 0;
        } else {
            self.failed_pumps += 1;
            self.cooldown = self.policy.cooldown_after(self.failed_pumps);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use uli_coord::CoordService;
    use uli_warehouse::Warehouse;

    fn daemon(coord: &CoordService, net: &Network, host: u64) -> ScribeDaemon {
        ScribeDaemon::new(host, "dc1", coord, net.clone())
    }

    #[test]
    fn logs_buffer_until_pumped() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 1);
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert_eq!(d.buffered(), 1);
        // No aggregators at all: entry stays buffered.
        let r = d.pump();
        assert_eq!(r.sent, 0);
        assert_eq!(r.still_buffered, 1);
    }

    #[test]
    fn logging_stamps_sequential_ids() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 9);
        d.log(LogEntry::new("ce", b"a".to_vec()));
        d.log(LogEntry::new("ce", b"b".to_vec()));
        let ids: Vec<EntryId> = d.queued_ids().collect();
        assert_eq!(
            ids,
            vec![EntryId { host: 9, seq: 0 }, EntryId { host: 9, seq: 1 }]
        );
    }

    #[test]
    fn pump_delivers_to_live_aggregator() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7);
        for _ in 0..5 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        let r = d.pump();
        assert_eq!(r.sent, 5);
        assert_eq!(r.still_buffered, 0);
        assert_eq!(agg.process(), 5);
    }

    #[test]
    fn failover_to_surviving_aggregator() {
        let coord = CoordService::new();
        let net = Network::new();
        let agg1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut agg2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());

        // Find a host id that hashes to agg1 so the crash actually matters.
        let mut d = (0..64)
            .map(|h| daemon(&coord, &net, h))
            .find(|d| {
                let mut probe = ScribeDaemon::new(d.host_id(), "dc1", &coord, net.clone());
                probe.discover() == Some(agg1.endpoint().to_string())
            })
            .expect("some host maps to agg1");

        d.log(LogEntry::new("ce", b"before".to_vec()));
        assert_eq!(d.pump().sent, 1);

        let name1 = agg1.endpoint().to_string();
        agg1.crash(&coord);
        assert!(!net.is_up(&name1));

        d.log(LogEntry::new("ce", b"after".to_vec()));
        let r = d.pump();
        assert_eq!(r.sent, 1, "entry must fail over to agg2");
        assert!(r.discoveries >= 1);
        assert_eq!(agg2.process(), 1);
    }

    #[test]
    fn no_aggregator_then_recovery() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 3);
        d.log(LogEntry::new("ce", b"1".to_vec()));
        assert_eq!(d.pump().sent, 0);
        // An aggregator appears; the buffered entry drains on the next pump
        // (first failure has no cooldown).
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let r = d.pump();
        assert_eq!(r.sent, 1);
        assert_eq!(agg.process(), 1);
    }

    #[test]
    fn hosts_spread_across_aggregators() {
        let coord = CoordService::new();
        let net = Network::new();
        let _a1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let _a2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut counts = std::collections::HashMap::new();
        for host in 0..200 {
            let mut d = daemon(&coord, &net, host);
            let target = d.discover().unwrap();
            *counts.entry(target).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 2, "both aggregators should receive hosts");
        for (_, c) in counts {
            assert!(c > 40, "load balance should be roughly even, got {c}");
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            attempts_per_pump: 4,
            base_cooldown: 1,
            max_cooldown: 16,
        };
        let schedule: Vec<u64> = (1..=8).map(|n| p.cooldown_after(n)).collect();
        assert_eq!(schedule, vec![0, 1, 2, 4, 8, 16, 16, 16]);
        // No overflow at absurd failure counts.
        assert_eq!(p.cooldown_after(u32::MAX), 16);
    }

    #[test]
    fn give_up_leaves_queue_on_local_buffer_and_cools_down() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 5).with_retry_policy(RetryPolicy {
            attempts_per_pump: 2,
            base_cooldown: 1,
            max_cooldown: 4,
        });
        for _ in 0..3 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        // Pump 1: no aggregator; budget spent on discoveries, queue intact.
        let r1 = d.pump();
        assert_eq!((r1.sent, r1.still_buffered), (0, 3));
        assert_eq!(r1.discoveries, 2, "attempt budget caps discovery retries");
        assert!(!r1.cooling_down);
        // Pump 2: first failure retries immediately (cooldown 0).
        let r2 = d.pump();
        assert!(!r2.cooling_down);
        // Pump 3: second consecutive failure → cooldown 1 → skipped.
        let r3 = d.pump();
        assert!(r3.cooling_down, "backoff must skip this pump");
        assert_eq!(r3.discoveries, 0);
        // Every entry is still on the local buffer; nothing was lost.
        assert_eq!(d.buffered(), 3);
        // Recovery: an aggregator appears; the next non-skipped pump drains.
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let r4 = d.pump();
        assert_eq!(r4.sent, 3);
        assert_eq!(agg.process(), 3);
        // Success resets the backoff state.
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert!(!d.pump().cooling_down);
    }

    #[test]
    fn retries_within_one_pump_rediscover_between_attempts() {
        let coord = CoordService::new();
        let net = Network::new();
        // One aggregator that dies; another that survives. Force the
        // daemon's cached endpoint to the dead one.
        let agg1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = (0..64)
            .map(|h| daemon(&coord, &net, h))
            .find(|d| {
                let mut probe = ScribeDaemon::new(d.host_id(), "dc1", &coord, net.clone());
                probe.discover() == Some(agg1.endpoint().to_string())
            })
            .expect("some host maps to agg1");
        d.log(LogEntry::new("ce", b"a".to_vec()));
        assert_eq!(d.pump().sent, 1);
        agg1.crash(&coord);
        let mut agg2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        d.log(LogEntry::new("ce", b"b".to_vec()));
        // Cached endpoint fails → rediscover within the same pump → agg2.
        let r = d.pump();
        assert_eq!(r.sent, 1);
        assert!(r.discoveries >= 1);
        assert_eq!(agg2.process(), 1);
    }

    #[test]
    fn session_expiry_triggers_reconnect_on_next_discovery() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 11);
        coord.expire_session(d.session_id());
        d.log(LogEntry::new("ce", b"x".to_vec()));
        let r = d.pump();
        assert_eq!(r.sent, 1, "daemon must reconnect and still deliver");
        assert_eq!(d.reconnects, 1);
        assert_eq!(agg.process(), 1);
    }

    #[test]
    fn full_local_disk_drops_new_entries_and_records_ids() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 2);
        d.set_queue_capacity(Some(2));
        for _ in 0..5 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        assert_eq!(d.buffered(), 2);
        assert_eq!(d.dropped_disk_full, 3);
        assert_eq!(d.logged, 5, "dropped entries still count as logged");
        let dropped: Vec<u64> = d.dropped_ids().iter().map(|id| id.seq).collect();
        assert_eq!(dropped, vec![2, 3, 4]);
        // Capacity lifted: new entries flow again.
        d.set_queue_capacity(None);
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert_eq!(d.buffered(), 3);
    }
}
