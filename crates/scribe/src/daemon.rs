//! The per-host Scribe daemon.
//!
//! "A Scribe daemon runs on every production host and is responsible for
//! sending local log data across the network to a cluster of dedicated
//! aggregators in the same datacenter. … the Scribe daemons consult
//! \[ZooKeeper\] to find a live aggregator they can connect to. If an
//! aggregator crashes … Scribe daemons simply check ZooKeeper again to find
//! another live aggregator. The same mechanism is used for balancing load
//! across aggregators." (§2)
//!
//! Delivery failures are retried with bounded exponential backoff: each
//! pump spends at most [`RetryPolicy::attempts_per_pump`] send/discovery
//! attempts, rediscovering through the coordination service between
//! attempts; when the budget is exhausted the queue stays on local disk and
//! the daemon cools down for an exponentially growing (capped) number of
//! pumps before trying again.

use std::collections::VecDeque;

use uli_coord::{CoordError, CoordService, Session, SessionId};

use crate::aggregator::{endpoint_key, registry_path};
use crate::message::{EntryId, LogEntry, MessageBatch};
use crate::network::Network;

/// Batching knobs for the daemon's send path. Entries coalesce into one
/// network message until a bound trips; a partial batch can linger a few
/// pumps waiting to fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum entries per batch.
    pub max_records: usize,
    /// Soft cap on the encoded batch size in bytes: the entry that would
    /// cross it starts the next batch (a batch always holds at least one
    /// entry, so an oversized single entry still ships).
    pub max_bytes: usize,
    /// Pumps a partial batch may be held back waiting for more entries.
    /// Zero (the default) sends partial batches immediately, which keeps
    /// delivery latency at one pump.
    pub linger_steps: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_records: 32,
            max_bytes: 32 * 1024,
            linger_steps: 0,
        }
    }
}

impl BatchPolicy {
    /// One entry per message — the pre-batching wire behaviour, kept as the
    /// baseline arm of ingest experiments.
    pub fn unbatched() -> Self {
        BatchPolicy {
            max_records: 1,
            max_bytes: usize::MAX,
            linger_steps: 0,
        }
    }
}

/// Retry/backoff knobs for the daemon's delivery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Send or discovery attempts spent per pump before giving up and
    /// leaving the queue on local disk.
    pub attempts_per_pump: u32,
    /// Cooldown (in pumps) after the second consecutive failed pump.
    /// The first failure retries on the very next pump.
    pub base_cooldown: u64,
    /// Cooldown cap; backoff doubles up to this.
    pub max_cooldown: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts_per_pump: 4,
            base_cooldown: 1,
            max_cooldown: 16,
        }
    }
}

impl RetryPolicy {
    /// Cooldown after `failures` consecutive failed pumps: 0, then
    /// `base`, `2*base`, `4*base`, … capped at `max_cooldown`.
    pub fn cooldown_after(&self, failures: u32) -> u64 {
        if failures <= 1 {
            return 0;
        }
        let doublings = (failures - 2).min(63);
        self.base_cooldown
            .saturating_mul(1u64 << doublings)
            .min(self.max_cooldown)
    }
}

/// Outcome of one [`ScribeDaemon::pump`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PumpReport {
    /// Entries handed to an aggregator.
    pub sent: u64,
    /// Entries still buffered locally (no live aggregator reachable).
    pub still_buffered: u64,
    /// Times the daemon went back to the coordination service to discover.
    pub discoveries: u64,
    /// True if this pump was skipped entirely by backoff cooldown.
    pub cooling_down: bool,
}

/// A production-host daemon: queues entries locally and pushes them to a
/// discovered aggregator, failing over on errors.
pub struct ScribeDaemon {
    host_id: u64,
    dc: String,
    coord: CoordService,
    session: Session,
    network: Network,
    /// Entries not yet accepted by any aggregator ("buffered on local disk").
    queue: VecDeque<LogEntry>,
    /// Cached aggregator endpoint from the last discovery.
    current: Option<String>,
    policy: RetryPolicy,
    batch: BatchPolicy,
    /// Consecutive pumps the current partial batch has lingered.
    lingered: u64,
    /// Batches handed to an aggregator over the daemon's lifetime.
    pub batches_sent: u64,
    /// Encoded bytes of those batches (the cost-model wire traffic that
    /// was actually acked).
    pub wire_bytes_sent: u64,
    /// Consecutive pumps that ended with undelivered entries.
    failed_pumps: u32,
    /// Pumps left to skip before retrying.
    cooldown: u64,
    /// Local-disk capacity in entries; beyond it new entries are dropped
    /// (the disk-full fault). `usize::MAX` means unbounded.
    queue_capacity: usize,
    /// Entries dropped because the local buffer was full.
    pub dropped_disk_full: u64,
    dropped_ids: Vec<EntryId>,
    /// Times the daemon reconnected after a coordination session expiry.
    pub reconnects: u64,
    /// Total failed send attempts over the daemon's lifetime (each one
    /// triggers rediscovery and, when the budget runs out, backoff).
    pub send_failures: u64,
    /// Total entries ever logged on this host.
    pub logged: u64,
}

impl ScribeDaemon {
    /// Creates a daemon for `host_id` in datacenter `dc`. The daemon keeps a
    /// handle to the coordination service so it can reconnect when its
    /// session expires.
    pub fn new(host_id: u64, dc: &str, coord: &CoordService, network: Network) -> Self {
        ScribeDaemon {
            host_id,
            dc: dc.to_string(),
            coord: coord.clone(),
            session: coord.connect(),
            network,
            queue: VecDeque::new(),
            current: None,
            policy: RetryPolicy::default(),
            batch: BatchPolicy::default(),
            lingered: 0,
            batches_sent: 0,
            wire_bytes_sent: 0,
            failed_pumps: 0,
            cooldown: 0,
            queue_capacity: usize::MAX,
            dropped_disk_full: 0,
            dropped_ids: Vec::new(),
            reconnects: 0,
            send_failures: 0,
            logged: 0,
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the batching policy (builder style).
    pub fn with_batch_policy(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// The host identifier (used for load-balanced aggregator choice).
    pub fn host_id(&self) -> u64 {
        self.host_id
    }

    /// This daemon's coordination session id (for expiry injection).
    pub fn session_id(&self) -> SessionId {
        self.session.id()
    }

    /// Caps (or uncaps, with `None`) the local buffer — the disk-full fault.
    pub fn set_queue_capacity(&mut self, capacity: Option<usize>) {
        self.queue_capacity = capacity.unwrap_or(usize::MAX);
    }

    /// Ids of entries dropped on the floor because local disk was full.
    pub fn dropped_ids(&self) -> &[EntryId] {
        &self.dropped_ids
    }

    /// Ids of entries currently buffered locally.
    pub fn queued_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.queue.iter().filter_map(|e| e.id)
    }

    /// Queues a log entry locally, stamping its delivery id; nothing crosses
    /// the network until [`pump`](Self::pump). If the local buffer is at
    /// capacity the entry is dropped and counted — a full local disk loses
    /// data at the host, visibly.
    pub fn log(&mut self, mut entry: LogEntry) {
        let id = EntryId {
            host: self.host_id,
            seq: self.logged,
        };
        entry.id = Some(id);
        self.logged += 1;
        if self.queue.len() >= self.queue_capacity {
            self.dropped_disk_full += 1;
            self.dropped_ids.push(id);
            return;
        }
        self.queue.push_back(entry);
    }

    /// Entries currently buffered on this host.
    pub fn buffered(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Picks an aggregator from the live set, spreading hosts across members
    /// by hashing the host id (the paper's "balancing load across
    /// aggregators" via the same discovery mechanism). Reconnects first if
    /// the coordination session has expired.
    pub(crate) fn discover(&mut self) -> Option<String> {
        let path = registry_path(&self.dc);
        let members = match self.session.get_children(&path) {
            Ok(m) => m,
            Err(CoordError::SessionExpired) => {
                self.session = self.coord.connect();
                self.reconnects += 1;
                self.session.get_children(&path).unwrap_or_default()
            }
            Err(_) => Vec::new(),
        };
        if members.is_empty() {
            return None;
        }
        // Stable multiplicative hash of the host id.
        let idx = (self.host_id.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize % members.len();
        let member = &members[idx];
        // The endpoint lives in the znode's data, so an aggregator that
        // re-registers after a session expiry keeps its network channel.
        match self.session.get_data(&format!("{path}/{member}")) {
            Ok((data, _)) if !data.is_empty() => String::from_utf8(data).ok(),
            _ => Some(endpoint_key(&self.dc, member)),
        }
    }

    /// True if the queue can fill a whole batch right now: either the
    /// record bound or the byte bound would trip.
    fn batch_ready(&self) -> bool {
        if self.queue.len() >= self.batch.max_records {
            return true;
        }
        let mut bytes = 0usize;
        for e in &self.queue {
            bytes = bytes.saturating_add(crate::message::framed_entry_size(e));
            if bytes >= self.batch.max_bytes {
                return true;
            }
        }
        false
    }

    /// Pops the next batch off the queue front: up to `max_records`
    /// entries, stopping before the entry that would cross `max_bytes`
    /// (but always taking at least one).
    fn take_batch(&mut self) -> MessageBatch {
        let mut batch = MessageBatch::new();
        while batch.len() < self.batch.max_records {
            let Some(e) = self.queue.front() else { break };
            if !batch.is_empty()
                && batch.wire_size() + crate::message::framed_entry_size(e) > self.batch.max_bytes
            {
                break;
            }
            batch.push(self.queue.pop_front().expect("front checked"));
        }
        batch
    }

    /// Attempts to drain the local queue to a live aggregator, in batches.
    ///
    /// Entries coalesce per [`BatchPolicy`]; each batch costs one network
    /// message and one fault roll. Spends at most `attempts_per_pump`
    /// send/discovery attempts, rediscovering through the coordination
    /// service after every failure; a failed batch is re-queued whole at
    /// the front, preserving order. If the budget runs out the remaining
    /// entries stay buffered and the daemon backs off exponentially
    /// (capped) before the next real try.
    pub fn pump(&mut self) -> PumpReport {
        let mut report = PumpReport::default();
        if self.queue.is_empty() {
            self.failed_pumps = 0;
            self.cooldown = 0;
            return report;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            report.cooling_down = true;
            report.still_buffered = self.queue.len() as u64;
            return report;
        }
        // Linger: hold a partial batch back, hoping it fills, for at most
        // `linger_steps` pumps. Not a delivery failure — no backoff.
        if self.batch.linger_steps > 0
            && !self.batch_ready()
            && self.lingered < self.batch.linger_steps
        {
            self.lingered += 1;
            report.still_buffered = self.queue.len() as u64;
            return report;
        }
        self.lingered = 0;
        let mut attempts = 0u32;
        'drain: while !self.queue.is_empty() {
            let batch = self.take_batch();
            loop {
                if attempts >= self.policy.attempts_per_pump {
                    // Re-queue the whole batch at the front, in order.
                    for entry in batch.into_entries().into_iter().rev() {
                        self.queue.push_front(entry);
                    }
                    break 'drain;
                }
                let target = match &self.current {
                    Some(t) => t.clone(),
                    None => {
                        attempts += 1;
                        report.discoveries += 1;
                        match self.discover() {
                            Some(t) => {
                                self.current = Some(t.clone());
                                t
                            }
                            None => continue,
                        }
                    }
                };
                match self.network.send_batch(&target, batch.clone()) {
                    Ok(()) => {
                        report.sent += batch.len() as u64;
                        self.batches_sent += 1;
                        self.wire_bytes_sent += batch.wire_size() as u64;
                        break;
                    }
                    Err(_) => {
                        attempts += 1;
                        self.send_failures += 1;
                        self.current = None;
                    }
                }
            }
        }
        report.still_buffered = self.queue.len() as u64;
        if report.still_buffered == 0 || report.sent > 0 {
            self.failed_pumps = 0;
            self.cooldown = 0;
        } else {
            self.failed_pumps += 1;
            self.cooldown = self.policy.cooldown_after(self.failed_pumps);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use uli_coord::CoordService;
    use uli_warehouse::Warehouse;

    fn daemon(coord: &CoordService, net: &Network, host: u64) -> ScribeDaemon {
        ScribeDaemon::new(host, "dc1", coord, net.clone())
    }

    #[test]
    fn logs_buffer_until_pumped() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 1);
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert_eq!(d.buffered(), 1);
        // No aggregators at all: entry stays buffered.
        let r = d.pump();
        assert_eq!(r.sent, 0);
        assert_eq!(r.still_buffered, 1);
    }

    #[test]
    fn logging_stamps_sequential_ids() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 9);
        d.log(LogEntry::new("ce", b"a".to_vec()));
        d.log(LogEntry::new("ce", b"b".to_vec()));
        let ids: Vec<EntryId> = d.queued_ids().collect();
        assert_eq!(
            ids,
            vec![EntryId { host: 9, seq: 0 }, EntryId { host: 9, seq: 1 }]
        );
    }

    #[test]
    fn pump_delivers_to_live_aggregator() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7);
        for _ in 0..5 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        let r = d.pump();
        assert_eq!(r.sent, 5);
        assert_eq!(r.still_buffered, 0);
        assert_eq!(agg.process(), 5);
    }

    #[test]
    fn failover_to_surviving_aggregator() {
        let coord = CoordService::new();
        let net = Network::new();
        let agg1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut agg2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());

        // Find a host id that hashes to agg1 so the crash actually matters.
        let mut d = (0..64)
            .map(|h| daemon(&coord, &net, h))
            .find(|d| {
                let mut probe = ScribeDaemon::new(d.host_id(), "dc1", &coord, net.clone());
                probe.discover() == Some(agg1.endpoint().to_string())
            })
            .expect("some host maps to agg1");

        d.log(LogEntry::new("ce", b"before".to_vec()));
        assert_eq!(d.pump().sent, 1);

        let name1 = agg1.endpoint().to_string();
        agg1.crash(&coord);
        assert!(!net.is_up(&name1));

        d.log(LogEntry::new("ce", b"after".to_vec()));
        let r = d.pump();
        assert_eq!(r.sent, 1, "entry must fail over to agg2");
        assert!(r.discoveries >= 1);
        assert_eq!(agg2.process(), 1);
    }

    #[test]
    fn no_aggregator_then_recovery() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 3);
        d.log(LogEntry::new("ce", b"1".to_vec()));
        assert_eq!(d.pump().sent, 0);
        // An aggregator appears; the buffered entry drains on the next pump
        // (first failure has no cooldown).
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let r = d.pump();
        assert_eq!(r.sent, 1);
        assert_eq!(agg.process(), 1);
    }

    #[test]
    fn hosts_spread_across_aggregators() {
        let coord = CoordService::new();
        let net = Network::new();
        let _a1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let _a2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut counts = std::collections::HashMap::new();
        for host in 0..200 {
            let mut d = daemon(&coord, &net, host);
            let target = d.discover().unwrap();
            *counts.entry(target).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 2, "both aggregators should receive hosts");
        for (_, c) in counts {
            assert!(c > 40, "load balance should be roughly even, got {c}");
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            attempts_per_pump: 4,
            base_cooldown: 1,
            max_cooldown: 16,
        };
        let schedule: Vec<u64> = (1..=8).map(|n| p.cooldown_after(n)).collect();
        assert_eq!(schedule, vec![0, 1, 2, 4, 8, 16, 16, 16]);
        // No overflow at absurd failure counts.
        assert_eq!(p.cooldown_after(u32::MAX), 16);
    }

    #[test]
    fn give_up_leaves_queue_on_local_buffer_and_cools_down() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 5).with_retry_policy(RetryPolicy {
            attempts_per_pump: 2,
            base_cooldown: 1,
            max_cooldown: 4,
        });
        for _ in 0..3 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        // Pump 1: no aggregator; budget spent on discoveries, queue intact.
        let r1 = d.pump();
        assert_eq!((r1.sent, r1.still_buffered), (0, 3));
        assert_eq!(r1.discoveries, 2, "attempt budget caps discovery retries");
        assert!(!r1.cooling_down);
        // Pump 2: first failure retries immediately (cooldown 0).
        let r2 = d.pump();
        assert!(!r2.cooling_down);
        // Pump 3: second consecutive failure → cooldown 1 → skipped.
        let r3 = d.pump();
        assert!(r3.cooling_down, "backoff must skip this pump");
        assert_eq!(r3.discoveries, 0);
        // Every entry is still on the local buffer; nothing was lost.
        assert_eq!(d.buffered(), 3);
        // Recovery: an aggregator appears; the next non-skipped pump drains.
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let r4 = d.pump();
        assert_eq!(r4.sent, 3);
        assert_eq!(agg.process(), 3);
        // Success resets the backoff state.
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert!(!d.pump().cooling_down);
    }

    #[test]
    fn retries_within_one_pump_rediscover_between_attempts() {
        let coord = CoordService::new();
        let net = Network::new();
        // One aggregator that dies; another that survives. Force the
        // daemon's cached endpoint to the dead one.
        let agg1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = (0..64)
            .map(|h| daemon(&coord, &net, h))
            .find(|d| {
                let mut probe = ScribeDaemon::new(d.host_id(), "dc1", &coord, net.clone());
                probe.discover() == Some(agg1.endpoint().to_string())
            })
            .expect("some host maps to agg1");
        d.log(LogEntry::new("ce", b"a".to_vec()));
        assert_eq!(d.pump().sent, 1);
        agg1.crash(&coord);
        let mut agg2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        d.log(LogEntry::new("ce", b"b".to_vec()));
        // Cached endpoint fails → rediscover within the same pump → agg2.
        let r = d.pump();
        assert_eq!(r.sent, 1);
        assert!(r.discoveries >= 1);
        assert_eq!(agg2.process(), 1);
    }

    #[test]
    fn session_expiry_triggers_reconnect_on_next_discovery() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 11);
        coord.expire_session(d.session_id());
        d.log(LogEntry::new("ce", b"x".to_vec()));
        let r = d.pump();
        assert_eq!(r.sent, 1, "daemon must reconnect and still deliver");
        assert_eq!(d.reconnects, 1);
        assert_eq!(agg.process(), 1);
    }

    #[test]
    fn pump_batches_entries_into_few_messages() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7).with_batch_policy(BatchPolicy {
            max_records: 10,
            max_bytes: usize::MAX,
            linger_steps: 0,
        });
        for _ in 0..25 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        let r = d.pump();
        assert_eq!(r.sent, 25, "sent counts entries, not batches");
        assert_eq!(d.batches_sent, 3, "25 entries at 10/batch");
        assert!(d.wire_bytes_sent > 0);
        let (messages, _) = net.message_cost();
        assert_eq!(messages, 3);
        assert_eq!(agg.process(), 25);
    }

    #[test]
    fn unbatched_policy_sends_one_message_per_entry() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7).with_batch_policy(BatchPolicy::unbatched());
        for _ in 0..5 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        assert_eq!(d.pump().sent, 5);
        assert_eq!(d.batches_sent, 5);
        assert_eq!(net.message_cost().0, 5);
        assert_eq!(agg.process(), 5);
    }

    #[test]
    fn byte_bound_splits_batches_but_oversized_entries_still_ship() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7).with_batch_policy(BatchPolicy {
            max_records: 100,
            max_bytes: 100,
            linger_steps: 0,
        });
        // One entry far over the byte bound, then small ones.
        d.log(LogEntry::new("ce", vec![0u8; 500]));
        for _ in 0..4 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        let r = d.pump();
        assert_eq!(r.sent, 5);
        assert_eq!(
            d.batches_sent, 2,
            "oversized entry alone, then the small ones together"
        );
        assert_eq!(agg.process(), 5);
    }

    #[test]
    fn linger_holds_partial_batches_then_flushes() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7).with_batch_policy(BatchPolicy {
            max_records: 4,
            max_bytes: usize::MAX,
            linger_steps: 2,
        });
        d.log(LogEntry::new("ce", b"m".to_vec()));
        // Partial batch lingers, untouched, for two pumps …
        let r1 = d.pump();
        assert_eq!((r1.sent, r1.still_buffered), (0, 1));
        assert!(!r1.cooling_down, "linger is not backoff");
        assert_eq!((d.pump().sent, d.buffered()), (0, 1));
        // … then ships on the third even though still partial.
        assert_eq!(d.pump().sent, 1);
        assert_eq!(agg.process(), 1);
        // A full batch never lingers.
        for _ in 0..4 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        assert_eq!(d.pump().sent, 4);
        assert_eq!(agg.process(), 4);
    }

    #[test]
    fn failed_batch_requeues_whole_preserving_order() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 5).with_retry_policy(RetryPolicy {
            attempts_per_pump: 1,
            base_cooldown: 1,
            max_cooldown: 1,
        });
        for i in 0..3u64 {
            d.log(LogEntry::new("ce", vec![i as u8]));
        }
        // No aggregator: the popped batch must land back intact, in order.
        assert_eq!(d.pump().sent, 0);
        let seqs: Vec<u64> = d.queued_ids().map(|id| id.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn full_local_disk_drops_new_entries_and_records_ids() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 2);
        d.set_queue_capacity(Some(2));
        for _ in 0..5 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        assert_eq!(d.buffered(), 2);
        assert_eq!(d.dropped_disk_full, 3);
        assert_eq!(d.logged, 5, "dropped entries still count as logged");
        let dropped: Vec<u64> = d.dropped_ids().iter().map(|id| id.seq).collect();
        assert_eq!(dropped, vec![2, 3, 4]);
        // Capacity lifted: new entries flow again.
        d.set_queue_capacity(None);
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert_eq!(d.buffered(), 3);
    }
}
