//! The per-host Scribe daemon.
//!
//! "A Scribe daemon runs on every production host and is responsible for
//! sending local log data across the network to a cluster of dedicated
//! aggregators in the same datacenter. … the Scribe daemons consult
//! \[ZooKeeper\] to find a live aggregator they can connect to. If an
//! aggregator crashes … Scribe daemons simply check ZooKeeper again to find
//! another live aggregator. The same mechanism is used for balancing load
//! across aggregators." (§2)

use std::collections::VecDeque;

use uli_coord::Session;

use crate::aggregator::{endpoint_key, registry_path};
use crate::message::LogEntry;
use crate::network::Network;

/// Outcome of one [`ScribeDaemon::pump`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PumpReport {
    /// Entries handed to an aggregator.
    pub sent: u64,
    /// Entries still buffered locally (no live aggregator reachable).
    pub still_buffered: u64,
    /// Times the daemon went back to the coordination service to discover.
    pub discoveries: u64,
}

/// A production-host daemon: queues entries locally and pushes them to a
/// discovered aggregator, failing over on errors.
pub struct ScribeDaemon {
    host_id: u64,
    dc: String,
    session: Session,
    network: Network,
    /// Entries not yet accepted by any aggregator ("buffered on local disk").
    queue: VecDeque<LogEntry>,
    /// Cached aggregator member name from the last discovery.
    current: Option<String>,
    /// Total entries ever logged on this host.
    pub logged: u64,
}

impl ScribeDaemon {
    /// Creates a daemon for `host_id` in datacenter `dc`.
    pub fn new(host_id: u64, dc: &str, session: Session, network: Network) -> Self {
        ScribeDaemon {
            host_id,
            dc: dc.to_string(),
            session,
            network,
            queue: VecDeque::new(),
            current: None,
            logged: 0,
        }
    }

    /// The host identifier (used for load-balanced aggregator choice).
    pub fn host_id(&self) -> u64 {
        self.host_id
    }

    /// Queues a log entry locally; nothing crosses the network until
    /// [`pump`](Self::pump).
    pub fn log(&mut self, entry: LogEntry) {
        self.queue.push_back(entry);
        self.logged += 1;
    }

    /// Entries currently buffered on this host.
    pub fn buffered(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Picks an aggregator from the live set, spreading hosts across members
    /// by hashing the host id (the paper's "balancing load across
    /// aggregators" via the same discovery mechanism).
    fn discover(&mut self) -> Option<String> {
        let members = self
            .session
            .get_children(&registry_path(&self.dc))
            .unwrap_or_default();
        if members.is_empty() {
            return None;
        }
        // Stable multiplicative hash of the host id.
        let idx = (self.host_id.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize % members.len();
        Some(endpoint_key(&self.dc, &members[idx]))
    }

    /// Attempts to drain the local queue to a live aggregator.
    ///
    /// On a send failure the daemon rediscovers once (the crashed member's
    /// ephemeral znode is already gone) and retries; if no aggregator is
    /// reachable the remaining entries stay buffered for the next pump.
    pub fn pump(&mut self) -> PumpReport {
        let mut report = PumpReport::default();
        if self.queue.is_empty() {
            return report;
        }
        if self.current.is_none() {
            self.current = self.discover();
            report.discoveries += 1;
        }
        while let Some(entry) = self.queue.pop_front() {
            let Some(target) = self.current.clone() else {
                // No live aggregator: keep the entry and stop trying.
                self.queue.push_front(entry);
                break;
            };
            match self.network.send(&target, entry.clone()) {
                Ok(()) => report.sent += 1,
                Err(_) => {
                    // Peer is down: rediscover and retry this entry once.
                    self.current = self.discover();
                    report.discoveries += 1;
                    match &self.current {
                        Some(next) if self.network.send(next, entry.clone()).is_ok() => {
                            report.sent += 1;
                        }
                        _ => {
                            self.queue.push_front(entry);
                            break;
                        }
                    }
                }
            }
        }
        report.still_buffered = self.queue.len() as u64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::Aggregator;
    use uli_coord::CoordService;
    use uli_warehouse::Warehouse;

    fn daemon(coord: &CoordService, net: &Network, host: u64) -> ScribeDaemon {
        ScribeDaemon::new(host, "dc1", coord.connect(), net.clone())
    }

    #[test]
    fn logs_buffer_until_pumped() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 1);
        d.log(LogEntry::new("ce", b"m".to_vec()));
        assert_eq!(d.buffered(), 1);
        // No aggregators at all: entry stays buffered.
        let r = d.pump();
        assert_eq!(r.sent, 0);
        assert_eq!(r.still_buffered, 1);
    }

    #[test]
    fn pump_delivers_to_live_aggregator() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut d = daemon(&coord, &net, 7);
        for _ in 0..5 {
            d.log(LogEntry::new("ce", b"m".to_vec()));
        }
        let r = d.pump();
        assert_eq!(r.sent, 5);
        assert_eq!(r.still_buffered, 0);
        assert_eq!(agg.process(), 5);
    }

    #[test]
    fn failover_to_surviving_aggregator() {
        let coord = CoordService::new();
        let net = Network::new();
        let agg1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut agg2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());

        // Find a host id that hashes to agg1 so the crash actually matters.
        let mut d = (0..64)
            .map(|h| daemon(&coord, &net, h))
            .find(|d| {
                let mut probe = ScribeDaemon::new(d.host_id(), "dc1", coord.connect(), net.clone());
                probe.discover() == Some(agg1.endpoint().to_string())
            })
            .expect("some host maps to agg1");

        d.log(LogEntry::new("ce", b"before".to_vec()));
        assert_eq!(d.pump().sent, 1);

        let name1 = agg1.endpoint().to_string();
        agg1.crash(&coord);
        assert!(!net.is_up(&name1));

        d.log(LogEntry::new("ce", b"after".to_vec()));
        let r = d.pump();
        assert_eq!(r.sent, 1, "entry must fail over to agg2");
        assert!(r.discoveries >= 1);
        assert_eq!(agg2.process(), 1);
    }

    #[test]
    fn no_aggregator_then_recovery() {
        let coord = CoordService::new();
        let net = Network::new();
        let mut d = daemon(&coord, &net, 3);
        d.log(LogEntry::new("ce", b"1".to_vec()));
        assert_eq!(d.pump().sent, 0);
        // An aggregator appears; the buffered entry drains.
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let r = d.pump();
        assert_eq!(r.sent, 1);
        assert_eq!(agg.process(), 1);
    }

    #[test]
    fn hosts_spread_across_aggregators() {
        let coord = CoordService::new();
        let net = Network::new();
        let _a1 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let _a2 = Aggregator::spawn(&coord, &net, "dc1", Warehouse::new());
        let mut counts = std::collections::HashMap::new();
        for host in 0..200 {
            let mut d = daemon(&coord, &net, host);
            let target = d.discover().unwrap();
            *counts.entry(target).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 2, "both aggregators should receive hosts");
        for (_, c) in counts {
            assert!(c > 40, "load balance should be roughly even, got {c}");
        }
    }
}
