//! The Scribe log entry and the batched wire message.

/// Identity of an entry as stamped by the host daemon that accepted it:
/// the host id plus a per-host sequence number. Network faults can copy or
/// re-deliver an entry, but its id never changes — the log mover dedups on
/// it and the chaos invariant checker reconciles delivery against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId {
    /// Host that logged the entry.
    pub host: u64,
    /// Position in that host's log stream.
    pub seq: u64,
}

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}#{}", self.host, self.seq)
    }
}

/// "Each log entry consists of two strings, a category and a message. The
/// category is associated with configuration metadata that determine, among
/// other things, where the data is written." (§2)
///
/// Messages are bytes, not `String`: Thrift-encoded client events are binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Scribe category, e.g. `client_events`.
    pub category: String,
    /// Opaque message payload.
    pub message: Vec<u8>,
    /// Delivery identity, stamped by the daemon at `log()` time. `None` for
    /// entries injected directly onto the network (unit tests).
    pub id: Option<EntryId>,
}

impl LogEntry {
    /// Builds an entry.
    pub fn new(category: impl Into<String>, message: impl Into<Vec<u8>>) -> Self {
        LogEntry {
            category: category.into(),
            message: message.into(),
            id: None,
        }
    }

    /// Approximate wire size: category + payload.
    pub fn wire_size(&self) -> usize {
        self.category.len() + self.message.len()
    }
}

/// Entry tag inside a batch frame: carries an [`EntryId`].
const TAG_STAMPED: u8 = 1;
/// Entry tag inside a batch frame: no delivery id.
const TAG_RAW: u8 = 0;

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Frame-encoded size of one entry inside a batch: tag, optional 16-byte
/// id, then length-prefixed category and message.
pub(crate) fn framed_entry_size(e: &LogEntry) -> usize {
    let id_bytes = if e.id.is_some() { 16 } else { 0 };
    1 + id_bytes
        + varint_len(e.category.len() as u64)
        + e.category.len()
        + varint_len(e.message.len() as u64)
        + e.message.len()
}

/// A size+count-bounded batch of log entries — the unit a daemon hands to
/// the network in one message. Faults land at batch granularity: a dropped
/// packet loses (and re-buffers) a whole batch, a duplicated packet
/// re-delivers every entry in it. The byte framing ([`MessageBatch::encode`]
/// / [`MessageBatch::decode`]) is what would cross a real wire; the
/// in-process network passes the structured form but charges
/// [`wire_size`](MessageBatch::wire_size) — the encoded length — to the
/// cost model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageBatch {
    entries: Vec<LogEntry>,
    /// Cached encoded size of the entries (excludes the count header).
    entry_bytes: usize,
}

impl MessageBatch {
    /// An empty batch.
    pub fn new() -> Self {
        MessageBatch::default()
    }

    /// A batch of one entry (the unbatched compatibility path).
    pub fn of(entry: LogEntry) -> Self {
        let mut b = MessageBatch::new();
        b.push(entry);
        b
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry) {
        self.entry_bytes += framed_entry_size(&entry);
        self.entries.push(entry);
    }

    /// Entries in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, in send order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Consumes the batch into its entries.
    pub fn into_entries(self) -> Vec<LogEntry> {
        self.entries
    }

    /// Encoded size in bytes: what this batch would occupy on a real wire.
    pub fn wire_size(&self) -> usize {
        varint_len(self.entries.len() as u64) + self.entry_bytes
    }

    /// Serializes the batch: varint entry count, then per entry a tag byte
    /// (with the 16-byte little-endian id when stamped) and length-prefixed
    /// category and message.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        write_varint(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            match e.id {
                Some(id) => {
                    out.push(TAG_STAMPED);
                    out.extend_from_slice(&id.host.to_le_bytes());
                    out.extend_from_slice(&id.seq.to_le_bytes());
                }
                None => out.push(TAG_RAW),
            }
            write_varint(&mut out, e.category.len() as u64);
            out.extend_from_slice(e.category.as_bytes());
            write_varint(&mut out, e.message.len() as u64);
            out.extend_from_slice(&e.message);
        }
        out
    }

    /// Parses an encoded batch. `None` on any truncation, bad tag, or
    /// trailing garbage — a malformed frame is rejected whole, never
    /// half-applied.
    pub fn decode(bytes: &[u8]) -> Option<MessageBatch> {
        let mut pos = 0usize;
        let count = read_varint(bytes, &mut pos)?;
        if count > bytes.len() as u64 {
            // Each entry needs at least one byte; an overlong count cannot
            // be honest, so fail before reserving anything.
            return None;
        }
        let mut batch = MessageBatch::new();
        for _ in 0..count {
            let tag = *bytes.get(pos)?;
            pos += 1;
            let id = match tag {
                TAG_RAW => None,
                TAG_STAMPED => {
                    let rest = bytes.get(pos..pos + 16)?;
                    pos += 16;
                    Some(EntryId {
                        host: u64::from_le_bytes(rest[..8].try_into().expect("8 bytes")),
                        seq: u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes")),
                    })
                }
                _ => return None,
            };
            let cat_len = read_varint(bytes, &mut pos)? as usize;
            let category = bytes.get(pos..pos + cat_len)?;
            pos += cat_len;
            let msg_len = read_varint(bytes, &mut pos)? as usize;
            let message = bytes.get(pos..pos + msg_len)?;
            pos += msg_len;
            let mut e = LogEntry::new(String::from_utf8(category.to_vec()).ok()?, message.to_vec());
            e.id = id;
            batch.push(e);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(batch)
    }
}

impl<'a> IntoIterator for &'a MessageBatch {
    type Item = &'a LogEntry;
    type IntoIter = std::slice::Iter<'a, LogEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let e = LogEntry::new("client_events", b"payload".to_vec());
        assert_eq!(e.category, "client_events");
        assert_eq!(e.message, b"payload");
        assert_eq!(e.wire_size(), "client_events".len() + 7);
    }

    fn stamped(host: u64, seq: u64, msg: &[u8]) -> LogEntry {
        let mut e = LogEntry::new("client_events", msg.to_vec());
        e.id = Some(EntryId { host, seq });
        e
    }

    #[test]
    fn batch_roundtrips_mixed_entries() {
        let mut b = MessageBatch::new();
        b.push(stamped(3, 0, b"first"));
        b.push(LogEntry::new("other", b"".to_vec()));
        b.push(stamped(3, 1, &[0xff; 200]));
        let bytes = b.encode();
        assert_eq!(bytes.len(), b.wire_size(), "wire_size is the frame size");
        assert_eq!(MessageBatch::decode(&bytes), Some(b));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let b = MessageBatch::new();
        assert!(b.is_empty());
        assert_eq!(MessageBatch::decode(&b.encode()), Some(b));
    }

    #[test]
    fn truncations_and_garbage_are_rejected_whole() {
        let mut b = MessageBatch::new();
        b.push(stamped(1, 0, b"payload"));
        b.push(stamped(1, 1, b"payload2"));
        let bytes = b.encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                MessageBatch::decode(&bytes[..cut]),
                None,
                "truncation at {cut} must reject the whole frame"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(MessageBatch::decode(&trailing), None, "trailing garbage");
        assert_eq!(MessageBatch::decode(&[9]), None, "bad count then EOF");
        assert_eq!(MessageBatch::decode(&[1, 7]), None, "unknown entry tag");
    }

    #[test]
    fn overlong_count_fails_before_allocating() {
        // Claims u64::MAX entries in a 10-byte frame.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX);
        assert_eq!(MessageBatch::decode(&bytes), None);
    }

    #[test]
    fn wire_size_tracks_pushes_incrementally() {
        let mut b = MessageBatch::new();
        let mut prev = b.wire_size();
        for i in 0..130u64 {
            b.push(stamped(9, i, b"x"));
            let now = b.wire_size();
            assert!(now > prev);
            prev = now;
            assert_eq!(b.encode().len(), now);
        }
    }
}
