//! The Scribe log entry.

/// "Each log entry consists of two strings, a category and a message. The
/// category is associated with configuration metadata that determine, among
/// other things, where the data is written." (§2)
///
/// Messages are bytes, not `String`: Thrift-encoded client events are binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Scribe category, e.g. `client_events`.
    pub category: String,
    /// Opaque message payload.
    pub message: Vec<u8>,
}

impl LogEntry {
    /// Builds an entry.
    pub fn new(category: impl Into<String>, message: impl Into<Vec<u8>>) -> Self {
        LogEntry {
            category: category.into(),
            message: message.into(),
        }
    }

    /// Approximate wire size: category + payload.
    pub fn wire_size(&self) -> usize {
        self.category.len() + self.message.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let e = LogEntry::new("client_events", b"payload".to_vec());
        assert_eq!(e.category, "client_events");
        assert_eq!(e.message, b"payload");
        assert_eq!(e.wire_size(), "client_events".len() + 7);
    }
}
