//! The Scribe log entry.

/// Identity of an entry as stamped by the host daemon that accepted it:
/// the host id plus a per-host sequence number. Network faults can copy or
/// re-deliver an entry, but its id never changes — the log mover dedups on
/// it and the chaos invariant checker reconciles delivery against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntryId {
    /// Host that logged the entry.
    pub host: u64,
    /// Position in that host's log stream.
    pub seq: u64,
}

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}#{}", self.host, self.seq)
    }
}

/// "Each log entry consists of two strings, a category and a message. The
/// category is associated with configuration metadata that determine, among
/// other things, where the data is written." (§2)
///
/// Messages are bytes, not `String`: Thrift-encoded client events are binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Scribe category, e.g. `client_events`.
    pub category: String,
    /// Opaque message payload.
    pub message: Vec<u8>,
    /// Delivery identity, stamped by the daemon at `log()` time. `None` for
    /// entries injected directly onto the network (unit tests).
    pub id: Option<EntryId>,
}

impl LogEntry {
    /// Builds an entry.
    pub fn new(category: impl Into<String>, message: impl Into<Vec<u8>>) -> Self {
        LogEntry {
            category: category.into(),
            message: message.into(),
            id: None,
        }
    }

    /// Approximate wire size: category + payload.
    pub fn wire_size(&self) -> usize {
        self.category.len() + self.message.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        let e = LogEntry::new("client_events", b"payload".to_vec());
        assert_eq!(e.category, "client_events");
        assert_eq!(e.message, b"payload");
        assert_eq!(e.wire_size(), "client_events".len() + 7);
    }
}
