//! Framing for staged files.
//!
//! Aggregators wrap every record they flush in a small envelope carrying the
//! [`EntryId`] the host daemon stamped, so the log mover can deduplicate
//! entries that network faults delivered more than once. Envelopes never
//! reach the main warehouse: the mover strips them during the merge, which
//! keeps downstream readers (the materializer, the analytics jobs) oblivious
//! to delivery bookkeeping.
//!
//! A framed file announces itself with a magic first record; files without
//! it (hand-written fixtures, pre-envelope data) are passed through as raw
//! payloads. That keeps the format self-describing without a per-record
//! heuristic.

use crate::message::EntryId;

/// First record of every framed staging file. Starts with a 0 byte so no
/// Thrift-encoded payload (whose first byte is a field-type tag ≥ 1 or an
/// empty struct stop byte in a non-colliding position) is mistaken for it.
pub const MAGIC: &[u8] = b"\0ULI-STAGED-v1";

/// Envelope tag: record carries an [`EntryId`].
const TAG_STAMPED: u8 = 1;
/// Envelope tag: record has no id (entry was injected without a daemon).
const TAG_RAW: u8 = 0;

/// Appends the staged-file envelope for one payload to `out` — the
/// allocation-free form: callers flushing a stream of records keep a single
/// scratch buffer (clearing it between records) instead of paying one `Vec`
/// per record. Appends exactly the bytes [`encode`] would return.
pub fn encode_into(id: Option<EntryId>, payload: &[u8], out: &mut Vec<u8>) {
    match id {
        Some(id) => {
            out.reserve(1 + 16 + payload.len());
            out.push(TAG_STAMPED);
            out.extend_from_slice(&id.host.to_le_bytes());
            out.extend_from_slice(&id.seq.to_le_bytes());
        }
        None => {
            out.reserve(1 + payload.len());
            out.push(TAG_RAW);
        }
    }
    out.extend_from_slice(payload);
}

/// Wraps one payload in the staged-file envelope (a thin wrapper over
/// [`encode_into`]).
pub fn encode(id: Option<EntryId>, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(id, payload, &mut out);
    out
}

/// Unwraps one enveloped record into `(id, payload)`. `None` if the record
/// is malformed (truncated header) — callers treat that as a sanity-check
/// rejection, not a panic.
pub fn decode(record: &[u8]) -> Option<(Option<EntryId>, &[u8])> {
    match record.split_first()? {
        (&TAG_RAW, payload) => Some((None, payload)),
        (&TAG_STAMPED, rest) => {
            if rest.len() < 16 {
                return None;
            }
            let host = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            let seq = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
            Some((Some(EntryId { host, seq }), &rest[16..]))
        }
        _ => None,
    }
}

/// True if a file's records begin with the framing magic.
pub fn is_framed(records: &[Vec<u8>]) -> bool {
    records.first().map(Vec::as_slice) == Some(MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_roundtrip() {
        let id = EntryId { host: 7, seq: 41 };
        let rec = encode(Some(id), b"payload");
        assert_eq!(decode(&rec), Some((Some(id), &b"payload"[..])));
    }

    #[test]
    fn raw_roundtrip() {
        let rec = encode(None, b"x");
        assert_eq!(decode(&rec), Some((None, &b"x"[..])));
    }

    #[test]
    fn truncated_stamped_record_is_rejected() {
        let rec = vec![1u8, 2, 3];
        assert_eq!(decode(&rec), None);
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode(&[9u8, 0, 0]), None);
        assert_eq!(decode(&[]), None);
    }

    #[test]
    fn encode_into_reuses_one_buffer_and_matches_encode() {
        let id = EntryId { host: 2, seq: 9 };
        let mut scratch = Vec::new();
        for (id, payload) in [(Some(id), &b"abc"[..]), (None, &b"defgh"[..])] {
            scratch.clear();
            encode_into(id, payload, &mut scratch);
            assert_eq!(scratch, encode(id, payload));
            assert_eq!(decode(&scratch), Some((id, payload)));
        }
    }

    #[test]
    fn framing_detection() {
        assert!(is_framed(&[MAGIC.to_vec(), vec![1, 2]]));
        assert!(!is_framed(&[b"raw".to_vec()]));
        assert!(!is_framed(&[]));
    }
}
