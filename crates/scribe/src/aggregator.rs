//! The Scribe aggregator.
//!
//! Aggregators "merge per-category streams from all the server daemons and
//! write the merged results to HDFS (of the staging Hadoop cluster),
//! compressing data on the fly" (§2), advertise themselves with an ephemeral
//! znode, and "buffer data on local disk in case of HDFS outages".
//!
//! The ephemeral znode stores the aggregator's network endpoint as its
//! data. When the coordination session expires (missed heartbeats rather
//! than a real crash), [`Aggregator::heartbeat`] re-registers under a fresh
//! member name with the *same* endpoint, so daemons rediscover the same
//! channel and in-flight packets stay deliverable.

use std::collections::BTreeMap;

use crossbeam::channel::Receiver;
use uli_coord::{CoordService, CreateMode, Session, SessionId};
use uli_warehouse::{HourlyPartition, Warehouse, WarehouseError};

use crate::config::{CategoryRegistry, Disposition};
use crate::message::{EntryId, LogEntry};
use crate::network::Network;
use crate::staged;

/// Base path in the coordination service under which aggregators of a
/// datacenter register.
pub fn registry_path(dc: &str) -> String {
    format!("/scribe/aggregators/{dc}")
}

/// Outcome of one flush cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushReport {
    /// Records written to the staging warehouse.
    pub flushed_records: u64,
    /// Records diverted to the local-disk buffer because staging was down.
    pub buffered_records: u64,
    /// Files created in the staging warehouse.
    pub files_written: u64,
}

/// What a hard crash destroyed.
#[derive(Debug, Clone, Default)]
pub struct CrashReport {
    /// Entries lost: accepted or in-channel but never durably flushed.
    pub records: u64,
    /// Delivery ids of the stamped entries among them.
    pub ids: Vec<EntryId>,
    /// Ids the aggregator had dropped by category policy before the crash
    /// (needed to keep end-to-end id accounting complete).
    pub policy_dropped_ids: Vec<EntryId>,
}

/// Builds the network endpoint key for a datacenter member. Sequence
/// numbers restart per registry node, so member names alone collide across
/// datacenters; the endpoint key namespaces them.
pub fn endpoint_key(dc: &str, member: &str) -> String {
    format!("{dc}:{member}")
}

/// One record awaiting flush: the payload plus its delivery id, if any.
#[derive(Debug, Clone)]
struct PendingRecord {
    id: Option<EntryId>,
    payload: Vec<u8>,
}

/// A single aggregator process.
pub struct Aggregator {
    name: String,
    endpoint: String,
    dc: String,
    session: Session,
    rx: Receiver<LogEntry>,
    network: Network,
    staging: Warehouse,
    /// Per-category entries drained from the network, awaiting flush.
    pending: BTreeMap<String, Vec<PendingRecord>>,
    /// "Local disk" buffer: entries that could not be flushed because the
    /// staging cluster was unavailable. Retried on the next flush.
    local_disk: BTreeMap<String, Vec<PendingRecord>>,
    flush_seq: u64,
    /// Total entries accepted off the network.
    pub accepted: u64,
    /// Entries dropped by category policy (disabled/sampled/oversize).
    pub dropped_by_policy: u64,
    policy_dropped_ids: Vec<EntryId>,
    /// Times [`heartbeat`](Self::heartbeat) re-registered after an expiry.
    pub reregistrations: u64,
    registry: CategoryRegistry,
}

impl Aggregator {
    /// Starts an aggregator in `dc`: registers an ephemeral sequential znode
    /// (whose data is the network endpoint) and the endpoint itself.
    pub fn spawn(
        coord: &CoordService,
        network: &Network,
        dc: &str,
        staging: Warehouse,
    ) -> Aggregator {
        let session = coord.connect();
        ensure_registry_path(&session, dc);
        let (name, endpoint) = register_member(&session, dc, None);
        let rx = network.register(&endpoint);
        Aggregator {
            name,
            endpoint,
            dc: dc.to_string(),
            session,
            rx,
            network: network.clone(),
            staging,
            pending: BTreeMap::new(),
            local_disk: BTreeMap::new(),
            flush_seq: 0,
            accepted: 0,
            dropped_by_policy: 0,
            policy_dropped_ids: Vec::new(),
            reregistrations: 0,
            registry: CategoryRegistry::new(),
        }
    }

    /// Installs category configuration metadata (§2): routing, sampling,
    /// size limits, kill switches. Applied as entries are accepted.
    pub fn with_registry(mut self, registry: CategoryRegistry) -> Aggregator {
        self.registry = registry;
        self
    }

    /// The member name under which this aggregator appears in the
    /// coordination service.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The network endpoint key daemons send to.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The datacenter this aggregator serves.
    pub fn dc(&self) -> &str {
        &self.dc
    }

    /// This aggregator's coordination session id (for expiry injection).
    pub fn session_id(&self) -> SessionId {
        self.session.id()
    }

    /// Liveness maintenance: if the coordination session expired (the
    /// ephemeral znode is gone but the process is alive), reconnect and
    /// re-register under a new member name with the same endpoint. Returns
    /// true if a re-registration happened.
    pub fn heartbeat(&mut self, coord: &CoordService) -> bool {
        if self.session.is_live() {
            return false;
        }
        self.session = coord.connect();
        ensure_registry_path(&self.session, &self.dc);
        let (name, _) = register_member(&self.session, &self.dc, Some(&self.endpoint));
        self.name = name;
        self.reregistrations += 1;
        true
    }

    /// Drains all entries currently queued on the network into the pending
    /// per-category buffers. Returns how many were accepted.
    pub fn process(&mut self) -> u64 {
        let mut n = 0;
        for entry in self.rx.try_iter() {
            match self.registry.disposition(&entry.category, &entry.message) {
                Disposition::Store(category) => {
                    self.pending
                        .entry(category)
                        .or_default()
                        .push(PendingRecord {
                            id: entry.id,
                            payload: entry.message,
                        });
                    n += 1;
                }
                Disposition::DropDisabled
                | Disposition::DropSampled
                | Disposition::DropOversize => {
                    self.dropped_by_policy += 1;
                    if let Some(id) = entry.id {
                        self.policy_dropped_ids.push(id);
                    }
                }
            }
        }
        self.accepted += n;
        n
    }

    /// Entries currently at risk: accepted but not yet durably flushed
    /// (pending + local-disk buffer). A hard crash loses these.
    pub fn unflushed(&self) -> u64 {
        let pend: usize = self.pending.values().map(Vec::len).sum();
        let disk: usize = self.local_disk.values().map(Vec::len).sum();
        (pend + disk) as u64
    }

    /// Ids of stamped entries currently at risk (pending or local-disk).
    pub fn unflushed_ids(&self) -> impl Iterator<Item = EntryId> + '_ {
        self.pending
            .values()
            .chain(self.local_disk.values())
            .flatten()
            .filter_map(|r| r.id)
    }

    /// Ids of stamped entries dropped by category policy so far.
    pub fn policy_dropped_ids(&self) -> &[EntryId] {
        &self.policy_dropped_ids
    }

    /// Entries accepted by the network but not yet drained by
    /// [`process`](Self::process).
    pub fn in_channel(&self) -> u64 {
        self.rx.len() as u64
    }

    /// Flushes pending (and previously buffered) entries for `hour_index`
    /// into the staging warehouse, one file per category per flush.
    ///
    /// If the staging warehouse is unavailable, entries move to the local
    /// disk buffer and are retried on the next flush — the behaviour the
    /// paper describes for HDFS outages.
    pub fn flush(&mut self, hour_index: u64) -> FlushReport {
        let mut report = FlushReport::default();
        // Fold local-disk retries in front of fresh pending data.
        let mut work: BTreeMap<String, Vec<PendingRecord>> = std::mem::take(&mut self.local_disk);
        for (cat, mut msgs) in std::mem::take(&mut self.pending) {
            work.entry(cat).or_default().append(&mut msgs);
        }
        for (category, records) in work {
            if records.is_empty() {
                continue;
            }
            let partition = HourlyPartition::from_hour_index(&category, hour_index);
            let dir = partition.main_dir();
            let file = dir
                .child(&format!("{}-{:05}", self.name, self.flush_seq))
                .expect("valid file name");
            self.flush_seq += 1;
            let count = records.len() as u64;
            match self.write_file(&file, &records) {
                Ok(()) => {
                    report.flushed_records += count;
                    report.files_written += 1;
                }
                Err(WarehouseError::Unavailable) => {
                    report.buffered_records += count;
                    self.local_disk.insert(category, records);
                }
                Err(other) => {
                    // Unexpected structural failure: keep data buffered
                    // rather than losing it, but surface loudly in debug.
                    debug_assert!(false, "staging write failed: {other}");
                    report.buffered_records += count;
                    self.local_disk.insert(category, records);
                }
            }
        }
        report
    }

    fn write_file(
        &self,
        path: &uli_warehouse::WhPath,
        records: &[PendingRecord],
    ) -> Result<(), WarehouseError> {
        let mut w = self.staging.create(path)?;
        // Framing magic first, so the mover knows records are enveloped.
        w.append_record(staged::MAGIC);
        // One envelope scratch for the whole file instead of a fresh Vec
        // per record: flushing is the ingest hot loop.
        let mut scratch = Vec::with_capacity(256);
        for r in records {
            scratch.clear();
            staged::encode_into(r.id, &r.payload, &mut scratch);
            w.append_record(&scratch);
        }
        w.finish()?;
        Ok(())
    }

    /// Hard crash: the network endpoint closes, the coordination session
    /// expires (removing the ephemeral znode), and everything unflushed —
    /// including the local-disk buffer, since the host is gone — is lost.
    pub fn crash(self, coord: &CoordService) -> CrashReport {
        self.network.unregister(&self.endpoint);
        // Entries still sitting in the channel were accepted by the network
        // but never processed; they are lost too.
        let mut ids: Vec<EntryId> = self.unflushed_ids().collect();
        let mut records = self.unflushed();
        for entry in self.rx.try_iter() {
            records += 1;
            if let Some(id) = entry.id {
                ids.push(id);
            }
        }
        coord.expire_session(self.session.id());
        CrashReport {
            records,
            ids,
            policy_dropped_ids: self.policy_dropped_ids,
        }
    }

    /// Graceful shutdown: drain, flush, deregister. Returns the final flush
    /// report. Data is only lost if staging is down at shutdown time.
    pub fn shutdown(mut self, hour_index: u64) -> FlushReport {
        self.process();
        let report = self.flush(hour_index);
        self.network.unregister(&self.endpoint);
        report
    }
}

fn ensure_registry_path(session: &Session, dc: &str) {
    let base = registry_path(dc);
    let mut ensured = String::new();
    for seg in base[1..].split('/') {
        ensured.push('/');
        ensured.push_str(seg);
        let _ = session.create(&ensured, vec![], CreateMode::Persistent);
    }
}

/// Creates the ephemeral sequential member znode, storing the endpoint as
/// its data. `endpoint` is `None` on first registration (derived from the
/// new member name) and `Some` when re-registering an existing endpoint.
fn register_member(session: &Session, dc: &str, endpoint: Option<&str>) -> (String, String) {
    let base = registry_path(dc);
    let member_path = session
        .create(
            &format!("{base}/agg-"),
            vec![],
            CreateMode::EphemeralSequential,
        )
        .expect("registry path ensured above");
    let name = member_path
        .rsplit('/')
        .next()
        .expect("member path has a name")
        .to_string();
    let endpoint = match endpoint {
        Some(e) => e.to_string(),
        None => endpoint_key(dc, &name),
    };
    session
        .set_data(&member_path, endpoint.clone().into_bytes(), None)
        .expect("member znode just created");
    (name, endpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_coord::CoordService;
    use uli_warehouse::WhPath;

    fn setup() -> (CoordService, Network, Warehouse) {
        (CoordService::new(), Network::new(), Warehouse::new())
    }

    /// Reads a staged file back as bare payloads, checking the framing.
    fn staged_payloads(wh: &Warehouse, path: &WhPath) -> Vec<Vec<u8>> {
        let records = wh.open(path).unwrap().read_all().unwrap();
        assert!(staged::is_framed(&records), "aggregator files are framed");
        records[1..]
            .iter()
            .map(|r| staged::decode(r).expect("valid envelope").1.to_vec())
            .collect()
    }

    #[test]
    fn spawn_registers_ephemeral_and_endpoint() {
        let (coord, net, staging) = setup();
        let agg = Aggregator::spawn(&coord, &net, "dc1", staging);
        assert!(net.is_up(agg.endpoint()));
        let admin = coord.connect();
        let members = admin.get_children(&registry_path("dc1")).unwrap();
        assert_eq!(members, vec![agg.name().to_string()]);
        // The member znode advertises the endpoint as its data.
        let (data, _) = admin
            .get_data(&format!("{}/{}", registry_path("dc1"), agg.name()))
            .unwrap();
        assert_eq!(data, agg.endpoint().as_bytes());
    }

    #[test]
    fn process_and_flush_write_hourly_files() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging.clone());
        for i in 0..10 {
            net.send(
                agg.endpoint(),
                LogEntry::new("client_events", format!("m{i}").into_bytes()),
            )
            .unwrap();
        }
        assert_eq!(agg.process(), 10);
        let report = agg.flush(14);
        assert_eq!(report.flushed_records, 10);
        assert_eq!(report.files_written, 1);
        let dir = HourlyPartition::from_hour_index("client_events", 14).main_dir();
        let files = staging.list_files_recursive(&dir).unwrap();
        assert_eq!(files.len(), 1);
        let payloads = staged_payloads(&staging, &files[0]);
        assert_eq!(payloads.len(), 10);
        assert_eq!(payloads[0], b"m0");
    }

    #[test]
    fn outage_buffers_then_retries() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging.clone());
        net.send(agg.endpoint(), LogEntry::new("ce", b"x".to_vec()))
            .unwrap();
        agg.process();

        staging.set_available(false);
        let r1 = agg.flush(0);
        assert_eq!(r1.flushed_records, 0);
        assert_eq!(r1.buffered_records, 1);
        assert_eq!(agg.unflushed(), 1);

        staging.set_available(true);
        let r2 = agg.flush(0);
        assert_eq!(r2.flushed_records, 1);
        assert_eq!(agg.unflushed(), 0);
        let dir = HourlyPartition::from_hour_index("ce", 0).main_dir();
        assert_eq!(staging.list_files_recursive(&dir).unwrap().len(), 1);
    }

    #[test]
    fn crash_removes_registration_and_counts_losses() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging);
        let name = agg.endpoint().to_string();
        net.send(&name, LogEntry::new("ce", b"a".to_vec())).unwrap();
        agg.process(); // 1 pending
        net.send(&name, LogEntry::new("ce", b"b".to_vec())).unwrap(); // 1 in channel
        let lost = agg.crash(&coord);
        assert_eq!(lost.records, 2);
        assert!(!net.is_up(&name));
        let admin = coord.connect();
        assert!(admin
            .get_children(&registry_path("dc1"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn crash_reports_lost_ids_of_stamped_entries() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging);
        let mut stamped = LogEntry::new("ce", b"a".to_vec());
        stamped.id = Some(EntryId { host: 3, seq: 0 });
        net.send(agg.endpoint(), stamped).unwrap();
        agg.process();
        let mut in_channel = LogEntry::new("ce", b"b".to_vec());
        in_channel.id = Some(EntryId { host: 3, seq: 1 });
        net.send(agg.endpoint(), in_channel).unwrap();
        let lost = agg.crash(&coord);
        assert_eq!(lost.records, 2);
        assert_eq!(
            lost.ids,
            vec![EntryId { host: 3, seq: 0 }, EntryId { host: 3, seq: 1 }]
        );
    }

    #[test]
    fn heartbeat_reregisters_after_session_expiry_keeping_endpoint() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging);
        let old_name = agg.name().to_string();
        let endpoint = agg.endpoint().to_string();
        assert!(!agg.heartbeat(&coord), "live session: no re-registration");

        coord.expire_session(agg.session_id());
        let admin = coord.connect();
        assert!(
            admin
                .get_children(&registry_path("dc1"))
                .unwrap()
                .is_empty(),
            "expiry removes the ephemeral znode"
        );
        // The endpoint itself is still up — the process did not die.
        assert!(net.is_up(&endpoint));

        assert!(agg.heartbeat(&coord));
        assert_eq!(agg.reregistrations, 1);
        assert_ne!(agg.name(), old_name, "fresh member name");
        assert_eq!(agg.endpoint(), endpoint, "same network channel");
        let members = admin.get_children(&registry_path("dc1")).unwrap();
        assert_eq!(members, vec![agg.name().to_string()]);
        let (data, _) = admin
            .get_data(&format!("{}/{}", registry_path("dc1"), agg.name()))
            .unwrap();
        assert_eq!(
            data,
            endpoint.as_bytes(),
            "znode data points at the old endpoint"
        );
    }

    #[test]
    fn graceful_shutdown_loses_nothing() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging.clone());
        net.send(agg.endpoint(), LogEntry::new("ce", b"a".to_vec()))
            .unwrap();
        agg.process();
        net.send(agg.endpoint(), LogEntry::new("ce", b"b".to_vec()))
            .unwrap();
        let report = agg.shutdown(3);
        assert_eq!(report.flushed_records, 2);
        let dir = HourlyPartition::from_hour_index("ce", 3).main_dir();
        let files = staging.list_files_recursive(&dir).unwrap();
        let total: usize = files
            .iter()
            .map(|f| staged_payloads(&staging, f).len())
            .sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn category_policy_drops_and_aliases() {
        use crate::config::{CategoryConfig, CategoryRegistry};
        let (coord, net, staging) = setup();
        let mut registry = CategoryRegistry::new();
        registry.set(
            "noisy",
            CategoryConfig {
                enabled: false,
                ..Default::default()
            },
        );
        registry.set(
            "rainbird",
            CategoryConfig {
                store_as: Some("web_frontend".into()),
                ..Default::default()
            },
        );
        registry.set(
            "bounded",
            CategoryConfig {
                max_message_bytes: 4,
                ..Default::default()
            },
        );
        let mut agg =
            Aggregator::spawn(&coord, &net, "dc1", staging.clone()).with_registry(registry);
        net.send(agg.endpoint(), LogEntry::new("noisy", b"dropped".to_vec()))
            .unwrap();
        net.send(agg.endpoint(), LogEntry::new("rainbird", b"kept".to_vec()))
            .unwrap();
        net.send(
            agg.endpoint(),
            LogEntry::new("bounded", b"too large".to_vec()),
        )
        .unwrap();
        net.send(agg.endpoint(), LogEntry::new("bounded", b"ok".to_vec()))
            .unwrap();
        assert_eq!(agg.process(), 2);
        assert_eq!(agg.dropped_by_policy, 2);
        let r = agg.flush(0);
        assert_eq!(r.flushed_records, 2);
        // The alias landed under the configured directory.
        let aliased = HourlyPartition::from_hour_index("web_frontend", 0).main_dir();
        assert_eq!(staging.list_files_recursive(&aliased).unwrap().len(), 1);
        assert!(!staging.exists(&HourlyPartition::from_hour_index("rainbird", 0).main_dir()));
    }

    #[test]
    fn multiple_categories_get_separate_files() {
        let (coord, net, staging) = setup();
        let mut agg = Aggregator::spawn(&coord, &net, "dc1", staging.clone());
        net.send(agg.endpoint(), LogEntry::new("cat_a", b"1".to_vec()))
            .unwrap();
        net.send(agg.endpoint(), LogEntry::new("cat_b", b"2".to_vec()))
            .unwrap();
        agg.process();
        let r = agg.flush(0);
        assert_eq!(r.files_written, 2);
        assert!(
            staging
                .list_files_recursive(&WhPath::parse("/logs/cat_a").unwrap())
                .unwrap()
                .len()
                == 1
        );
        assert!(
            staging
                .list_files_recursive(&WhPath::parse("/logs/cat_b").unwrap())
                .unwrap()
                .len()
                == 1
        );
    }
}
