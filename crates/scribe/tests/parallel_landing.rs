//! Property test: the parallel mover is byte-identical to the serial one.
//!
//! For arbitrary staged-hour shapes — datacenter counts, files per DC,
//! record counts, payload sizes, unstamped records, and duplicate ids
//! injected both within and across files — landing the hour at any worker
//! count must produce exactly the serial mover's outcome: the same landed
//! file bytes (compared by warehouse digest), the same move report, the
//! same committed seen-set, and the same tap payload sequence.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use uli_scribe::mover::seal_hour;
use uli_scribe::{staged, DeliveryTap, EntryId, LogMover, MoveReport};
use uli_warehouse::{HourlyPartition, Parallelism, Warehouse};

/// One staged record: an optional stamp plus a payload length. Payload
/// bytes derive deterministically from the record's position so equal
/// shapes always stage equal bytes.
type RecordShape = (Option<(u64, u64)>, usize);

/// Files per DC; each file is a list of record shapes.
type DcShape = Vec<Vec<RecordShape>>;

fn record_shape() -> impl Strategy<Value = RecordShape> {
    // Small host/seq domains make cross-file duplicates likely; `None`
    // models unstamped best-effort records the mover never dedups. The
    // vendored prop_oneof is unweighted, so the stamped arm repeats to
    // keep unstamped records a minority.
    let stamped = (0u64..4, 0u64..12).prop_map(Some);
    let stamp = prop_oneof![stamped.clone(), stamped.clone(), stamped, Just(None)];
    (stamp, 0usize..40)
}

fn staged_day() -> impl Strategy<Value = Vec<DcShape>> {
    let file = prop::collection::vec(record_shape(), 0..25);
    let dc = prop::collection::vec(file, 1..4);
    prop::collection::vec(dc, 1..4)
}

fn stage(partition: &HourlyPartition, shape: &[DcShape]) -> Vec<Warehouse> {
    let mut dcs = Vec::new();
    for (d, files) in shape.iter().enumerate() {
        let wh = Warehouse::new();
        for (f, records) in files.iter().enumerate() {
            let path = partition.main_dir().child(&format!("agg-{f:03}")).unwrap();
            let mut w = wh.create(&path).unwrap();
            w.append_record(staged::MAGIC);
            for (r, (stamp, len)) in records.iter().enumerate() {
                let id = stamp.map(|(host, seq)| EntryId { host, seq });
                let payload: Vec<u8> = (0..*len)
                    .map(|i| (d * 31 + f * 7 + r * 3 + i) as u8)
                    .collect();
                w.append_record(&staged::encode(id, &payload));
            }
            w.finish().unwrap();
        }
        seal_hour(&wh, partition).unwrap();
        dcs.push(wh);
    }
    dcs
}

struct RecordingTap(Arc<Mutex<Vec<Vec<u8>>>>);

impl DeliveryTap for RecordingTap {
    fn hour_delivered(&mut self, _partition: &HourlyPartition, payloads: &[Vec<u8>]) {
        self.0.lock().unwrap().extend(payloads.iter().cloned());
    }
}

/// Lands the staged shape with `workers` and returns everything observable:
/// the report, each landed file's digest, the committed seen snapshot, and
/// the payloads the tap saw.
#[allow(clippy::type_complexity)]
fn land(
    shape: &[DcShape],
    workers: usize,
    records_per_file: u64,
) -> (
    MoveReport,
    Vec<(String, u64)>,
    (Vec<(u64, u64)>, Vec<EntryId>),
    Vec<Vec<u8>>,
) {
    let partition = HourlyPartition::new("client_events", 2012, 8, 21, 14).unwrap();
    let dcs = stage(&partition, shape);
    let names: Vec<String> = (0..dcs.len()).map(|i| format!("dc{i}")).collect();
    let staging: Vec<(&str, &Warehouse)> =
        names.iter().map(String::as_str).zip(dcs.iter()).collect();
    let mut mover = LogMover::new(Warehouse::new(), records_per_file)
        .with_parallelism(Parallelism::fixed(workers));
    let tapped = Arc::new(Mutex::new(Vec::new()));
    mover.add_tap(Box::new(RecordingTap(tapped.clone())));
    let report = mover.move_hour(&partition, &staging).unwrap();
    let mut files = mover
        .main()
        .list_files_recursive(&partition.main_dir())
        .unwrap();
    files.sort();
    let digests = files
        .into_iter()
        .map(|f| {
            let d = mover.main().file_digest(&f).unwrap();
            (f.as_str().to_string(), d)
        })
        .collect();
    let seen = mover.seen_snapshot();
    let payloads = tapped.lock().unwrap().clone();
    (report, digests, seen, payloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_landing_is_byte_identical_to_serial(
        shape in staged_day(),
        workers in prop::sample::select(vec![2usize, 3, 4, 8]),
        records_per_file in prop::sample::select(vec![1u64, 7, 23, 1000]),
    ) {
        let serial = land(&shape, 1, records_per_file);
        let parallel = land(&shape, workers, records_per_file);
        prop_assert_eq!(&parallel.0, &serial.0, "move report diverged");
        prop_assert_eq!(&parallel.1, &serial.1, "landed file bytes diverged");
        prop_assert_eq!(&parallel.2, &serial.2, "seen snapshot diverged");
        prop_assert_eq!(&parallel.3, &serial.3, "tap payloads diverged");
    }
}
