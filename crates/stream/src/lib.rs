//! `uli-stream`: a Summingbird-lite speed layer over the Scribe pipeline.
//!
//! The paper's infrastructure is batch-only: client events land in hourly
//! warehouse partitions, and analytics (BirdBrain, funnels) run as
//! Pig/MapReduce jobs hours later. Twitter's production stack layered a
//! *speed layer* on the same Scribe stream — Summingbird programs whose
//! aggregations are Algebird monoids, so the same logical computation runs
//! both online (approximate, seconds-fresh) and in batch (exact,
//! hours-late), and the two answers provably converge. This crate
//! reproduces that lambda shape in miniature:
//!
//! * [`StreamState`] — the monoid: exact counters (records, events,
//!   per-name, per-client) plus bounded-memory sketches (HyperLogLog
//!   distinct users, Count-Min/TopK trending names, log-linear payload
//!   percentiles), all merging commutatively and associatively.
//! * [`StreamAnalytics`] — the speed layer: implements
//!   [`uli_scribe::DeliveryTap`], shards delivered records by payload
//!   hash, and serves windowed (per-hour) and running (day-so-far) views,
//!   mirrored into `uli-obs` registry metrics.
//! * [`BatchSummary`] / [`check_convergence`] — the batch layer and the
//!   lambda invariant: streaming views over the delivered partition must
//!   equal batch answers exactly for exact aggregates and fall within
//!   declared error bounds for sketches.
//!
//! The tap rides the mover's exactly-once delivery point (after duplicate
//! squashing, committed only on a successful atomic slide), so the
//! invariant holds under crash/retry chaos schedules too — the streaming
//! totals reconcile against the delivered ⊎ lost ⊎ dropped partition from
//! `uli_scribe::check_invariants`.

pub mod analytics;
pub mod batch;
pub mod state;

pub use analytics::{StreamAnalytics, StreamConfig};
pub use batch::{
    batch_reference, check_convergence, scan_hour, BatchSummary, Convergence, CHECKED_QUANTILES,
    HLL_REL_BOUND,
};
pub use state::{StreamState, DEFAULT_TRENDING_K};
