//! The speed layer: sharded monoid state fed by the Scribe delivery tap,
//! with windowed (per-hour) and running (day-so-far) views exported
//! through `uli-obs`.
//!
//! [`StreamAnalytics`] implements [`uli_scribe::DeliveryTap`], so it can
//! be attached to a [`uli_scribe::ScribePipeline`] and observe exactly the
//! records each successful atomic slide makes visible. Records route to a
//! shard by payload hash — the routing is pure partitioning, so because
//! every [`StreamState`] operation commutes, the merged view is identical
//! at *any* shard count and any merge order. The lambda invariant suite
//! pins that: views at 1, 4, and 8 shards are asserted byte-equal.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use uli_obs::{Counter, Gauge, Registry};
use uli_scribe::DeliveryTap;
use uli_warehouse::HourlyPartition;

use crate::state::{StreamState, DEFAULT_TRENDING_K};

/// Speed-layer sizing.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Shard states per hour window. Purely a parallelism knob: views are
    /// shard-count-invariant by the monoid laws.
    pub shards: usize,
    /// How many trending event names to report.
    pub trending_k: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            trending_k: DEFAULT_TRENDING_K,
        }
    }
}

/// FNV-1a payload hash for shard routing (which shard a record lands in
/// never affects the merged view; it only has to be deterministic).
fn route_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Registry mirrors for the running view. Counters use `set_total` —
/// the streaming state stays authoritative, the registry can only show a
/// value the monoid computed.
struct StreamObs {
    records: Counter,
    events: Counter,
    malformed: Counter,
    hours_moved: Counter,
    distinct_users_est: Gauge,
    hours_open: Gauge,
    /// Per-hour windowed record counters, labeled by hour index.
    hour_records: BTreeMap<u64, Counter>,
    registry: Registry,
}

impl StreamObs {
    fn new(registry: &Registry) -> StreamObs {
        StreamObs {
            records: registry.counter("stream", "records"),
            events: registry.counter("stream", "events"),
            malformed: registry.counter("stream", "malformed"),
            hours_moved: registry.counter("stream", "hours_moved"),
            distinct_users_est: registry.gauge("stream", "distinct_users_est"),
            hours_open: registry.gauge("stream", "hours_open"),
            hour_records: BTreeMap::new(),
            registry: registry.clone(),
        }
    }
}

struct Inner {
    config: StreamConfig,
    /// Worker count for the per-hour shard fold. Serial by default; every
    /// setting produces identical shard states because routing fixes each
    /// shard's observe sequence before any worker runs.
    workers: uli_warehouse::Parallelism,
    /// Hour window → one [`StreamState`] per shard.
    hours: BTreeMap<u64, Vec<StreamState>>,
    /// Successful slides observed.
    hours_moved: u64,
    obs: Option<StreamObs>,
}

impl Inner {
    /// Deterministic fold: shards in index order, hours ascending.
    fn view(states: &[StreamState], trending_k: usize) -> StreamState {
        let mut out = StreamState::new(trending_k);
        for s in states {
            out.merge(s);
        }
        out
    }

    fn running(&self) -> StreamState {
        let mut out = StreamState::new(self.config.trending_k);
        for states in self.hours.values() {
            for s in states {
                out.merge(s);
            }
        }
        out
    }

    fn sync_obs(&mut self) {
        let running = self.running();
        let hours_open = self.hours.len();
        let hour_views: Vec<(u64, u64)> = self
            .hours
            .iter()
            .map(|(h, states)| (*h, states.iter().map(|s| s.records()).sum()))
            .collect();
        let Some(obs) = &mut self.obs else { return };
        obs.records.set_total(running.records());
        obs.events.set_total(running.events());
        obs.malformed.set_total(running.malformed());
        obs.hours_moved.set_total(self.hours_moved);
        obs.distinct_users_est
            .set(running.distinct_users_estimate().min(i64::MAX as u64) as i64);
        obs.hours_open.set(hours_open as i64);
        for (hour, records) in hour_views {
            let counter = obs.hour_records.entry(hour).or_insert_with(|| {
                obs.registry.counter_labeled(
                    "stream",
                    "hour_records",
                    &[("hour", &hour.to_string())],
                )
            });
            counter.set_total(records);
        }
    }
}

/// The speed layer handle. Cloneable; all clones share state, so one
/// clone can be boxed as the pipeline tap while another serves views.
#[derive(Clone)]
pub struct StreamAnalytics {
    inner: Arc<Mutex<Inner>>,
}

impl StreamAnalytics {
    /// A speed layer with no registry attached.
    pub fn new(config: StreamConfig) -> StreamAnalytics {
        Self::build(config, None)
    }

    /// A speed layer whose running and windowed views mirror into
    /// `stream/*` registry metrics on every delivered hour.
    pub fn with_obs(config: StreamConfig, registry: &Registry) -> StreamAnalytics {
        Self::build(config, Some(StreamObs::new(registry)))
    }

    fn build(config: StreamConfig, obs: Option<StreamObs>) -> StreamAnalytics {
        assert!(config.shards > 0, "at least one shard");
        StreamAnalytics {
            inner: Arc::new(Mutex::new(Inner {
                config,
                workers: uli_warehouse::Parallelism::serial(),
                hours: BTreeMap::new(),
                hours_moved: 0,
                obs,
            })),
        }
    }

    /// Folds each delivered hour's shards across `workers`. Shard routing
    /// stays serial (it fixes every shard's observe order), so the states
    /// — and therefore every view — are identical at any worker count.
    pub fn with_parallelism(self, workers: uli_warehouse::Parallelism) -> Self {
        self.inner.lock().workers = workers;
        self
    }

    /// A boxed tap sharing this handle's state, ready for
    /// [`uli_scribe::ScribePipeline::add_delivery_tap`].
    pub fn tap(&self) -> Box<dyn DeliveryTap> {
        Box::new(self.clone())
    }

    /// The windowed view for one hour, merged across shards; `None` if no
    /// slide has delivered that hour yet.
    pub fn hour_view(&self, hour_index: u64) -> Option<StreamState> {
        let inner = self.inner.lock();
        let k = inner.config.trending_k;
        inner.hours.get(&hour_index).map(|s| Inner::view(s, k))
    }

    /// The running (day-so-far) view: every delivered hour merged.
    pub fn running_view(&self) -> StreamState {
        self.inner.lock().running()
    }

    /// Hour windows with delivered data, ascending.
    pub fn hours(&self) -> Vec<u64> {
        self.inner.lock().hours.keys().copied().collect()
    }

    /// Raw per-shard partials for one hour (for merge-order tests).
    pub fn shard_states(&self, hour_index: u64) -> Vec<StreamState> {
        self.inner
            .lock()
            .hours
            .get(&hour_index)
            .cloned()
            .unwrap_or_default()
    }

    /// Successful slides observed.
    pub fn hours_moved(&self) -> u64 {
        self.inner.lock().hours_moved
    }
}

impl DeliveryTap for StreamAnalytics {
    fn hour_delivered(&mut self, partition: &HourlyPartition, payloads: &[Vec<u8>]) {
        let mut inner = self.inner.lock();
        let (shards, k) = (inner.config.shards, inner.config.trending_k);
        let workers = inner.workers;
        inner.hours_moved += 1;
        // An hour can slide with zero records (all its data was lost,
        // dropped, or never logged); no window opens for it.
        if !payloads.is_empty() {
            let states = inner
                .hours
                .entry(partition.hour_index())
                .or_insert_with(|| vec![StreamState::new(k); shards]);
            // Route serially: each shard's observe sequence is fixed here,
            // in payload order, before any worker touches a state.
            let mut routed: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for (i, payload) in payloads.iter().enumerate() {
                routed[(route_hash(payload) % shards as u64) as usize].push(i);
            }
            // Fold each shard independently — shards share nothing, so the
            // pool only changes wall-clock, never a state.
            let taken = std::mem::take(states);
            let work: Vec<(StreamState, Vec<usize>)> = taken.into_iter().zip(routed).collect();
            *states = uli_warehouse::ScanPool::new(workers).map(work, |_i, (mut state, idxs)| {
                for i in idxs {
                    state.observe(&payloads[i]);
                }
                state
            });
        }
        inner.sync_obs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::{ClientEvent, EventInitiator, EventName, Timestamp};
    use uli_thrift::record::ThriftRecord;

    fn payload(i: i64) -> Vec<u8> {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse("web:home:timeline:tweet:avatar:click").unwrap(),
            i % 13,
            format!("s{i}"),
            "10.0.0.1",
            Timestamp(i * 500),
        )
        .to_bytes()
    }

    fn deliver(analytics: &StreamAnalytics, hour: u64, payloads: &[Vec<u8>]) {
        let partition = HourlyPartition::from_hour_index("client_events", hour);
        let mut tap = analytics.tap();
        tap.hour_delivered(&partition, payloads);
    }

    #[test]
    fn views_are_shard_count_invariant() {
        let payloads: Vec<Vec<u8>> = (0..300).map(payload).collect();
        let views: Vec<StreamState> = [1usize, 4, 8]
            .iter()
            .map(|&shards| {
                let a = StreamAnalytics::new(StreamConfig {
                    shards,
                    trending_k: 3,
                });
                deliver(&a, 2, &payloads[..150]);
                deliver(&a, 3, &payloads[150..]);
                a.running_view()
            })
            .collect();
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
        assert_eq!(views[0].records(), 300);
    }

    #[test]
    fn parallel_shard_fold_matches_serial_exactly() {
        let payloads: Vec<Vec<u8>> = (0..400).map(payload).collect();
        let fold = |workers: usize| {
            let a = StreamAnalytics::new(StreamConfig {
                shards: 8,
                trending_k: 3,
            })
            .with_parallelism(uli_warehouse::Parallelism::fixed(workers));
            deliver(&a, 2, &payloads[..250]);
            deliver(&a, 3, &payloads[250..]);
            (a.shard_states(2), a.shard_states(3), a.running_view())
        };
        let serial = fold(1);
        for workers in [4, 8] {
            assert_eq!(
                serial,
                fold(workers),
                "per-shard states must be identical at {workers} workers"
            );
        }
    }

    #[test]
    fn windowed_and_running_views_agree() {
        let a = StreamAnalytics::new(StreamConfig::default());
        let p: Vec<Vec<u8>> = (0..100).map(payload).collect();
        deliver(&a, 5, &p[..40]);
        deliver(&a, 6, &p[40..]);
        assert_eq!(a.hours(), vec![5, 6]);
        let h5 = a.hour_view(5).unwrap();
        let h6 = a.hour_view(6).unwrap();
        assert_eq!(h5.records(), 40);
        assert_eq!(h6.records(), 60);
        let mut merged = h5.clone();
        merged.merge(&h6);
        assert_eq!(merged, a.running_view(), "running = fold of windows");
        assert!(a.hour_view(7).is_none());
    }

    #[test]
    fn obs_mirrors_running_and_windowed_views() {
        let registry = Registry::new();
        let a = StreamAnalytics::with_obs(StreamConfig::default(), &registry);
        let p: Vec<Vec<u8>> = (0..50).map(payload).collect();
        deliver(&a, 0, &p[..20]);
        deliver(&a, 1, &p[20..]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("stream/records"), Some(50));
        assert_eq!(snap.counter_value("stream/events"), Some(50));
        assert_eq!(snap.counter_value("stream/malformed"), Some(0));
        assert_eq!(snap.counter_value("stream/hours_moved"), Some(2));
        assert_eq!(snap.gauge_value("stream/hours_open"), Some(2));
        assert_eq!(
            snap.gauge_value("stream/distinct_users_est"),
            Some(a.running_view().distinct_users_estimate() as i64)
        );
        assert!(registry.duplicate_registrations().is_empty());
    }
}
