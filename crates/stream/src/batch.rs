//! The batch side of the lambda architecture, and the convergence check.
//!
//! [`BatchSummary`] computes the *exact* answers a batch job reads out of
//! the main warehouse: it scans the landed per-hour partitions (the
//! row-format files the default mover writes), decodes each record, and
//! folds exact counts — the ground truth the streaming sketches must
//! converge to. [`check_convergence`] then asserts the lambda invariant:
//! exact streaming aggregates equal batch byte-for-byte; sketch
//! aggregates land within their declared error bounds.

use std::collections::{BTreeMap, BTreeSet};

use uli_core::ClientEvent;
use uli_thrift::record::ThriftRecord;
use uli_warehouse::{HourlyPartition, Warehouse, WarehouseError};

use crate::state::StreamState;

/// Exact aggregates over a set of delivered warehouse hours.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Records scanned.
    pub records: u64,
    /// Records that decoded as client events.
    pub events: u64,
    /// Records that did not decode.
    pub malformed: u64,
    /// Exact per-name event counts.
    pub by_name: BTreeMap<String, u64>,
    /// Exact per-client event counts.
    pub by_client: BTreeMap<String, u64>,
    /// Exact distinct logged-in users.
    pub distinct_users: BTreeSet<i64>,
    /// Every payload size, for exact percentile checks. Sorted on demand.
    payload_sizes: Vec<u64>,
}

impl BatchSummary {
    /// Folds one record payload in — the same decode rules as
    /// [`StreamState::observe`], but with exact (holistic) state.
    pub fn observe(&mut self, payload: &[u8]) {
        self.records += 1;
        self.payload_sizes.push(payload.len() as u64);
        match ClientEvent::from_bytes(payload) {
            Ok(ev) => {
                self.events += 1;
                *self
                    .by_name
                    .entry(ev.name.as_str().to_string())
                    .or_insert(0) += 1;
                *self
                    .by_client
                    .entry(ev.name.client().to_string())
                    .or_insert(0) += 1;
                if ev.user_id != 0 {
                    self.distinct_users.insert(ev.user_id);
                }
            }
            Err(_) => self.malformed += 1,
        }
    }

    /// The exact value at quantile `q_bp` (basis points) of the payload
    /// sizes, or `None` when empty.
    pub fn payload_quantile_bp(&self, q_bp: u32) -> Option<u64> {
        if self.payload_sizes.is_empty() {
            return None;
        }
        let mut sorted = self.payload_sizes.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as u128 * q_bp as u128).div_ceil(10_000) as usize).max(1);
        Some(sorted[rank - 1])
    }

    /// Deterministic cost of the exact state a batch job would hold to
    /// answer the same questions: the name/client maps plus the distinct
    /// user set (8 bytes per id).
    pub fn exact_cost_bytes(&self) -> u64 {
        let map_cost =
            |m: &BTreeMap<String, u64>| -> u64 { m.keys().map(|k| k.len() as u64 + 8).sum() };
        map_cost(&self.by_name) + map_cost(&self.by_client) + 8 * self.distinct_users.len() as u64
    }
}

/// Scans one delivered hour out of the main warehouse (row-format landing,
/// the default mover output). A missing hour contributes nothing.
pub fn scan_hour(
    main: &Warehouse,
    category: &str,
    hour_index: u64,
    into: &mut BatchSummary,
) -> Result<(), WarehouseError> {
    let dir = HourlyPartition::from_hour_index(category, hour_index).main_dir();
    let files = match main.list_files_recursive(&dir) {
        Ok(f) => f,
        Err(WarehouseError::NotFound(_)) => return Ok(()),
        Err(e) => return Err(e),
    };
    for file in files {
        for record in main.open(&file)?.read_all()? {
            into.observe(&record);
        }
    }
    Ok(())
}

/// The batch answer over a span of delivered hours.
pub fn batch_reference(
    main: &Warehouse,
    category: &str,
    hours: impl IntoIterator<Item = u64>,
) -> Result<BatchSummary, WarehouseError> {
    let mut summary = BatchSummary::default();
    for hour in hours {
        scan_hour(main, category, hour, &mut summary)?;
    }
    Ok(summary)
}

/// Relative error the HLL estimate is held to. The sketch's standard
/// error at p=12 is ~1.6%; 5% is the ≈3σ bound the dataflow tests use.
pub const HLL_REL_BOUND: f64 = 0.05;

/// Quantiles (basis points) the percentile sketch is checked at.
pub const CHECKED_QUANTILES: [u32; 3] = [5000, 9500, 9900];

/// The verdict of one streaming-vs-batch comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Convergence {
    /// Exact aggregates (records, events, malformed, per-name and
    /// per-client counts) are byte-identical.
    pub exact_match: bool,
    /// `|hll − exact| / max(exact, 1)`.
    pub hll_rel_error: f64,
    /// HLL within [`HLL_REL_BOUND`] (with ±2 absolute slack for tiny sets,
    /// where linear counting rounds).
    pub hll_within_bound: bool,
    /// Largest over-count among the reported trending names.
    pub topk_max_over: u64,
    /// Every trending estimate within `[true, true + ε·total]`.
    pub topk_within_bound: bool,
    /// Every checked quantile within the sketch's upper-bound contract
    /// (never below exact, at most 25% above, +1 for integer rounding).
    pub percentile_within_bound: bool,
    /// The lambda invariant: all of the above hold.
    pub streaming_matches_batch: bool,
}

/// Checks the lambda invariant for one (streaming view, batch answer)
/// pair over the same delivered record set.
pub fn check_convergence(stream: &StreamState, batch: &BatchSummary) -> Convergence {
    let exact_match = stream.records() == batch.records
        && stream.events() == batch.events
        && stream.malformed() == batch.malformed
        && stream.by_name() == &batch.by_name
        && stream.by_client() == &batch.by_client;

    let exact_users = batch.distinct_users.len() as u64;
    let est_users = stream.distinct_users_estimate();
    let hll_rel_error = (est_users as f64 - exact_users as f64).abs() / (exact_users.max(1) as f64);
    let hll_within_bound = hll_rel_error <= HLL_REL_BOUND || est_users.abs_diff(exact_users) <= 2;

    let bound = stream.trending().cms().error_bound();
    let mut topk_max_over = 0u64;
    let mut topk_within_bound = true;
    for (name, est) in stream.trending().top() {
        let truth = std::str::from_utf8(&name)
            .ok()
            .and_then(|n| batch.by_name.get(n).copied())
            .unwrap_or(0);
        if est < truth || est > truth + bound {
            topk_within_bound = false;
        }
        topk_max_over = topk_max_over.max(est.saturating_sub(truth));
    }

    let mut percentile_within_bound = true;
    for q_bp in CHECKED_QUANTILES {
        match (
            stream.payload_bytes().quantile_bp(q_bp),
            batch.payload_quantile_bp(q_bp),
        ) {
            (Some(est), Some(exact)) => {
                if est < exact || est as f64 > exact as f64 * 1.25 + 1.0 {
                    percentile_within_bound = false;
                }
            }
            (None, None) => {}
            _ => percentile_within_bound = false,
        }
    }

    let streaming_matches_batch =
        exact_match && hll_within_bound && topk_within_bound && percentile_within_bound;
    Convergence {
        exact_match,
        hll_rel_error,
        hll_within_bound,
        topk_max_over,
        topk_within_bound,
        percentile_within_bound,
        streaming_matches_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::{EventInitiator, EventName, Timestamp};

    fn payload(i: i64) -> Vec<u8> {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(if i % 4 == 0 {
                "web:home:timeline:tweet:avatar:click"
            } else {
                "iphone:search:results:query:box:submit"
            })
            .unwrap(),
            i % 23,
            format!("s{i}"),
            "10.0.0.1",
            Timestamp(i * 100),
        )
        .to_bytes()
    }

    #[test]
    fn streaming_and_batch_converge_over_the_same_records() {
        let mut stream = StreamState::new(3);
        let mut batch = BatchSummary::default();
        for i in 0..500 {
            let p = payload(i);
            stream.observe(&p);
            batch.observe(&p);
        }
        let c = check_convergence(&stream, &batch);
        assert!(c.exact_match, "exact aggregates must be identical");
        assert!(c.hll_within_bound, "hll error {}", c.hll_rel_error);
        assert!(c.topk_within_bound);
        assert!(c.percentile_within_bound);
        assert!(c.streaming_matches_batch);
    }

    #[test]
    fn divergence_is_detected() {
        let mut stream = StreamState::new(3);
        let mut batch = BatchSummary::default();
        for i in 0..100 {
            let p = payload(i);
            stream.observe(&p);
            batch.observe(&p);
        }
        // One record the stream never saw: exactness must fail.
        batch.observe(&payload(1000));
        let c = check_convergence(&stream, &batch);
        assert!(!c.exact_match);
        assert!(!c.streaming_matches_batch);
    }
}
