//! The algebraic streaming state: one monoid, merged everywhere.
//!
//! [`StreamState`] is the Summingbird/Algebird idiom reduced to its core:
//! every aggregate the speed layer maintains is an element of a
//! commutative monoid, so shard partials merge in **any** grouping and
//! **any** order to the byte-identical final state a single serial pass
//! would produce. Exact aggregates (record/event counts, per-name and
//! per-client counts) use plain counter addition; approximate aggregates
//! ride the `uli-dataflow` sketches, whose merges carry the same
//! determinism contract as the dataflow engine's algebraic combiner-merge
//! (`AggState::merge`): merge-of-partials ≡ single-pass accumulation.
//!
//! That algebra is what the lambda invariant suite leans on — streaming
//! answers must equal batch answers over the delivered partition exactly
//! (for the exact fields) or within declared error bounds (for the
//! sketches), no matter how many workers, shards, or merge orders the
//! delivery schedule produced.

use std::collections::BTreeMap;

use uli_core::ClientEvent;
use uli_dataflow::sketch::{Hll, PercentileSketch, TopK};
use uli_dataflow::Value;
use uli_thrift::record::ThriftRecord;

/// How many trending event names the speed layer reports by default.
pub const DEFAULT_TRENDING_K: usize = 5;

/// Per-shard streaming aggregate state; a commutative monoid under
/// [`StreamState::merge`] with [`StreamState::new`] as identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamState {
    /// Every delivered record observed (well-formed or not).
    records: u64,
    /// Records that decoded as Thrift [`ClientEvent`]s.
    events: u64,
    /// Records that did not decode (counted, never dropped silently).
    malformed: u64,
    /// Exact event count per six-level event name.
    by_name: BTreeMap<String, u64>,
    /// Exact event count per client (the name's first component) — the
    /// BirdBrain-style per-client rollup.
    by_client: BTreeMap<String, u64>,
    /// Distinct logged-in users (`user_id != 0`), approximated.
    users: Hll,
    /// Trending event names: Count-Min-backed heavy hitters.
    trending: TopK,
    /// Delivered payload sizes, log-linear bucketed.
    payload_bytes: PercentileSketch,
}

impl StreamState {
    /// The monoid identity: an empty state reporting `trending_k` names.
    pub fn new(trending_k: usize) -> StreamState {
        StreamState {
            records: 0,
            events: 0,
            malformed: 0,
            by_name: BTreeMap::new(),
            by_client: BTreeMap::new(),
            users: Hll::new(),
            trending: TopK::new(trending_k),
            payload_bytes: PercentileSketch::new(),
        }
    }

    /// Folds one delivered record payload into the state.
    ///
    /// Every operation here commutes (counter add, register max, bucket
    /// add), so the order records arrive in — across shards, hours, or
    /// re-merged partials — never changes the final state.
    pub fn observe(&mut self, payload: &[u8]) {
        self.records += 1;
        self.payload_bytes.record(payload.len() as u64);
        match ClientEvent::from_bytes(payload) {
            Ok(ev) => {
                self.events += 1;
                *self
                    .by_name
                    .entry(ev.name.as_str().to_string())
                    .or_insert(0) += 1;
                *self
                    .by_client
                    .entry(ev.name.client().to_string())
                    .or_insert(0) += 1;
                if ev.user_id != 0 {
                    self.users.insert(&Value::Int(ev.user_id));
                }
                self.trending.insert(ev.name.as_str().as_bytes());
            }
            Err(_) => self.malformed += 1,
        }
    }

    /// Merges another shard's partial in. Commutative, associative, and
    /// identical to having observed both input streams serially — the
    /// same contract as the dataflow engine's combiner merge.
    pub fn merge(&mut self, other: &StreamState) {
        self.records += other.records;
        self.events += other.events;
        self.malformed += other.malformed;
        for (name, count) in &other.by_name {
            *self.by_name.entry(name.clone()).or_insert(0) += count;
        }
        for (client, count) in &other.by_client {
            *self.by_client.entry(client.clone()).or_insert(0) += count;
        }
        self.users.merge(&other.users);
        self.trending.merge(&other.trending);
        self.payload_bytes.merge(&other.payload_bytes);
    }

    /// Delivered records observed.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Well-formed client events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Records that failed to decode.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Exact per-name event counts.
    pub fn by_name(&self) -> &BTreeMap<String, u64> {
        &self.by_name
    }

    /// Exact per-client event counts.
    pub fn by_client(&self) -> &BTreeMap<String, u64> {
        &self.by_client
    }

    /// Estimated distinct logged-in users.
    pub fn distinct_users_estimate(&self) -> u64 {
        self.users.estimate()
    }

    /// The distinct-users sketch itself.
    pub fn users(&self) -> &Hll {
        &self.users
    }

    /// The trending-names tracker.
    pub fn trending(&self) -> &TopK {
        &self.trending
    }

    /// The payload-size percentile sketch.
    pub fn payload_bytes(&self) -> &PercentileSketch {
        &self.payload_bytes
    }

    /// Fixed memory cost of the sketch portion of this state (the exact
    /// maps are charged separately — they are bounded by the event-name
    /// dictionary, not the stream length).
    pub fn sketch_cost_bytes() -> u64 {
        Hll::cost_bytes() + TopK::cost_bytes() + PercentileSketch::cost_bytes()
    }

    /// Deterministic cost of the exact map portion: key bytes plus one
    /// u64 counter per entry.
    pub fn exact_cost_bytes(&self) -> u64 {
        let map_cost =
            |m: &BTreeMap<String, u64>| -> u64 { m.keys().map(|k| k.len() as u64 + 8).sum() };
        map_cost(&self.by_name) + map_cost(&self.by_client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uli_core::{EventInitiator, EventName, Timestamp};

    fn event(name: &str, user: i64, at: i64) -> Vec<u8> {
        ClientEvent::new(
            EventInitiator::CLIENT_USER,
            EventName::parse(name).unwrap(),
            user,
            format!("s{user}"),
            "10.0.0.1",
            Timestamp(at),
        )
        .to_bytes()
    }

    #[test]
    fn observe_counts_exactly_and_flags_malformed() {
        let mut s = StreamState::new(3);
        s.observe(&event("web:home:timeline:tweet:avatar:click", 7, 1000));
        s.observe(&event("web:home:timeline:tweet:avatar:click", 7, 2000));
        s.observe(&event("iphone:home:timeline:tweet:text:hover", 8, 3000));
        s.observe(b"not a thrift event");
        assert_eq!(s.records(), 4);
        assert_eq!(s.events(), 3);
        assert_eq!(s.malformed(), 1);
        assert_eq!(s.by_name()["web:home:timeline:tweet:avatar:click"], 2);
        assert_eq!(s.by_client()["web"], 2);
        assert_eq!(s.by_client()["iphone"], 1);
        assert_eq!(s.distinct_users_estimate(), 2);
        assert_eq!(
            s.trending().top()[0].0,
            b"web:home:timeline:tweet:avatar:click".to_vec()
        );
    }

    #[test]
    fn merge_equals_single_pass() {
        let payloads: Vec<Vec<u8>> = (0..200)
            .map(|i| {
                event(
                    if i % 3 == 0 {
                        "web:home:timeline:tweet:avatar:click"
                    } else {
                        "android:search:results:query:box:submit"
                    },
                    i % 17,
                    i * 1000,
                )
            })
            .collect();
        let mut whole = StreamState::new(4);
        for p in &payloads {
            whole.observe(p);
        }
        let mut a = StreamState::new(4);
        let mut b = StreamState::new(4);
        for (i, p) in payloads.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(p);
            } else {
                b.observe(p);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole, "merge must be commutative");
        // Identity law.
        let mut with_id = whole.clone();
        with_id.merge(&StreamState::new(4));
        assert_eq!(with_id, whole);
    }
}
