//! Metric primitives: counters, gauges, and log-linear histograms.
//!
//! All three are cheap `Arc`-backed handles: cloning a handle clones a
//! pointer, and every mutation is either a single atomic RMW (counters,
//! gauges) or one short mutex hold (histograms). The registry keeps one
//! clone of each handle for snapshots; instrumented components keep the
//! other and update it without ever touching the registry again.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A monotonically increasing event count.
///
/// `set_total` exists for *mirror* counters whose authoritative total is
/// maintained elsewhere (e.g. the Scribe pipeline report): storing the
/// source value on every sync makes divergence impossible by construction.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (private accounting).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the total — for mirroring a cumulative value computed by
    /// a single authoritative source, and for resets.
    pub fn set_total(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (buffer depth, queue length).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d`.
    pub fn adjust(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the level to `v` if it is higher than the current value — a
    /// monotone high-water mark. Used by the memory accounting: operators
    /// report their tracked buffer bytes and the gauge keeps the peak, so
    /// the exported value is deterministic no matter how many times (or in
    /// what interleaving) the watermark is reported.
    pub fn raise(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Total number of histogram buckets (see [`bucket_index`]).
pub const BUCKETS: u32 = 256;

/// Values below this are their own exact bucket; above, buckets are
/// log-linear: one power of two split into four linear sub-buckets.
const LINEAR_CUTOFF: u64 = 16;

/// Maps a sample to its bucket index.
///
/// The scheme is log-linear (HdrHistogram-style, coarse): values `0..16`
/// get exact singleton buckets; from 16 up, each power-of-two range
/// `[2^e, 2^(e+1))` is split into 4 equal linear sub-buckets. Every `u64`
/// maps to one of [`BUCKETS`] indexes, relative error is bounded by 25%,
/// and the mapping is monotonic.
pub fn bucket_index(v: u64) -> u32 {
    if v < LINEAR_CUTOFF {
        return v as u32;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - 2)) & 3) as u32;
    LINEAR_CUTOFF as u32 + (exp - 4) * 4 + sub
}

/// Inclusive `[lo, hi]` value range of a bucket index.
pub fn bucket_bounds(index: u32) -> (u64, u64) {
    if (index as u64) < LINEAR_CUTOFF {
        return (index as u64, index as u64);
    }
    let exp = (index - LINEAR_CUTOFF as u32) / 4 + 4;
    let sub = ((index - LINEAR_CUTOFF as u32) % 4) as u64;
    let width = 1u64 << (exp - 2);
    let lo = (1u64 << exp) + sub * width;
    (lo, lo.saturating_add(width - 1))
}

/// Aggregate state behind a histogram handle. Buckets are sparse: only
/// indexes that received samples are stored.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct HistData {
    /// bucket index → sample count, sorted by construction (BTreeMap).
    buckets: std::collections::BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// A log-linear-bucket histogram of `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    data: Arc<Mutex<HistData>>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let mut d = self.data.lock();
        *d.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        if d.count == 0 {
            d.min = v;
            d.max = v;
        } else {
            d.min = d.min.min(v);
            d.max = d.max.max(v);
        }
        d.count += 1;
        d.sum = d.sum.saturating_add(v);
    }

    /// A consistent copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let d = self.data.lock();
        HistogramSnapshot {
            buckets: d.buckets.iter().map(|(&b, &c)| (b, c)).collect(),
            count: d.count,
            sum: d.sum,
            min: d.min,
            max: d.max,
        }
    }
}

/// An immutable histogram snapshot. Merging snapshots is associative and
/// commutative (bucket counts add, min/max fold), so per-shard histograms
/// can be combined in any order with a bit-identical result — the property
/// the determinism suite asserts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, sample count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merges two snapshots into one, as if all samples of both had been
    /// recorded into a single histogram.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        if self.count == 0 {
            return other.clone();
        }
        if other.count == 0 {
            return self.clone();
        }
        let mut buckets: std::collections::BTreeMap<u32, u64> =
            self.buckets.iter().copied().collect();
        for &(b, c) in &other.buckets {
            *buckets.entry(b).or_insert(0) += c;
        }
        HistogramSnapshot {
            buckets: buckets.into_iter().collect(),
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_mirror() {
        let c = Counter::detached();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let clone = c.clone();
        clone.add(5);
        assert_eq!(c.get(), 15, "clones share the cell");
        c.set_total(100);
        assert_eq!(clone.get(), 100);
    }

    #[test]
    fn gauges_set_and_adjust() {
        let g = Gauge::detached();
        g.set(7);
        g.adjust(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_mapping_is_exact_below_cutoff() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as u32);
            assert_eq!(bucket_bounds(v as u32), (v, v));
        }
    }

    #[test]
    fn bucket_mapping_covers_u64() {
        assert!(bucket_index(u64::MAX) < BUCKETS);
        let mut prev = None;
        for e in 4..64 {
            for v in [1u64 << e, (1u64 << e) + 1, (1u64 << e) + (1u64 << (e - 1))] {
                let b = bucket_index(v);
                let (lo, hi) = bucket_bounds(b);
                assert!(lo <= v && v <= hi, "v={v} b={b} lo={lo} hi={hi}");
                if let Some(p) = prev {
                    assert!(b >= p, "monotonic");
                }
                prev = Some(b);
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::detached();
        for v in [0, 1, 1, 5, 100, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 100_107);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100_000);
        let total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    proptest! {
        /// Every value lands inside its bucket's bounds.
        #[test]
        fn bucket_bounds_contain_value(v in any::<u64>()) {
            let b = bucket_index(v);
            prop_assert!(b < BUCKETS);
            let (lo, hi) = bucket_bounds(b);
            prop_assert!(lo <= v && v <= hi);
        }

        /// Merging shard snapshots is associative and commutative: any
        /// merge order over any sharding of the samples yields the same
        /// snapshot as recording everything into one histogram.
        #[test]
        fn merge_is_associative_and_commutative(
            samples in prop::collection::vec(0u64..1_000_000, 0..60),
            cuts in prop::collection::vec(0usize..60, 0..4),
        ) {
            // Reference: one histogram over all samples.
            let reference = Histogram::detached();
            for &v in &samples {
                reference.record(v);
            }
            let reference = reference.snapshot();

            // Shard at the cut points.
            let mut bounds: Vec<usize> =
                cuts.iter().map(|&c| c.min(samples.len())).collect();
            bounds.push(0);
            bounds.push(samples.len());
            bounds.sort_unstable();
            let mut shards = Vec::new();
            for w in bounds.windows(2) {
                let h = Histogram::detached();
                for &v in &samples[w[0]..w[1]] {
                    h.record(v);
                }
                shards.push(h.snapshot());
            }

            // Left fold, right fold, and reversed order must all agree.
            let left = shards
                .iter()
                .fold(HistogramSnapshot::default(), |acc, s| acc.merged(s));
            let right = shards
                .iter()
                .rev()
                .fold(HistogramSnapshot::default(), |acc, s| s.merged(&acc));
            let reversed = shards
                .iter()
                .rev()
                .fold(HistogramSnapshot::default(), |acc, s| acc.merged(s));
            prop_assert_eq!(&left, &reference);
            prop_assert_eq!(&right, &reference);
            prop_assert_eq!(&reversed, &reference);
        }
    }
}
