//! Snapshot exporters: deterministic JSON and Prometheus text.
//!
//! Both formats are rendered by hand (no serde in the workspace) and both
//! are deterministic functions of the snapshot: metrics appear in
//! registration order, spans in open order, and every number is an
//! integer. That is what lets the CI obs gate diff a run's JSON snapshot
//! against a checked-in golden file byte for byte.

use std::fmt::Write as _;

use crate::registry::{Snapshot, SnapshotValue};
use crate::span::SpanNode;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v));
    }
    out.push('}');
    out
}

fn push_span(out: &mut String, node: &SpanNode, indent: usize) {
    let pad = "  ".repeat(indent);
    let r = &node.record;
    let _ = writeln!(out, "{pad}{{");
    let _ = writeln!(out, "{pad}  \"key\": \"{}\",", json_escape(&r.key()));
    let _ = writeln!(out, "{pad}  \"labels\": {},", json_labels(&r.labels));
    let _ = writeln!(out, "{pad}  \"start_tick\": {},", r.start_tick);
    let _ = writeln!(out, "{pad}  \"end_tick\": {},", r.end_tick);
    if node.children.is_empty() {
        let _ = writeln!(out, "{pad}  \"children\": []");
    } else {
        let _ = writeln!(out, "{pad}  \"children\": [");
        for (i, child) in node.children.iter().enumerate() {
            push_span(out, child, indent + 2);
            if i + 1 < node.children.len() {
                out.truncate(out.len() - 1);
                out.push_str(",\n");
            }
        }
        let _ = writeln!(out, "{pad}  ]");
    }
    let _ = writeln!(out, "{pad}}}");
}

/// Renders a snapshot as a deterministic, diff-stable JSON document
/// (schema `uli-obs-v1`). Metric order is registration order; every value
/// is an integer; there is no wall time anywhere.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"uli-obs-v1\",\n");
    out.push_str("  \"metrics\": [\n");
    for (i, (key, value)) in snap.metrics.iter().enumerate() {
        let comma = if i + 1 < snap.metrics.len() { "," } else { "" };
        let display = json_escape(&key.display());
        match value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "    {{\"kind\": \"counter\", \"key\": \"{display}\", \"labels\": {}, \"value\": {v}}}{comma}",
                    json_labels(&key.labels),
                );
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "    {{\"kind\": \"gauge\", \"key\": \"{display}\", \"labels\": {}, \"value\": {v}}}{comma}",
                    json_labels(&key.labels),
                );
            }
            SnapshotValue::Histogram(h) => {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .map(|&(b, c)| format!("[{b}, {c}]"))
                    .collect();
                let _ = writeln!(
                    out,
                    "    {{\"kind\": \"histogram\", \"key\": \"{display}\", \"labels\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}{comma}",
                    json_labels(&key.labels),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    buckets.join(", "),
                );
            }
        }
    }
    out.push_str("  ],\n");
    let dups: Vec<String> = snap
        .duplicates
        .iter()
        .map(|d| format!("\"{}\"", json_escape(d)))
        .collect();
    let _ = writeln!(out, "  \"duplicate_registrations\": [{}],", dups.join(", "));
    out.push_str("  \"spans\": [\n");
    for (i, root) in snap.forest.iter().enumerate() {
        push_span(&mut out, root, 2);
        if i + 1 < snap.forest.len() {
            out.truncate(out.len() - 1);
            out.push_str(",\n");
        }
    }
    out.push_str("  ],\n");
    out.push_str("  \"critical_path\": [\n");
    for (i, step) in snap.critical.iter().enumerate() {
        let comma = if i + 1 < snap.critical.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"key\": \"{}\", \"labels\": {}, \"ticks\": {}, \"self_ticks\": {}}}{comma}",
            json_escape(&step.key),
            json_labels(&step.labels),
            step.ticks,
            step.self_ticks,
        );
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Mangles `component/name` into a Prometheus metric name:
/// `uli_<component>_<name>` with every non-alphanumeric byte folded to `_`.
fn prom_name(component: &str, name: &str) -> String {
    let mut out = String::from("uli_");
    for c in component.chars().chain(Some('_')).chain(name.chars()) {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}=\"{}\"",
            k,
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Histograms are emitted as cumulative `_bucket` series (`le` = the
/// bucket's inclusive upper bound), plus `_sum` and `_count`, matching the
/// classic Prometheus histogram contract.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (key, value) in &snap.metrics {
        let name = prom_name(&key.component, &key.name);
        let labels = prom_labels(&key.labels);
        match value {
            SnapshotValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name}{labels} {v}");
            }
            SnapshotValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name}{labels} {v}");
            }
            SnapshotValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for &(b, c) in &h.buckets {
                    cumulative += c;
                    let (_, hi) = crate::metric::bucket_bounds(b);
                    let mut with_le: Vec<(String, String)> = key.labels.clone();
                    with_le.push(("le".to_string(), hi.to_string()));
                    let _ = writeln!(out, "{name}_bucket{} {cumulative}", prom_labels(&with_le));
                }
                let mut with_le: Vec<(String, String)> = key.labels.clone();
                with_le.push(("le".to_string(), "+Inf".to_string()));
                let _ = writeln!(out, "{name}_bucket{} {}", prom_labels(&with_le), h.count);
                let _ = writeln!(out, "{name}_sum{labels} {}", h.sum);
                let _ = writeln!(out, "{name}_count{labels} {}", h.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("scribe", "sent").add(42);
        r.gauge("scribe", "buffer_depth").set(-3);
        let h = r.histogram_labeled("oink", "attempts", &[("job", "sessions")]);
        h.record(1);
        h.record(1);
        h.record(20);
        {
            let _root = r.span_labeled("scribe", "hour", &[("hour", "6")]);
            let _leaf = r.span("scribe", "flush");
        }
        r
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let a = sample_registry().snapshot().to_json();
        let b = sample_registry().snapshot().to_json();
        assert_eq!(a, b, "same construction, byte-identical export");
        assert!(a.contains("\"schema\": \"uli-obs-v1\""));
        assert!(a.contains("\"scribe/sent\""));
        assert!(a.contains("\"value\": 42"));
        assert!(a.contains("\"value\": -3"));
        assert!(a.contains("\"kind\": \"histogram\""));
        assert!(a.contains("\"scribe/hour{hour=6}\"") || a.contains("\"scribe/hour\""));
        assert!(a.contains("\"critical_path\""));
        assert!(a.contains("\"duplicate_registrations\": []"));
    }

    #[test]
    fn prometheus_format_basics() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE uli_scribe_sent counter"));
        assert!(text.contains("uli_scribe_sent 42"));
        assert!(text.contains("uli_scribe_buffer_depth -3"));
        assert!(text.contains("uli_oink_attempts_count{job=\"sessions\"} 3"));
        assert!(text.contains("uli_oink_attempts_sum{job=\"sessions\"} 22"));
        assert!(text.contains("le=\"+Inf\"} 3"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("w", "lat");
        h.record(1);
        h.record(2);
        h.record(2);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("uli_w_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("uli_w_lat_bucket{le=\"2\"} 3"));
    }

    #[test]
    fn json_escaping_handles_special_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
