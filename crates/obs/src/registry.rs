//! The metrics registry: `(component, name, labels)` → handle.
//!
//! Registration happens once, from serial component-constructor code; the
//! registry records metrics in **registration order** and snapshots iterate
//! that order, which is what makes snapshots byte-identical across worker
//! counts. Registering a key that already exists returns the existing
//! handle *and* records the key in [`Registry::duplicate_registrations`] —
//! the CI obs gate fails a run whose snapshot shows any duplicates, because
//! two components sharing one counter by accident is exactly the aliasing
//! bug the unified registry exists to prevent.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::span::{
    build_forest, critical_path, render_critical_path, CriticalPathStep, SpanGuard, SpanNode,
    SpanRecord,
};

/// Identity of one metric.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Subsystem that owns the metric (`"warehouse"`, `"scribe"`, …).
    pub component: String,
    /// Metric name within the component (`"blocks_read"`).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// `component/name{k=v,…}` — the canonical display form.
    pub fn display(&self) -> String {
        let mut s = format!("{}/{}", self.component, self.name);
        if !self.labels.is_empty() {
            s.push('{');
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(k);
                s.push('=');
                s.push_str(v);
            }
            s.push('}');
        }
        s
    }
}

/// A registered handle, by kind.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(Counter),
    /// Point-in-time level.
    Gauge(Gauge),
    /// Log-linear histogram.
    Histogram(Histogram),
}

pub(crate) struct State {
    /// Metrics in registration order — the snapshot order.
    metrics: Vec<(MetricKey, MetricValue)>,
    /// Key → index into `metrics`.
    index: BTreeMap<MetricKey, usize>,
    /// Display keys that were registered more than once.
    duplicates: Vec<String>,
    /// All spans, in open order.
    spans: Vec<SpanRecord>,
    /// Indexes of currently open spans (innermost last).
    stack: Vec<usize>,
    /// The logical clock: +1 per span open and close.
    clock: u64,
}

/// Shared state behind a [`Registry`] and its span guards.
pub struct Inner {
    pub(crate) state: Mutex<State>,
}

impl Inner {
    pub(crate) fn close_span(&self, index: usize) {
        let mut s = self.state.lock();
        s.clock += 1;
        let tick = s.clock;
        if let Some(span) = s.spans.get_mut(index) {
            span.end_tick = tick;
        }
        // Guards drop LIFO under RAII; tolerate stray orders anyway.
        if let Some(pos) = s.stack.iter().rposition(|&i| i == index) {
            s.stack.remove(pos);
        }
    }
}

/// The unified registry. Clone-shareable; all clones see the same state.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    metrics: Vec::new(),
                    index: BTreeMap::new(),
                    duplicates: Vec::new(),
                    spans: Vec::new(),
                    stack: Vec::new(),
                    clock: 0,
                }),
            }),
        }
    }

    fn register(&self, key: MetricKey, make: impl FnOnce() -> MetricValue) -> MetricValue {
        let mut s = self.inner.state.lock();
        if let Some(&i) = s.index.get(&key) {
            let display = key.display();
            s.duplicates.push(display);
            return s.metrics[i].1.clone();
        }
        let value = make();
        let i = s.metrics.len();
        s.metrics.push((key.clone(), value.clone()));
        s.index.insert(key, i);
        value
    }

    /// Registers (or fetches) a counter. Re-registration is recorded as a
    /// duplicate — see the module docs.
    pub fn counter(&self, component: &str, name: &str) -> Counter {
        self.counter_labeled(component, name, &[])
    }

    /// Registers a counter with labels.
    pub fn counter_labeled(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(key_of(component, name, labels), || {
            MetricValue::Counter(Counter::detached())
        }) {
            MetricValue::Counter(c) => c,
            _ => panic!("{component}/{name} already registered with a different kind"),
        }
    }

    /// Registers a gauge.
    pub fn gauge(&self, component: &str, name: &str) -> Gauge {
        self.gauge_labeled(component, name, &[])
    }

    /// Registers a gauge with labels.
    pub fn gauge_labeled(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(key_of(component, name, labels), || {
            MetricValue::Gauge(Gauge::detached())
        }) {
            MetricValue::Gauge(g) => g,
            _ => panic!("{component}/{name} already registered with a different kind"),
        }
    }

    /// Registers a histogram.
    pub fn histogram(&self, component: &str, name: &str) -> Histogram {
        self.histogram_labeled(component, name, &[])
    }

    /// Registers a histogram with labels.
    pub fn histogram_labeled(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.register(key_of(component, name, labels), || {
            MetricValue::Histogram(Histogram::detached())
        }) {
            MetricValue::Histogram(h) => h,
            _ => panic!("{component}/{name} already registered with a different kind"),
        }
    }

    /// Display keys registered more than once (empty in a healthy run).
    pub fn duplicate_registrations(&self) -> Vec<String> {
        self.inner.state.lock().duplicates.clone()
    }

    /// Opens a span; the returned guard closes it on drop. Coordinator
    /// (serial) code only — see the crate docs' determinism rules.
    pub fn span(&self, component: &str, name: &str) -> SpanGuard {
        self.span_labeled::<&str>(component, name, &[])
    }

    /// Opens a labeled span.
    pub fn span_labeled<V: AsRef<str>>(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, V)],
    ) -> SpanGuard {
        let mut s = self.inner.state.lock();
        s.clock += 1;
        let start_tick = s.clock;
        let parent = s.stack.last().copied();
        let index = s.spans.len();
        s.spans.push(SpanRecord {
            component: component.to_string(),
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.as_ref().to_string()))
                .collect(),
            parent,
            start_tick,
            end_tick: 0,
        });
        s.stack.push(index);
        drop(s);
        SpanGuard {
            inner: Arc::clone(&self.inner),
            index,
        }
    }

    /// All spans recorded so far (open spans have `end_tick == 0`).
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.inner.state.lock().spans.clone()
    }

    /// A deterministic point-in-time snapshot of everything: metrics in
    /// registration order, the span forest, and the critical path.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.inner.state.lock();
        let metrics = s
            .metrics
            .iter()
            .map(|(key, value)| {
                let v = match value {
                    MetricValue::Counter(c) => SnapshotValue::Counter(c.get()),
                    MetricValue::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    MetricValue::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                };
                (key.clone(), v)
            })
            .collect();
        let spans = s.spans.clone();
        let duplicates = s.duplicates.clone();
        drop(s);
        let forest = build_forest(&spans);
        let critical = critical_path(&forest);
        Snapshot {
            metrics,
            duplicates,
            forest,
            critical,
        }
    }
}

fn key_of(component: &str, name: &str, labels: &[(&str, &str)]) -> MetricKey {
    MetricKey {
        component: component.to_string(),
        name: name.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    }
}

/// A metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// Everything the registry knew at one instant, in deterministic order.
pub struct Snapshot {
    /// Metrics in registration order.
    pub metrics: Vec<(MetricKey, SnapshotValue)>,
    /// Keys registered more than once.
    pub duplicates: Vec<String>,
    /// The span forest, roots in open order.
    pub forest: Vec<SpanNode>,
    /// The critical path, root first.
    pub critical: Vec<CriticalPathStep>,
}

impl Snapshot {
    /// Looks up a counter's total by display key (no labels).
    pub fn counter_value(&self, display: &str) -> Option<u64> {
        self.metrics.iter().find_map(|(k, v)| match v {
            SnapshotValue::Counter(c) if k.display() == display => Some(*c),
            _ => None,
        })
    }

    /// Looks up a gauge's level by display key.
    pub fn gauge_value(&self, display: &str) -> Option<i64> {
        self.metrics.iter().find_map(|(k, v)| match v {
            SnapshotValue::Gauge(g) if k.display() == display => Some(*g),
            _ => None,
        })
    }

    /// The critical-path report (one line per step, root first).
    pub fn critical_path_report(&self) -> String {
        render_critical_path(&self.critical)
    }

    /// The JSON export — see [`crate::export::to_json`].
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }

    /// The Prometheus text export — see [`crate::export::to_prometheus`].
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_is_snapshot_order() {
        let r = Registry::new();
        r.counter("b", "second");
        r.counter("a", "first_registered");
        r.gauge("z", "depth");
        let snap = r.snapshot();
        let keys: Vec<String> = snap.metrics.iter().map(|(k, _)| k.display()).collect();
        assert_eq!(keys, ["b/second", "a/first_registered", "z/depth"]);
    }

    #[test]
    fn duplicate_registration_shares_handle_and_is_recorded() {
        let r = Registry::new();
        let c1 = r.counter("w", "reads");
        c1.add(3);
        let c2 = r.counter("w", "reads");
        c2.add(4);
        assert_eq!(c1.get(), 7, "same underlying cell");
        assert_eq!(r.duplicate_registrations(), vec!["w/reads".to_string()]);
        let snap = r.snapshot();
        assert_eq!(snap.duplicates, vec!["w/reads".to_string()]);
        assert_eq!(snap.counter_value("w/reads"), Some(7));
    }

    #[test]
    fn memory_high_water_gauge_exports_and_keeps_snapshot_order() {
        // The bounded-memory work (spillable operators) reports its peak
        // tracked bytes through a raise-only gauge; this test pins both the
        // snapshot position (registration order) and the two export paths.
        let r = Registry::new();
        r.counter("dataflow", "spill_runs").add(3);
        let hw = r.gauge("dataflow", "memory_high_water_bytes");
        hw.raise(65_536);
        hw.raise(4_096); // lower watermark reports never regress the peak
        let snap = r.snapshot();
        let keys: Vec<String> = snap.metrics.iter().map(|(k, _)| k.display()).collect();
        assert_eq!(
            keys,
            ["dataflow/spill_runs", "dataflow/memory_high_water_bytes"]
        );
        assert_eq!(
            snap.gauge_value("dataflow/memory_high_water_bytes"),
            Some(65_536)
        );
        assert!(snap.to_json().contains("memory_high_water_bytes"));
        assert!(snap
            .to_prometheus()
            .contains("dataflow_memory_high_water_bytes 65536"));
    }

    #[test]
    fn labels_distinguish_metrics() {
        let r = Registry::new();
        let a = r.counter_labeled("d", "rows", &[("stage", "load")]);
        let b = r.counter_labeled("d", "rows", &[("stage", "filter")]);
        a.add(10);
        b.add(1);
        assert!(r.duplicate_registrations().is_empty());
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("d/rows{stage=load}"), Some(10));
        assert_eq!(snap.counter_value("d/rows{stage=filter}"), Some(1));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x", "y");
        r.gauge("x", "y");
    }

    #[test]
    fn snapshot_includes_critical_path() {
        let r = Registry::new();
        {
            let _root = r.span("root", "run");
            let _child = r.span("root", "inner");
        }
        let snap = r.snapshot();
        assert_eq!(snap.forest.len(), 1);
        assert_eq!(snap.critical.len(), 2);
        let report = snap.critical_path_report();
        assert!(report.starts_with("root/run"));
    }
}
