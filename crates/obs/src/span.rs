//! Causal span tracing on a deterministic logical clock.
//!
//! A span is one timed region of the run: a Scribe delivery step, one Oink
//! job attempt, one dataflow plan stage. Spans nest: the registry keeps an
//! open-span stack, so a span opened while another is open becomes its
//! child — exactly the Dapper parent/child model, except timestamps come
//! from a logical clock that advances by one tick at every span open and
//! close. No wall time ever enters a span, so for a fixed seed the whole
//! trace tree — structure and tick stamps — is byte-identical at any
//! worker count.
//!
//! Spans must be opened and closed from coordinator (serial) code only;
//! worker threads contribute to counters, never to the trace. Guards close
//! their span on drop, and RAII scoping keeps open/close properly nested.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::registry::Inner;

/// One finished (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Component that opened the span (e.g. `"scribe"`).
    pub component: String,
    /// Operation name (e.g. `"move_hour"`).
    pub name: String,
    /// Label pairs, in the order given at open.
    pub labels: Vec<(String, String)>,
    /// Index of the parent span in the trace, if nested.
    pub parent: Option<usize>,
    /// Logical tick at open.
    pub start_tick: u64,
    /// Logical tick at close (`0` while still open).
    pub end_tick: u64,
}

impl SpanRecord {
    /// `component/name` — the display key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.component, self.name)
    }

    /// Ticks between open and close (0 for still-open spans).
    pub fn duration(&self) -> u64 {
        self.end_tick.saturating_sub(self.start_tick)
    }
}

/// Closes its span on drop, stamping the end tick.
pub struct SpanGuard {
    pub(crate) inner: Arc<Inner>,
    pub(crate) index: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.inner.close_span(self.index);
    }
}

/// A span plus its children — one node of the reconstructed trace tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Index of this span in the flat record list.
    pub index: usize,
    /// The span itself.
    pub record: SpanRecord,
    /// Child nodes, in open order.
    pub children: Vec<SpanNode>,
}

/// One step of the critical path, root first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathStep {
    /// `component/name` of the span on the path.
    pub key: String,
    /// Label pairs of the span.
    pub labels: Vec<(String, String)>,
    /// Total ticks spent in the span (children included).
    pub ticks: u64,
    /// Ticks not covered by any child — the span's own work.
    pub self_ticks: u64,
}

/// Reconstructs the forest of trace trees from flat records.
pub fn build_forest(records: &[SpanRecord]) -> Vec<SpanNode> {
    // Children in open order; records are already in open order.
    let mut nodes: Vec<SpanNode> = records
        .iter()
        .enumerate()
        .map(|(index, r)| SpanNode {
            index,
            record: r.clone(),
            children: Vec::new(),
        })
        .collect();
    // Fold children into parents back-to-front so each node's children are
    // complete before the node itself moves into its own parent.
    let mut roots = Vec::new();
    for index in (0..nodes.len()).rev() {
        let node = std::mem::replace(
            &mut nodes[index],
            SpanNode {
                index,
                record: records[index].clone(),
                children: Vec::new(),
            },
        );
        match node.record.parent {
            Some(p) => nodes[p].children.insert(0, node),
            None => roots.insert(0, node),
        }
    }
    roots
}

/// The critical path of the forest: starting from the longest root, at
/// every level descend into the child with the largest total duration
/// (first wins ties, which is deterministic because children are ordered
/// by open tick).
pub fn critical_path(forest: &[SpanNode]) -> Vec<CriticalPathStep> {
    let mut path = Vec::new();
    let mut cursor = forest.iter().max_by_key(|n| {
        (n.record.duration(), {
            // Ties break toward the earliest root.
            usize::MAX - n.index
        })
    });
    while let Some(node) = cursor {
        let child_ticks: u64 = node.children.iter().map(|c| c.record.duration()).sum();
        path.push(CriticalPathStep {
            key: node.record.key(),
            labels: node.record.labels.clone(),
            ticks: node.record.duration(),
            self_ticks: node.record.duration().saturating_sub(child_ticks),
        });
        cursor = node
            .children
            .iter()
            .max_by_key(|c| (c.record.duration(), usize::MAX - c.index));
    }
    path
}

/// Renders the critical path as one line per step, root first:
/// `scribe/move_hour{hour=3} ticks=12 self=2`.
pub fn render_critical_path(path: &[CriticalPathStep]) -> String {
    let mut out = String::new();
    for (depth, step) in path.iter().enumerate() {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&step.key);
        if !step.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in step.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}={v}");
            }
            out.push('}');
        }
        let _ = writeln!(out, " ticks={} self={}", step.ticks, step.self_ticks);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn spans_nest_and_stamp_logical_ticks() {
        let r = Registry::new();
        {
            let _outer = r.span("test", "outer");
            {
                let _inner = r.span("test", "inner");
            }
            let _sibling = r.span("test", "sibling");
        }
        let spans = r.finished_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        // Clock ticks once per open and close: outer spans 1..6.
        assert_eq!(spans[0].start_tick, 1);
        assert_eq!(spans[1].start_tick, 2);
        assert_eq!(spans[1].end_tick, 3);
        assert_eq!(spans[2].start_tick, 4);
        assert_eq!(spans[0].end_tick, 6);
    }

    #[test]
    fn forest_and_critical_path() {
        let r = Registry::new();
        {
            let _a = r.span("t", "a");
            {
                let _short = r.span("t", "short");
            }
            {
                let _long = r.span("t", "long");
                {
                    let _leaf = r.span_labeled("t", "leaf", &[("k", "v")]);
                }
                {
                    let _leaf2 = r.span("t", "leaf2");
                }
            }
        }
        let forest = build_forest(&r.finished_spans());
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].children.len(), 2);
        let path = critical_path(&forest);
        let keys: Vec<&str> = path.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(keys, ["t/a", "t/long", "t/leaf"]);
        assert!(path[0].ticks > path[1].ticks);
        let rendered = render_critical_path(&path);
        assert!(rendered.contains("t/long"));
        assert!(rendered.contains("{k=v}") || rendered.contains("t/leaf"));
    }

    #[test]
    fn empty_forest_has_empty_path() {
        assert!(critical_path(&[]).is_empty());
        assert_eq!(render_critical_path(&[]), "");
    }
}
