//! `uli-obs` — the unified observability subsystem.
//!
//! The paper's operational thesis is that Twitter could only run its logging
//! stack because every stage was measurable: Scribe category volumes (§2,
//! Table 1), Oink's execution traces ("when a job began, how long it lasted,
//! whether it completed successfully", §3), and per-query cost accounting
//! (§5). Before this crate the reproduction's telemetry was fragmented into
//! ad-hoc structs (`ScanStats` in `uli-warehouse`, `JobStats` in
//! `uli-dataflow`, `ExecutionTrace` in `uli-oink`) that could not be
//! correlated across one run. `uli-obs` is the single substrate they now
//! share, in the style of the Dapper/X-Trace lineage the paper cites:
//!
//! * a [`Registry`] of **counters, gauges, and log-linear-bucket
//!   histograms**, keyed by `(component, name, labels)`. Handles are plain
//!   atomics after registration, so the hot path is lock-free; snapshots
//!   iterate in **registration order**, which is fixed by the (serial)
//!   attach code, so for a given seed the snapshot is **byte-identical at
//!   any `--workers` count**;
//! * a **span tracer** ([`span`]) whose parent/child structure comes from a
//!   deterministic logical clock — two ticks per span, no wall time — with
//!   a per-run trace tree and a critical-path report;
//! * **exporters** ([`export`]): Prometheus text format and a JSON snapshot
//!   suitable for writing next to the `BENCH_*.json` artifacts.
//!
//! # Determinism rules
//!
//! 1. Register every metric from serial code (component constructors), never
//!    from worker threads: registration order is snapshot order.
//! 2. Increment counters from anywhere — totals are order-invariant — but
//!    open spans and record histogram samples only from coordinator code,
//!    so tick stamps and sample order cannot race.
//! 3. Snapshots contain no wall-clock time and no floats, so asserted
//!    output (golden files, cross-worker byte-equality) stays stable across
//!    machines.
//!
//! # Example
//!
//! ```
//! use uli_obs::Registry;
//!
//! let registry = Registry::new();
//! let sent = registry.counter("scribe", "sent");
//! {
//!     let _hour = registry.span("scribe", "hour");
//!     sent.add(42);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter_value("scribe/sent"), Some(42));
//! assert!(snap.to_json().contains("\"scribe/sent\""));
//! assert!(snap.to_prometheus().contains("uli_scribe_sent 42"));
//! ```

pub mod export;
pub mod metric;
pub mod registry;
pub mod span;

pub use metric::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{MetricKey, MetricValue, Registry, Snapshot};
pub use span::{CriticalPathStep, SpanGuard, SpanNode, SpanRecord};
