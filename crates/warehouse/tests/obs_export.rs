//! Exporter-path regression for counter aliasing.
//!
//! Extends the PR 2 invariant — a block the pruner skips counts as
//! `blocks_skipped`, never as a `cache_hit`, even when a previous scan left
//! its payload in the block cache — all the way through the registry-backed
//! counters and both export formats. If skip/hit accounting ever aliases
//! again, the exported snapshot (what CI golden-diffs) catches it, not just
//! the in-crate `ScanStats` view.

use uli_obs::Registry;
use uli_warehouse::{Warehouse, WhPath};

fn p(s: &str) -> WhPath {
    WhPath::parse(s).unwrap()
}

fn write_records(wh: &Warehouse, path: &str, n: usize) {
    let mut w = wh.create(&p(path)).unwrap();
    for i in 0..n {
        w.append_record(format!("record-{i:06}").as_bytes());
    }
    w.finish().unwrap();
}

#[test]
fn pruned_cached_block_exports_skip_not_hit() {
    let registry = Registry::new();
    let wh = Warehouse::with_config_obs(128, 1 << 20, &registry, "warehouse");
    write_records(&wh, "/f", 100);

    let fb = wh.open_blocks(&p("/f")).unwrap();
    assert!(fb.block_count() >= 2);
    for idx in 0..fb.block_count() {
        fb.read_block(idx).unwrap(); // warm the cache
    }
    wh.reset_stats();

    let fb2 = wh.open_blocks(&p("/f")).unwrap();
    fb2.skip_block(0); // pruned despite being cached
    fb2.read_block(1).unwrap();

    // The ScanStats view and the registry view are the same atomics.
    let stats = wh.stats();
    assert_eq!(stats.blocks_skipped, 1);
    assert_eq!(stats.cache_hits, 1);

    let snap = registry.snapshot();
    assert_eq!(snap.counter_value("warehouse/blocks_skipped"), Some(1));
    assert_eq!(snap.counter_value("warehouse/cache_hits"), Some(1));
    assert_eq!(snap.counter_value("warehouse/blocks_read"), Some(1));
    assert_eq!(
        snap.counter_value("warehouse/compressed_bytes_read"),
        Some(0)
    );
    assert!(snap.duplicates.is_empty());

    // And the serialized exports say the same thing.
    let json = snap.to_json();
    assert!(json.contains(
        "{\"kind\": \"counter\", \"key\": \"warehouse/blocks_skipped\", \"labels\": {}, \"value\": 1}"
    ));
    assert!(json.contains(
        "{\"kind\": \"counter\", \"key\": \"warehouse/cache_hits\", \"labels\": {}, \"value\": 1}"
    ));
    let prom = snap.to_prometheus();
    assert!(prom.contains("uli_warehouse_blocks_skipped 1\n"));
    assert!(prom.contains("uli_warehouse_cache_hits 1\n"));
}

#[test]
fn detached_and_registered_warehouses_agree() {
    // The same scan against a plain warehouse and an obs-attached one must
    // produce identical ScanStats: attaching observability never changes
    // accounting.
    let run = |wh: Warehouse| {
        write_records(&wh, "/f", 64);
        let fb = wh.open_blocks(&p("/f")).unwrap();
        for idx in 0..fb.block_count() {
            fb.read_block(idx).unwrap();
        }
        let fb2 = wh.open_blocks(&p("/f")).unwrap();
        fb2.skip_block(0);
        wh.stats()
    };
    let plain = run(Warehouse::with_block_capacity(128));
    let registry = Registry::new();
    let observed = run(Warehouse::with_config_obs(
        128,
        1 << 20,
        &registry,
        "warehouse",
    ));
    assert_eq!(plain, observed);
}
