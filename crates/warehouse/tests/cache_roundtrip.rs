//! Property test: reading a file through a warm decompressed-block cache
//! yields exactly the bytes a cold (or cache-disabled) read yields, for
//! arbitrary record contents, sizes, and block capacities.

use proptest::prelude::*;
use uli_warehouse::{Warehouse, WhPath};

fn write_all(wh: &Warehouse, path: &WhPath, records: &[Vec<u8>]) {
    let mut w = wh.create(path).unwrap();
    for r in records {
        w.append_record(r);
    }
    w.finish().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_reads_equal_uncached_reads(
        records in prop::collection::vec(prop::collection::vec(0u8..=255, 0..200), 0..80),
        block_capacity in 16usize..2048,
        cache_capacity in prop::sample::select(vec![0usize, 64, 4096, 1 << 20]),
    ) {
        let path = WhPath::parse("/logs/f").unwrap();

        // Reference: cache disabled, original read path.
        let plain = Warehouse::with_config(block_capacity, 0);
        write_all(&plain, &path, &records);
        let expected = plain.open(&path).unwrap().read_all().unwrap();
        prop_assert_eq!(&expected, &records);

        // Same data through a cache: first read populates, second hits.
        let cached = Warehouse::with_config(block_capacity, cache_capacity);
        write_all(&cached, &path, &records);
        let cold = cached.open(&path).unwrap().read_all().unwrap();
        let warm = cached.open(&path).unwrap().read_all().unwrap();
        prop_assert_eq!(&cold, &expected);
        prop_assert_eq!(&warm, &expected);

        // Block-granular access agrees with the streaming reader too.
        let fb = cached.open_blocks(&path).unwrap();
        let mut via_blocks = Vec::new();
        for idx in 0..fb.block_count() {
            via_blocks.extend(fb.read_block(idx).unwrap());
        }
        prop_assert_eq!(&via_blocks, &expected);

        // Logical accounting must not depend on cache hits.
        let s = cached.stats();
        prop_assert_eq!(s.cache_hits + s.cache_misses, s.blocks_read);
    }
}
