//! Concurrency stress tests: `Warehouse::open()` hammered from 8 threads
//! while scan counters are read, plus exactness of the counters under
//! contention. These pin down the "stats are safe and lossless under
//! concurrent scans" contract the parallel execute layer relies on.

use std::thread;

use uli_warehouse::{Warehouse, WhPath};

const THREADS: usize = 8;
const READS_PER_THREAD: usize = 25;

fn p(s: &str) -> WhPath {
    WhPath::parse(s).unwrap()
}

fn write_file(wh: &Warehouse, path: &str, records: usize) {
    let mut w = wh.create(&p(path)).unwrap();
    for i in 0..records {
        w.append_record(format!("record-{i:06}").as_bytes());
    }
    w.finish().unwrap();
}

/// With the cache disabled, every read does identical work, so the global
/// counters after 8 threads × 25 reads must equal exactly 200× the cost of
/// one read. Any lost update would show up here.
#[test]
fn stats_are_exact_under_8_thread_contention() {
    let wh = Warehouse::with_config(256, 0);
    write_file(&wh, "/logs/f", 120);

    // Cost of one full read, measured serially.
    wh.reset_stats();
    wh.open(&p("/logs/f")).unwrap().read_all().unwrap();
    let one = wh.stats();
    assert!(one.blocks_read >= 2, "want a multi-block file");

    wh.reset_stats();
    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..READS_PER_THREAD {
                    let r = wh.open(&p("/logs/f")).unwrap();
                    assert_eq!(r.read_all().unwrap().len(), 120);
                }
            });
        }
    });
    let n = (THREADS * READS_PER_THREAD) as u64;
    let total = wh.stats();
    assert_eq!(total.files_opened, n * one.files_opened);
    assert_eq!(total.blocks_read, n * one.blocks_read);
    assert_eq!(total.records_read, n * one.records_read);
    assert_eq!(total.compressed_bytes_read, n * one.compressed_bytes_read);
    assert_eq!(
        total.uncompressed_bytes_read,
        n * one.uncompressed_bytes_read
    );
    assert_eq!(total.cache_hits, 0);
}

/// With the cache on, which reader warms each block is racy, but the
/// logical-read counters must still be exact and hits+misses must account
/// for every block decompression decision.
#[test]
fn cached_reads_keep_logical_counters_exact() {
    let wh = Warehouse::with_block_capacity(256);
    write_file(&wh, "/logs/f", 120);
    wh.reset_stats();

    let uncompressed_once = {
        let r = wh.open(&p("/logs/f")).unwrap();
        r.read_all().unwrap();
        let s = wh.stats();
        wh.reset_stats();
        wh.clear_cache();
        s.uncompressed_bytes_read
    };

    thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..READS_PER_THREAD {
                    let r = wh.open(&p("/logs/f")).unwrap();
                    assert_eq!(r.read_all().unwrap().len(), 120);
                }
            });
        }
    });
    let n = (THREADS * READS_PER_THREAD) as u64;
    let total = wh.stats();
    assert_eq!(total.files_opened, n);
    assert_eq!(total.records_read, n * 120);
    assert_eq!(total.uncompressed_bytes_read, n * uncompressed_once);
    assert_eq!(
        total.cache_hits + total.cache_misses,
        total.blocks_read,
        "every block read is either a hit or a miss"
    );
    assert!(total.cache_hits > 0, "hot file should produce hits");
}

/// `stats()` can be called while scans are in flight: snapshots must be
/// monotonically non-decreasing (no torn or lost counts) and `reset_stats()`
/// must leave later deltas consistent.
#[test]
fn snapshots_are_monotonic_while_scanning() {
    let wh = Warehouse::with_block_capacity(256);
    write_file(&wh, "/logs/f", 120);
    wh.reset_stats();

    thread::scope(|s| {
        for _ in 0..THREADS - 1 {
            s.spawn(|| {
                for _ in 0..READS_PER_THREAD {
                    wh.open(&p("/logs/f")).unwrap().read_all().unwrap();
                }
            });
        }
        s.spawn(|| {
            let mut last = wh.stats();
            for _ in 0..1000 {
                let now = wh.stats();
                assert!(now.records_read >= last.records_read);
                assert!(now.blocks_read >= last.blocks_read);
                assert!(now.files_opened >= last.files_opened);
                last = now;
            }
        });
    });
    let expected = ((THREADS - 1) * READS_PER_THREAD * 120) as u64;
    assert_eq!(wh.stats().records_read, expected);
    wh.reset_stats();
    assert_eq!(wh.stats().records_read, 0);
}
