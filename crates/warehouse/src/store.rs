//! The warehouse filesystem: directories, files, atomic renames, outages.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cache::{BlockCache, CacheStats, DEFAULT_CACHE_CAPACITY};
use crate::error::{WarehouseError, WarehouseResult};
use crate::file::{FileBlocks, FileData, RecordFileReader, RecordFileWriter};
use crate::path::WhPath;
use crate::stats::{ScanStats, StatsCell};
use crate::zone::ZoneMap;

pub use crate::file::FileMeta;

/// Default block capacity: small enough that laptop-scale datasets still
/// span many blocks (the unit of simulated map tasks).
pub const DEFAULT_BLOCK_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
enum Entry {
    Dir,
    File(Arc<FileData>),
}

#[derive(Default)]
struct Tree {
    /// Path string → entry. The root `/` is an implicit directory.
    entries: BTreeMap<String, Entry>,
}

impl Tree {
    fn is_dir(&self, path: &WhPath) -> bool {
        path.as_str() == "/" || matches!(self.entries.get(path.as_str()), Some(Entry::Dir))
    }

    fn mkdirs(&mut self, dir: &WhPath) -> WarehouseResult<()> {
        for anc in dir.ancestors().into_iter().chain([dir.clone()]) {
            if anc.as_str() == "/" {
                continue;
            }
            match self.entries.get(anc.as_str()) {
                None => {
                    self.entries.insert(anc.as_str().to_string(), Entry::Dir);
                }
                Some(Entry::Dir) => {}
                Some(Entry::File(_)) => {
                    return Err(WarehouseError::NotADirectory(anc.as_str().to_string()))
                }
            }
        }
        Ok(())
    }

    /// Immediate children of `dir` as (name, is_dir).
    fn list(&self, dir: &WhPath) -> WarehouseResult<Vec<(String, bool)>> {
        if !self.is_dir(dir) {
            return Err(if self.entries.contains_key(dir.as_str()) {
                WarehouseError::NotADirectory(dir.as_str().to_string())
            } else {
                WarehouseError::NotFound(dir.as_str().to_string())
            });
        }
        let prefix = if dir.as_str() == "/" {
            "/".to_string()
        } else {
            format!("{}/", dir.as_str())
        };
        let mut out = Vec::new();
        // Range over the borrowed prefix — no per-call key clone.
        for (path, entry) in self.subtree(&prefix) {
            let rest = &path[prefix.len()..];
            if rest.is_empty() || rest.contains('/') {
                continue;
            }
            out.push((rest.to_string(), matches!(entry, Entry::Dir)));
        }
        Ok(out)
    }

    /// Entries whose path starts with `prefix`, walked in order without
    /// cloning the prefix into an owned range bound.
    fn subtree<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a String, &'a Entry)> {
        use std::ops::Bound;
        self.entries
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(p, _)| p.starts_with(prefix))
    }
}

/// The in-process warehouse. Clone-shareable.
#[derive(Clone)]
pub struct Warehouse {
    tree: Arc<Mutex<Tree>>,
    stats: Arc<StatsCell>,
    cache: Arc<BlockCache>,
    available: Arc<AtomicBool>,
    block_capacity: usize,
    compressors: Arc<crate::compress::CompressorPool>,
}

impl Default for Warehouse {
    fn default() -> Self {
        Self::with_block_capacity(DEFAULT_BLOCK_CAPACITY)
    }
}

impl Warehouse {
    /// Creates a warehouse with the default block capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a warehouse whose blocks seal at `block_capacity` uncompressed
    /// bytes, with the default decompressed-block cache.
    pub fn with_block_capacity(block_capacity: usize) -> Self {
        Self::with_config(block_capacity, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a warehouse with explicit block and block-cache capacities
    /// (both in bytes). `cache_capacity == 0` disables block caching, which
    /// restores the exact pre-cache read accounting.
    pub fn with_config(block_capacity: usize, cache_capacity: usize) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        Warehouse {
            tree: Arc::new(Mutex::new(Tree::default())),
            stats: Arc::new(StatsCell::default()),
            cache: Arc::new(BlockCache::new(cache_capacity)),
            available: Arc::new(AtomicBool::new(true)),
            block_capacity,
            compressors: Arc::new(crate::compress::CompressorPool::new()),
        }
    }

    /// Creates a warehouse (default capacities) whose scan counters are
    /// registered in `registry` under the `warehouse` component, so the
    /// exported snapshot and [`Warehouse::stats`] read the same atomics.
    pub fn new_with_obs(registry: &uli_obs::Registry) -> Self {
        Self::with_config_obs(
            DEFAULT_BLOCK_CAPACITY,
            DEFAULT_CACHE_CAPACITY,
            registry,
            "warehouse",
        )
    }

    /// [`Warehouse::with_config`] plus registry-backed scan counters under
    /// `component`. Distinct warehouses sharing a registry must use distinct
    /// component names, or the duplicate-registration gate trips.
    pub fn with_config_obs(
        block_capacity: usize,
        cache_capacity: usize,
        registry: &uli_obs::Registry,
        component: &str,
    ) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        Warehouse {
            tree: Arc::new(Mutex::new(Tree::default())),
            stats: Arc::new(StatsCell::registered(registry, component)),
            cache: Arc::new(BlockCache::new(cache_capacity)),
            available: Arc::new(AtomicBool::new(true)),
            block_capacity,
            compressors: Arc::new(crate::compress::CompressorPool::new()),
        }
    }

    /// The configured block capacity in bytes.
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    /// The shared pool of reusable block compressors backing this warehouse's
    /// writers. Exposed so callers (and tests) can observe reuse.
    pub fn compressor_pool(&self) -> &Arc<crate::compress::CompressorPool> {
        &self.compressors
    }

    /// Counters and occupancy of the shared decompressed-block cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached block (for cold-cache measurements).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Simulates an HDFS outage (`false`) or recovery (`true`). While
    /// unavailable, writes fail with [`WarehouseError::Unavailable`]; the
    /// Scribe aggregators react by buffering to local disk.
    pub fn set_available(&self, available: bool) {
        self.available.store(available, Ordering::SeqCst);
    }

    /// Whether the warehouse currently accepts writes.
    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::SeqCst)
    }

    fn check_available(&self) -> WarehouseResult<()> {
        if self.is_available() {
            Ok(())
        } else {
            Err(WarehouseError::Unavailable)
        }
    }

    /// Cumulative scan statistics.
    pub fn stats(&self) -> ScanStats {
        self.stats.snapshot()
    }

    /// Zeroes the scan statistics.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Creates all directories down to `dir`.
    pub fn mkdirs(&self, dir: &WhPath) -> WarehouseResult<()> {
        self.check_available()?;
        self.tree.lock().mkdirs(dir)
    }

    /// True if a file or directory exists at `path`.
    pub fn exists(&self, path: &WhPath) -> bool {
        path.as_str() == "/" || self.tree.lock().entries.contains_key(path.as_str())
    }

    /// True if `path` is a directory.
    pub fn is_dir(&self, path: &WhPath) -> bool {
        self.tree.lock().is_dir(path)
    }

    /// Lists the immediate children of `dir` as `(name, is_dir)`, sorted.
    pub fn list(&self, dir: &WhPath) -> WarehouseResult<Vec<(String, bool)>> {
        self.tree.lock().list(dir)
    }

    /// All file paths under `dir`, recursively, sorted.
    pub fn list_files_recursive(&self, dir: &WhPath) -> WarehouseResult<Vec<WhPath>> {
        let tree = self.tree.lock();
        if !tree.is_dir(dir) {
            return Err(WarehouseError::NotFound(dir.as_str().to_string()));
        }
        let prefix = if dir.as_str() == "/" {
            "/".to_string()
        } else {
            format!("{}/", dir.as_str())
        };
        Ok(tree
            .subtree(&prefix)
            .filter(|(_, e)| matches!(e, Entry::File(_)))
            .map(|(p, _)| WhPath::parse(p).expect("stored paths are valid"))
            .collect())
    }

    /// Opens a writer for a new file. Parent directories are created
    /// implicitly (as HDFS does). The file becomes visible atomically when
    /// `finish` is called.
    pub fn create(&self, path: &WhPath) -> WarehouseResult<RecordFileWriter> {
        self.check_available()?;
        {
            let mut tree = self.tree.lock();
            if tree.entries.contains_key(path.as_str()) {
                return Err(WarehouseError::AlreadyExists(path.as_str().to_string()));
            }
            if let Some(parent) = path.parent() {
                tree.mkdirs(&parent)?;
            }
        }
        let tree = Arc::clone(&self.tree);
        let available = Arc::clone(&self.available);
        let path_str = path.as_str().to_string();
        let install = Box::new(move |data: FileData| {
            if !available.load(Ordering::SeqCst) {
                return Err(WarehouseError::Unavailable);
            }
            let mut tree = tree.lock();
            if tree.entries.contains_key(&path_str) {
                return Err(WarehouseError::AlreadyExists(path_str.clone()));
            }
            tree.entries
                .insert(path_str.clone(), Entry::File(Arc::new(data)));
            Ok(())
        });
        Ok(RecordFileWriter {
            install,
            block_capacity: self.block_capacity,
            compressor: self.compressors.checkout(),
            recycle: Some(Arc::clone(&self.compressors)),
            pending_records: 0,
            pending_zone: ZoneMap::empty(),
            pending_annotated: 0,
            data: FileData::default(),
        })
    }

    pub(crate) fn file_data(&self, path: &WhPath) -> WarehouseResult<Arc<FileData>> {
        let tree = self.tree.lock();
        match tree.entries.get(path.as_str()) {
            Some(Entry::File(data)) => Ok(Arc::clone(data)),
            Some(Entry::Dir) => Err(WarehouseError::NotAFile(path.as_str().to_string())),
            None => Err(WarehouseError::NotFound(path.as_str().to_string())),
        }
    }

    /// Opens a record reader over `path`.
    pub fn open(&self, path: &WhPath) -> WarehouseResult<RecordFileReader> {
        let data = self.file_data(path)?;
        Ok(RecordFileReader::new(
            path.as_str().to_string(),
            data,
            Arc::clone(&self.stats),
            Arc::clone(&self.cache),
            None,
        ))
    }

    /// Opens a random-access block view of `path` for parallel scans; see
    /// [`FileBlocks`].
    pub fn open_blocks(&self, path: &WhPath) -> WarehouseResult<FileBlocks> {
        let data = self.file_data(path)?;
        Ok(FileBlocks::new(
            path.as_str().to_string(),
            data,
            Arc::clone(&self.stats),
            Arc::clone(&self.cache),
        ))
    }

    /// Deterministic FNV-1a digest of a file's physical representation:
    /// every block's compressed bytes plus block boundaries and record
    /// counts. Equal digests mean byte-identical block streams — the check
    /// the parallel mover's identity tests fold across worker counts,
    /// without exposing raw bytes or charging scan counters.
    pub fn file_digest(&self, path: &WhPath) -> WarehouseResult<u64> {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let data = self.file_data(path)?;
        let mut h = OFFSET;
        let fold_u64 = |h: u64, v: u64| -> u64 {
            let mut h = h;
            for b in v.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            h
        };
        for block in &data.blocks {
            h = fold_u64(h, block.compressed.len() as u64);
            h = fold_u64(h, block.uncompressed_len);
            h = fold_u64(h, block.num_records);
            for &b in &block.compressed {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        Ok(h)
    }

    /// Summary metadata of a file.
    pub fn file_meta(&self, path: &WhPath) -> WarehouseResult<FileMeta> {
        Ok(self.file_data(path)?.meta())
    }

    /// Sum of file metadata under a directory: the sizing input for the
    /// simulated cost model.
    pub fn dir_meta(&self, dir: &WhPath) -> WarehouseResult<FileMeta> {
        let mut total = FileMeta {
            blocks: 0,
            records: 0,
            compressed_bytes: 0,
            uncompressed_bytes: 0,
        };
        for f in self.list_files_recursive(dir)? {
            let m = self.file_meta(&f)?;
            total.blocks += m.blocks;
            total.records += m.records;
            total.compressed_bytes += m.compressed_bytes;
            total.uncompressed_bytes += m.uncompressed_bytes;
        }
        Ok(total)
    }

    /// Deletes a file.
    pub fn delete_file(&self, path: &WhPath) -> WarehouseResult<()> {
        self.check_available()?;
        let mut tree = self.tree.lock();
        match tree.entries.get(path.as_str()) {
            Some(Entry::File(_)) => {
                tree.entries.remove(path.as_str());
                Ok(())
            }
            Some(Entry::Dir) => Err(WarehouseError::NotAFile(path.as_str().to_string())),
            None => Err(WarehouseError::NotFound(path.as_str().to_string())),
        }
    }

    /// Fault hook: flips a byte in one stored block of `path` *without*
    /// updating its checksum, so the next read fails verification with
    /// [`WarehouseError::ChecksumMismatch`]. Clears the block cache — a
    /// cached payload would otherwise keep serving the pre-corruption bytes.
    pub fn corrupt_block(&self, path: &WhPath, block: usize) -> WarehouseResult<()> {
        self.mutate_block(path, block, |b| match b.compressed.first_mut() {
            Some(byte) => *byte ^= 0xFF,
            None => b.compressed.push(0xFF),
        })
    }

    /// Fault hook: drops the tail half of one block's compressed bytes and
    /// recomputes the checksum — a half-written file whose checksum was
    /// nonetheless persisted. Reads pass verification but fail to
    /// decompress, surfacing [`WarehouseError::Corrupt`].
    pub fn truncate_block(&self, path: &WhPath, block: usize) -> WarehouseResult<()> {
        self.mutate_block(path, block, |b| {
            let keep = b.compressed.len() / 2;
            b.compressed.truncate(keep);
            b.checksum = crate::file::fnv1a64(&b.compressed);
        })
    }

    fn mutate_block(
        &self,
        path: &WhPath,
        block: usize,
        f: impl FnOnce(&mut crate::file::Block),
    ) -> WarehouseResult<()> {
        let data = self.file_data(path)?;
        let mut copy = FileData::clone(&data);
        let b = copy
            .blocks
            .get_mut(block)
            .ok_or(WarehouseError::Corrupt("no such block to damage"))?;
        f(b);
        self.tree
            .lock()
            .entries
            .insert(path.as_str().to_string(), Entry::File(Arc::new(copy)));
        self.cache.clear();
        Ok(())
    }

    /// Recursively deletes a directory and everything under it.
    pub fn delete_dir(&self, dir: &WhPath) -> WarehouseResult<()> {
        self.check_available()?;
        let mut tree = self.tree.lock();
        if !tree.is_dir(dir) {
            return Err(WarehouseError::NotFound(dir.as_str().to_string()));
        }
        if dir.as_str() == "/" {
            tree.entries.clear();
            return Ok(());
        }
        let prefix = format!("{}/", dir.as_str());
        tree.entries
            .retain(|p, _| p != dir.as_str() && !p.starts_with(&prefix));
        Ok(())
    }

    /// Atomically renames a file or directory subtree. This is the primitive
    /// behind the log mover's "atomic slide": assemble under `/staging/...`,
    /// then rename into `/logs/...` so readers never observe a partial hour.
    pub fn rename(&self, src: &WhPath, dst: &WhPath) -> WarehouseResult<()> {
        self.check_available()?;
        if dst.starts_with(src) && dst != src {
            return Err(WarehouseError::BadPath(format!(
                "cannot rename {src} into its own subtree {dst}"
            )));
        }
        let mut tree = self.tree.lock();
        if !tree.entries.contains_key(src.as_str()) {
            return Err(WarehouseError::NotFound(src.as_str().to_string()));
        }
        if tree.entries.contains_key(dst.as_str()) {
            return Err(WarehouseError::AlreadyExists(dst.as_str().to_string()));
        }
        if let Some(parent) = dst.parent() {
            tree.mkdirs(&parent)?;
        }
        // Collect the subtree, then reinsert under the new prefix.
        let src_prefix = format!("{}/", src.as_str());
        let moved: Vec<String> = tree
            .entries
            .keys()
            .filter(|p| *p == src.as_str() || p.starts_with(&src_prefix))
            .cloned()
            .collect();
        for old in moved {
            let entry = tree.entries.remove(&old).expect("key listed above");
            let new = format!("{}{}", dst.as_str(), &old[src.as_str().len()..]);
            tree.entries.insert(new, entry);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> WhPath {
        WhPath::parse(s).unwrap()
    }

    fn write_records(wh: &Warehouse, path: &str, n: usize) -> FileMeta {
        let mut w = wh.create(&p(path)).unwrap();
        for i in 0..n {
            w.append_record(format!("record-{i:06}").as_bytes());
        }
        w.finish().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let wh = Warehouse::with_block_capacity(256);
        let meta = write_records(&wh, "/logs/ce/f1", 100);
        assert_eq!(meta.records, 100);
        assert!(meta.blocks > 1, "small blocks should force multiple blocks");
        let mut r = wh.open(&p("/logs/ce/f1")).unwrap();
        let mut n = 0;
        while let Some(rec) = r.next_record().unwrap() {
            assert_eq!(rec, format!("record-{n:06}").as_bytes());
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn stats_account_reads() {
        let wh = Warehouse::with_block_capacity(256);
        write_records(&wh, "/f", 50);
        wh.reset_stats();
        let r = wh.open(&p("/f")).unwrap();
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 50);
        let s = wh.stats();
        assert_eq!(s.files_opened, 1);
        assert_eq!(s.records_read, 50);
        assert!(s.blocks_read >= 1);
        assert!(s.uncompressed_bytes_read >= s.compressed_bytes_read / 4);
    }

    #[test]
    fn empty_file_reads_empty() {
        let wh = Warehouse::new();
        let w = wh.create(&p("/empty")).unwrap();
        let meta = w.finish().unwrap();
        assert_eq!(meta.records, 0);
        assert_eq!(meta.blocks, 0);
        let mut r = wh.open(&p("/empty")).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn create_is_invisible_until_finish() {
        let wh = Warehouse::new();
        let mut w = wh.create(&p("/f")).unwrap();
        w.append_record(b"x");
        assert!(!wh.exists(&p("/f")), "file must not be visible mid-write");
        w.finish().unwrap();
        assert!(wh.exists(&p("/f")));
    }

    #[test]
    fn duplicate_create_rejected() {
        let wh = Warehouse::new();
        write_records(&wh, "/f", 1);
        assert!(matches!(
            wh.create(&p("/f")),
            Err(WarehouseError::AlreadyExists(_))
        ));
    }

    #[test]
    fn list_and_recursive_listing() {
        let wh = Warehouse::new();
        write_records(&wh, "/logs/a/f1", 1);
        write_records(&wh, "/logs/a/f2", 1);
        write_records(&wh, "/logs/b/g", 1);
        let top = wh.list(&p("/logs")).unwrap();
        assert_eq!(top, vec![("a".to_string(), true), ("b".to_string(), true)]);
        let files = wh.list_files_recursive(&p("/logs")).unwrap();
        let names: Vec<&str> = files.iter().map(|f| f.as_str()).collect();
        assert_eq!(names, vec!["/logs/a/f1", "/logs/a/f2", "/logs/b/g"]);
    }

    #[test]
    fn rename_moves_subtree_atomically() {
        let wh = Warehouse::new();
        write_records(&wh, "/staging/ce/2012/08/21/14/part-0", 10);
        wh.rename(
            &p("/staging/ce/2012/08/21/14"),
            &p("/logs/ce/2012/08/21/14"),
        )
        .unwrap();
        assert!(!wh.exists(&p("/staging/ce/2012/08/21/14/part-0")));
        let r = wh.open(&p("/logs/ce/2012/08/21/14/part-0")).unwrap();
        assert_eq!(r.read_all().unwrap().len(), 10);
    }

    #[test]
    fn rename_refuses_existing_destination_and_cycles() {
        let wh = Warehouse::new();
        write_records(&wh, "/a/f", 1);
        write_records(&wh, "/b/f", 1);
        assert!(matches!(
            wh.rename(&p("/a"), &p("/b")),
            Err(WarehouseError::AlreadyExists(_))
        ));
        assert!(matches!(
            wh.rename(&p("/a"), &p("/a/inside")),
            Err(WarehouseError::BadPath(_))
        ));
        assert!(matches!(
            wh.rename(&p("/missing"), &p("/c")),
            Err(WarehouseError::NotFound(_))
        ));
    }

    #[test]
    fn outage_blocks_writes_but_not_reads() {
        let wh = Warehouse::new();
        write_records(&wh, "/f", 5);
        wh.set_available(false);
        assert!(matches!(
            wh.create(&p("/g")),
            Err(WarehouseError::Unavailable)
        ));
        assert!(matches!(
            wh.rename(&p("/f"), &p("/h")),
            Err(WarehouseError::Unavailable)
        ));
        // Reads still work (NameNode metadata served from cache, so to speak).
        assert_eq!(wh.open(&p("/f")).unwrap().read_all().unwrap().len(), 5);
        wh.set_available(true);
        write_records(&wh, "/g", 1);
    }

    #[test]
    fn outage_during_finish_fails_install() {
        let wh = Warehouse::new();
        let mut w = wh.create(&p("/f")).unwrap();
        w.append_record(b"x");
        wh.set_available(false);
        assert!(matches!(w.finish(), Err(WarehouseError::Unavailable)));
        assert!(!wh.exists(&p("/f")));
    }

    #[test]
    fn delete_file_and_dir() {
        let wh = Warehouse::new();
        write_records(&wh, "/d/f1", 1);
        write_records(&wh, "/d/sub/f2", 1);
        wh.delete_file(&p("/d/f1")).unwrap();
        assert!(!wh.exists(&p("/d/f1")));
        wh.delete_dir(&p("/d")).unwrap();
        assert!(!wh.exists(&p("/d")));
        assert!(matches!(
            wh.delete_file(&p("/d/sub/f2")),
            Err(WarehouseError::NotFound(_))
        ));
    }

    #[test]
    fn dir_meta_sums_files() {
        let wh = Warehouse::with_block_capacity(128);
        write_records(&wh, "/d/f1", 20);
        write_records(&wh, "/d/f2", 30);
        let m = wh.dir_meta(&p("/d")).unwrap();
        assert_eq!(m.records, 50);
        assert!(m.blocks >= 2);
        assert!(m.compressed_bytes > 0);
    }

    #[test]
    fn block_filter_skips_blocks() {
        let wh = Warehouse::with_block_capacity(128);
        write_records(&wh, "/f", 100);
        let meta = wh.file_meta(&p("/f")).unwrap();
        assert!(meta.blocks >= 4);
        wh.reset_stats();
        let mut r = wh.open(&p("/f")).unwrap();
        let mut keep = vec![false; meta.blocks as usize];
        keep[0] = true;
        r.set_block_filter(keep);
        let got = r.read_all().unwrap();
        assert!(!got.is_empty() && (got.len() as u64) < meta.records);
        let s = wh.stats();
        assert_eq!(s.blocks_read, 1);
        assert_eq!(s.blocks_skipped, meta.blocks - 1);
    }

    #[test]
    fn repeated_reads_hit_the_block_cache() {
        let wh = Warehouse::with_block_capacity(256);
        write_records(&wh, "/f", 100);
        let cold = wh.open(&p("/f")).unwrap().read_all().unwrap();
        let s1 = wh.stats();
        assert_eq!(s1.cache_hits, 0, "first read is all misses");
        assert_eq!(s1.cache_misses, s1.blocks_read);
        wh.reset_stats();
        let warm = wh.open(&p("/f")).unwrap().read_all().unwrap();
        assert_eq!(cold, warm, "cached reads must be byte-identical");
        let s2 = wh.stats();
        assert_eq!(s2.cache_hits, s2.blocks_read, "second read is all hits");
        assert_eq!(s2.compressed_bytes_read, 0, "hits cost no disk bytes");
        assert_eq!(s2.uncompressed_bytes_read, s1.uncompressed_bytes_read);
        assert_eq!(s2.records_read, 100);
        assert!(wh.cache_stats().hit_rate() > 0.0);
    }

    #[test]
    fn zero_capacity_cache_restores_old_accounting() {
        let wh = Warehouse::with_config(256, 0);
        write_records(&wh, "/f", 100);
        let first = {
            wh.reset_stats();
            wh.open(&p("/f")).unwrap().read_all().unwrap();
            wh.stats()
        };
        wh.reset_stats();
        wh.open(&p("/f")).unwrap().read_all().unwrap();
        let second = wh.stats();
        assert_eq!(second.cache_hits, 0);
        assert_eq!(second.compressed_bytes_read, first.compressed_bytes_read);
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let wh = Warehouse::with_block_capacity(256);
        write_records(&wh, "/f", 50);
        wh.open(&p("/f")).unwrap().read_all().unwrap();
        wh.clear_cache();
        wh.reset_stats();
        wh.open(&p("/f")).unwrap().read_all().unwrap();
        assert_eq!(wh.stats().cache_hits, 0);
    }

    #[test]
    fn file_blocks_matches_streaming_reader() {
        let wh = Warehouse::with_block_capacity(256);
        write_records(&wh, "/f", 100);
        let streamed = wh.open(&p("/f")).unwrap().read_all().unwrap();
        let wh2 = Warehouse::with_block_capacity(256);
        write_records(&wh2, "/f", 100);
        let fb = wh2.open_blocks(&p("/f")).unwrap();
        let mut via_blocks = Vec::new();
        for idx in 0..fb.block_count() {
            let recs = fb.read_block(idx).unwrap();
            assert_eq!(recs.len() as u64, fb.block_records(idx));
            via_blocks.extend(recs);
        }
        assert_eq!(streamed, via_blocks);
        let local = fb.local_stats();
        assert_eq!(local.files_opened, 1);
        assert_eq!(local.records_read, 100);
        assert_eq!(local.blocks_read as usize, fb.block_count());
        // Handle-local and global counters agree when nothing else scans.
        assert_eq!(local.records_read, wh2.stats().records_read);
    }

    #[test]
    fn file_blocks_skip_and_errors() {
        let wh = Warehouse::with_block_capacity(128);
        write_records(&wh, "/f", 100);
        let fb = wh.open_blocks(&p("/f")).unwrap();
        assert!(fb.block_count() >= 4);
        wh.reset_stats();
        fb.read_block(0).unwrap();
        for idx in 1..fb.block_count() {
            fb.skip_block(idx);
        }
        let s = wh.stats();
        assert_eq!(s.blocks_read, 1);
        assert_eq!(s.blocks_skipped as usize, fb.block_count() - 1);
        assert!(fb.read_block(fb.block_count()).is_err(), "out of range");
        assert!(matches!(
            wh.open_blocks(&p("/missing")),
            Err(WarehouseError::NotFound(_))
        ));
    }

    #[test]
    fn annotated_writes_produce_zone_maps() {
        use crate::zone::{tag_hash, ZoneMapPruner};
        let wh = Warehouse::with_block_capacity(128);
        let mut w = wh.create(&p("/f")).unwrap();
        for i in 0..100i64 {
            let tag = if i % 2 == 0 { b"even".as_ref() } else { b"odd" };
            w.append_record_annotated(format!("record-{i:06}").as_bytes(), 1000 + i, tag_hash(tag));
        }
        let meta = w.finish().unwrap();
        assert!(meta.blocks >= 4);
        let fb = wh.open_blocks(&p("/f")).unwrap();
        let mut covered = 0u64;
        let mut prev_max = i64::MIN;
        for idx in 0..fb.block_count() {
            let z = fb.zone_map(idx).expect("every block fully annotated");
            assert_eq!(z.records, fb.block_records(idx));
            assert!(z.min_key >= 1000 && z.max_key <= 1099);
            assert!(z.min_key > prev_max, "keys written in order");
            prev_max = z.max_key;
            assert!(z.may_contain_tag(tag_hash(b"even")));
            covered += z.records;
        }
        assert_eq!(covered, 100);
        // A pruner over a disjoint key range skips every block.
        let pruner = ZoneMapPruner {
            min_key: Some(5000),
            ..Default::default()
        };
        assert!((0..fb.block_count()).all(|i| !pruner.keep(fb.zone_map(i).as_ref())));
    }

    #[test]
    fn mixed_appends_leave_block_unmapped() {
        let wh = Warehouse::with_block_capacity(1 << 20);
        let mut w = wh.create(&p("/f")).unwrap();
        w.append_record_annotated(b"a", 1, 2);
        w.append_record(b"b"); // plain append poisons the pending zone
        w.finish().unwrap();
        let fb = wh.open_blocks(&p("/f")).unwrap();
        assert_eq!(fb.block_count(), 1);
        assert!(fb.zone_map(0).is_none(), "partial annotation → no zone map");
    }

    #[test]
    fn pruned_block_in_cache_counts_skip_not_hit() {
        // Regression: a block that the pruner skips must count once as
        // blocks_skipped and never as a cache hit, even when a previous scan
        // left its payload in the block cache.
        let wh = Warehouse::with_block_capacity(128);
        write_records(&wh, "/f", 100);
        let fb = wh.open_blocks(&p("/f")).unwrap();
        assert!(fb.block_count() >= 2);
        for idx in 0..fb.block_count() {
            fb.read_block(idx).unwrap(); // warm the cache
        }
        wh.reset_stats();
        let fb2 = wh.open_blocks(&p("/f")).unwrap();
        fb2.skip_block(0); // pruned despite being cached
        fb2.read_block(1).unwrap();
        let s = wh.stats();
        assert_eq!(s.blocks_skipped, 1, "skip counted exactly once");
        assert_eq!(s.cache_hits, 1, "only the genuinely read block hits");
        assert_eq!(s.blocks_read, 1);
        assert_eq!(s.compressed_bytes_read, 0);
        let local = fb2.local_stats();
        assert_eq!(local.blocks_skipped, 1);
        assert_eq!(local.cache_hits, 1);
    }

    #[test]
    fn streaming_seal_matches_one_shot_compression() {
        // The tentpole byte-identity claim at the file layer: blocks sealed
        // by the incremental compressor must equal buffer-then-compress.
        let wh = Warehouse::with_block_capacity(256);
        let records: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("record-{i:06}").into_bytes())
            .collect();
        let mut w = wh.create(&p("/f")).unwrap();
        for r in &records {
            w.append_record(r);
        }
        w.finish().unwrap();
        // Replay the framing through the old path: buffer varint-prefixed
        // records, compress whole blocks in one shot at the same threshold.
        let mut pending: Vec<u8> = Vec::new();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for r in &records {
            assert!(r.len() < 128, "single-byte varint assumed below");
            pending.push(r.len() as u8);
            pending.extend_from_slice(r);
            if pending.len() >= 256 {
                expected.push(crate::compress::compress(&pending));
                pending.clear();
            }
        }
        if !pending.is_empty() {
            expected.push(crate::compress::compress(&pending));
        }
        let data = wh.file_data(&p("/f")).unwrap();
        let got: Vec<Vec<u8>> = data.blocks.iter().map(|b| b.compressed.clone()).collect();
        assert_eq!(got, expected, "streamed blocks diverged from one-shot");
    }

    #[test]
    fn visitor_read_path_charges_no_alloc_bytes() {
        // Regression for the eager-path allocation churn: read_block pays
        // alloc_bytes for every copied record; for_each_record pays none.
        let wh = Warehouse::with_block_capacity(256);
        write_records(&wh, "/f", 100);
        let fb = wh.open_blocks(&p("/f")).unwrap();
        wh.reset_stats();
        let mut eager: Vec<Vec<u8>> = Vec::new();
        for idx in 0..fb.block_count() {
            eager.extend(fb.read_block(idx).unwrap());
        }
        let payload: u64 = eager.iter().map(|r| r.len() as u64).sum();
        assert!(payload > 0);
        assert_eq!(
            wh.stats().alloc_bytes,
            payload,
            "eager path must charge every copied byte"
        );
        wh.reset_stats();
        let mut i = 0usize;
        for idx in 0..fb.block_count() {
            fb.for_each_record(idx, |rec| {
                assert_eq!(rec, eager[i].as_slice(), "visitor must see the same bytes");
                i += 1;
            })
            .unwrap();
        }
        assert_eq!(i, 100);
        let s = wh.stats();
        assert_eq!(s.alloc_bytes, 0, "borrowing visitor must charge no allocs");
        assert_eq!(s.records_read, 100);
        // read_all charges too (the streaming reader copies per record).
        wh.reset_stats();
        wh.open(&p("/f")).unwrap().read_all().unwrap();
        assert_eq!(wh.stats().alloc_bytes, payload);
    }

    #[test]
    fn open_missing_or_dir_errors() {
        let wh = Warehouse::new();
        wh.mkdirs(&p("/d")).unwrap();
        assert!(matches!(
            wh.open(&p("/nope")),
            Err(WarehouseError::NotFound(_))
        ));
        assert!(matches!(
            wh.open(&p("/d")),
            Err(WarehouseError::NotAFile(_))
        ));
    }

    #[test]
    fn mkdirs_conflicts_with_file() {
        let wh = Warehouse::new();
        write_records(&wh, "/x", 1);
        assert!(matches!(
            wh.mkdirs(&p("/x/y")),
            Err(WarehouseError::NotADirectory(_))
        ));
    }
}
