//! An RCFile-like columnar layout (§4.2's rejected design alternative).
//!
//! "To mitigate that issue, we could adopt a columnar storage format such
//! as RCFile. However, this solution primarily focuses on reducing the
//! running time of each map task; without modification, RCFiles would not
//! reduce the number of mappers that are spawned for large analytics jobs."
//!
//! The format mirrors RCFile's row-group-of-column-chunks shape: rows are
//! buffered into groups; within a group each column's cells are
//! concatenated and compressed separately, so a projection decompresses
//! only the columns it needs. A row group is the unit of scan (≈ one map
//! task), which is exactly why the paper's mapper-count problem survives
//! this layout — the experiment the `layout` ablation reproduces.
//!
//! Two generations coexist:
//!
//! * the original headerless v1 ([`ColumnarWriter`]/[`ColumnarReader`]),
//!   kept for the layout ablation's like-for-like comparison; and
//! * the **v2 warehouse format** ([`ColumnarFileWriter`]/[`ColumnarFile`]),
//!   the default landing layout. A v2 file opens with a header block
//!   (`ULCF` magic, a format-version byte, the column count, and an
//!   optional embedded dictionary for one designated column), and then maps
//!   each row group onto exactly one block so group-level zone maps and
//!   skipping reuse the ordinary block machinery. Dictionary-column cells
//!   store a small integer code instead of the value; values missing from
//!   the dictionary fall back to inline bytes, so the file never refuses a
//!   row. Decompressed column chunks are cached content-addressed in the
//!   shared block cache, keyed by chunk checksum + decoded length.

use std::collections::HashMap;
use std::sync::Arc;

use crate::cache::BlockKey;
use crate::compress;
use crate::error::{WarehouseError, WarehouseResult};
use crate::file::{fnv1a64, FileBlocks};
use crate::path::WhPath;
use crate::stats::ScanStats;
use crate::store::Warehouse;
use crate::zone::ZoneMap;

/// Magic prefix of a v2 columnar file's header record.
pub const COLUMNAR_MAGIC: [u8; 4] = *b"ULCF";

/// The format version this build writes and reads.
pub const COLUMNAR_VERSION: u8 = 2;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Writes rows of `columns` byte-cells into row groups of `rows_per_group`.
pub struct ColumnarWriter {
    inner: crate::file::RecordFileWriter,
    columns: usize,
    rows_per_group: usize,
    /// Per-column buffered cells (length-prefixed concatenation).
    buffers: Vec<Vec<u8>>,
    buffered_rows: usize,
}

impl ColumnarWriter {
    /// Opens a columnar file at `path`.
    pub fn create(
        warehouse: &Warehouse,
        path: &WhPath,
        columns: usize,
        rows_per_group: usize,
    ) -> WarehouseResult<ColumnarWriter> {
        assert!(columns > 0 && rows_per_group > 0);
        Ok(ColumnarWriter {
            inner: warehouse.create(path)?,
            columns,
            rows_per_group,
            buffers: vec![Vec::new(); columns],
            buffered_rows: 0,
        })
    }

    /// Appends one row; `cells.len()` must equal the column count.
    pub fn append_row(&mut self, cells: &[&[u8]]) {
        assert_eq!(cells.len(), self.columns, "row width");
        for (buf, cell) in self.buffers.iter_mut().zip(cells) {
            write_varint(buf, cell.len() as u64);
            buf.extend_from_slice(cell);
        }
        self.buffered_rows += 1;
        if self.buffered_rows >= self.rows_per_group {
            self.seal_group();
        }
    }

    fn seal_group(&mut self) {
        if self.buffered_rows == 0 {
            return;
        }
        // Row group record: varint row count, varint column count, then per
        // column varint compressed length + compressed cells.
        let mut record = Vec::new();
        write_varint(&mut record, self.buffered_rows as u64);
        write_varint(&mut record, self.columns as u64);
        for buf in &mut self.buffers {
            let compressed = compress::compress(buf);
            write_varint(&mut record, compressed.len() as u64);
            record.extend_from_slice(&compressed);
            buf.clear();
        }
        self.inner.append_record(&record);
        self.buffered_rows = 0;
    }

    /// Seals the final group and installs the file.
    pub fn finish(mut self) -> WarehouseResult<()> {
        self.seal_group();
        self.inner.finish()?;
        Ok(())
    }
}

/// Per-scan accounting for columnar reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnarScanStats {
    /// Row groups visited (≈ map tasks — unchanged by projection).
    pub row_groups: u64,
    /// Rows yielded.
    pub rows: u64,
    /// Bytes actually decompressed (only the projected columns).
    pub bytes_decompressed: u64,
    /// Compressed bytes of column chunks that were skipped.
    pub bytes_skipped: u64,
}

/// Reads a projection of columns; yields rows of owned cells.
pub struct ColumnarReader {
    reader: crate::file::RecordFileReader,
    projection: Vec<usize>,
    /// Decoded rows of the current group, reversed for pop().
    pending: Vec<Vec<Vec<u8>>>,
    stats: ColumnarScanStats,
}

impl ColumnarReader {
    /// Opens `path`, reading only the columns in `projection` (indexes).
    pub fn open(
        warehouse: &Warehouse,
        path: &WhPath,
        projection: &[usize],
    ) -> WarehouseResult<ColumnarReader> {
        assert!(!projection.is_empty(), "project at least one column");
        Ok(ColumnarReader {
            reader: warehouse.open(path)?,
            projection: projection.to_vec(),
            pending: Vec::new(),
            stats: ColumnarScanStats::default(),
        })
    }

    /// Scan accounting so far.
    pub fn stats(&self) -> ColumnarScanStats {
        self.stats
    }

    fn load_group(&mut self) -> WarehouseResult<bool> {
        let Some(record) = self.reader.next_record()? else {
            return Ok(false);
        };
        let mut pos = 0;
        let rows = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group header"))? as usize;
        let cols = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group header"))? as usize;
        if self.projection.iter().any(|p| *p >= cols) {
            return Err(WarehouseError::Corrupt("projection out of range"));
        }
        // Slice out each column chunk; decompress only projected ones.
        let mut columns: Vec<Option<Vec<u8>>> = Vec::with_capacity(cols);
        for c in 0..cols {
            let len = read_varint(record, &mut pos)
                .ok_or(WarehouseError::Corrupt("column length"))? as usize;
            let chunk = record
                .get(pos..pos + len)
                .ok_or(WarehouseError::Corrupt("column body"))?;
            pos += len;
            if self.projection.contains(&c) {
                let cells = compress::decompress(chunk)
                    .ok_or(WarehouseError::Corrupt("column decompress"))?;
                self.stats.bytes_decompressed += cells.len() as u64;
                columns.push(Some(cells));
            } else {
                self.stats.bytes_skipped += len as u64;
                columns.push(None);
            }
        }
        // Decode the projected columns into row-major order.
        let mut cursors = vec![0usize; cols];
        let mut group_rows = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(self.projection.len());
            for &p in &self.projection {
                let cells = columns[p].as_ref().expect("projected column decoded");
                let len = read_varint(cells, &mut cursors[p])
                    .ok_or(WarehouseError::Corrupt("cell length"))?
                    as usize;
                let start = cursors[p];
                let cell = cells
                    .get(start..start + len)
                    .ok_or(WarehouseError::Corrupt("cell body"))?;
                cursors[p] += len;
                row.push(cell.to_vec());
            }
            group_rows.push(row);
        }
        group_rows.reverse();
        self.pending = group_rows;
        self.stats.row_groups += 1;
        Ok(true)
    }

    /// Yields the next projected row, or `None` at end of file.
    pub fn next_row(&mut self) -> WarehouseResult<Option<Vec<Vec<u8>>>> {
        while self.pending.is_empty() {
            if !self.load_group()? {
                return Ok(None);
            }
        }
        self.stats.rows += 1;
        Ok(self.pending.pop())
    }
}

/// Writes a v2 columnar file: header block first, then one row group per
/// block. Rows may carry zone annotations; a group whose every row was
/// annotated gets a zone map in the block footer (fail open otherwise),
/// exactly like the row-format writer.
pub struct ColumnarFileWriter {
    inner: crate::file::RecordFileWriter,
    columns: usize,
    rows_per_group: usize,
    dict_col: Option<usize>,
    dict_index: HashMap<Vec<u8>, u32>,
    buffers: Vec<Vec<u8>>,
    buffered_rows: usize,
    group_zone: ZoneMap,
    group_annotated: usize,
}

impl ColumnarFileWriter {
    /// Opens a v2 columnar file at `path`. `dictionary` optionally names one
    /// column plus its code table (index = code); cells of that column whose
    /// value appears in the table are stored as the code, others inline.
    pub fn create(
        warehouse: &Warehouse,
        path: &WhPath,
        columns: usize,
        rows_per_group: usize,
        dictionary: Option<(usize, &[Vec<u8>])>,
    ) -> WarehouseResult<ColumnarFileWriter> {
        assert!(columns > 0 && rows_per_group > 0);
        if let Some((col, _)) = dictionary {
            assert!(col < columns, "dictionary column in range");
        }
        let mut inner = warehouse.create(path)?;
        let mut header = Vec::new();
        header.extend_from_slice(&COLUMNAR_MAGIC);
        header.push(COLUMNAR_VERSION);
        write_varint(&mut header, columns as u64);
        let mut dict_index = HashMap::new();
        match dictionary {
            Some((col, entries)) => {
                write_varint(&mut header, col as u64 + 1);
                write_varint(&mut header, entries.len() as u64);
                for (code, value) in entries.iter().enumerate() {
                    write_varint(&mut header, value.len() as u64);
                    header.extend_from_slice(value);
                    // First occurrence wins; duplicate values keep the
                    // smaller (more frequent) code.
                    dict_index.entry(value.clone()).or_insert(code as u32);
                }
            }
            None => write_varint(&mut header, 0),
        }
        inner.append_record_sealed(&header, None);
        Ok(ColumnarFileWriter {
            inner,
            columns,
            rows_per_group,
            dict_col: dictionary.map(|(col, _)| col),
            dict_index,
            buffers: vec![Vec::new(); columns],
            buffered_rows: 0,
            group_zone: ZoneMap::empty(),
            group_annotated: 0,
        })
    }

    /// Appends one row; `cells.len()` must equal the column count.
    pub fn append_row(&mut self, cells: &[&[u8]]) {
        self.push_cells(cells);
        self.maybe_seal();
    }

    /// Appends one row with zone annotations: `key` folds into the group's
    /// min/max range and `tag` into its membership bitmap, like
    /// `append_record_annotated` does for row-format blocks.
    pub fn append_row_annotated(&mut self, cells: &[&[u8]], key: i64, tag: u64) {
        self.group_zone.fold(key, tag);
        self.group_annotated += 1;
        self.push_cells(cells);
        self.maybe_seal();
    }

    fn push_cells(&mut self, cells: &[&[u8]]) {
        assert_eq!(cells.len(), self.columns, "row width");
        for (c, (buf, cell)) in self.buffers.iter_mut().zip(cells).enumerate() {
            if Some(c) == self.dict_col {
                // Dictionary cell: varint(code + 1) on a hit, or a 0 marker
                // followed by the ordinary length-prefixed inline bytes.
                match self.dict_index.get(*cell) {
                    Some(code) => write_varint(buf, u64::from(*code) + 1),
                    None => {
                        buf.push(0);
                        write_varint(buf, cell.len() as u64);
                        buf.extend_from_slice(cell);
                    }
                }
            } else {
                write_varint(buf, cell.len() as u64);
                buf.extend_from_slice(cell);
            }
        }
        self.buffered_rows += 1;
    }

    fn maybe_seal(&mut self) {
        if self.buffered_rows >= self.rows_per_group {
            self.seal_group();
        }
    }

    fn seal_group(&mut self) {
        if self.buffered_rows == 0 {
            return;
        }
        // Same row-group record shape as v1: varint rows, varint columns,
        // then per column varint compressed length + compressed cells.
        let mut record = Vec::new();
        write_varint(&mut record, self.buffered_rows as u64);
        write_varint(&mut record, self.columns as u64);
        for buf in &mut self.buffers {
            let compressed = compress::compress(buf);
            write_varint(&mut record, compressed.len() as u64);
            record.extend_from_slice(&compressed);
            buf.clear();
        }
        let zone = (self.group_annotated == self.buffered_rows).then_some(self.group_zone);
        self.inner.append_record_sealed(&record, zone);
        self.buffered_rows = 0;
        self.group_zone = ZoneMap::empty();
        self.group_annotated = 0;
    }

    /// Seals the final group and installs the file.
    pub fn finish(mut self) -> WarehouseResult<()> {
        self.seal_group();
        self.inner.finish()?;
        Ok(())
    }
}

/// Re-encodes merged record payloads into one columnar file — the pluggable
/// hook the log mover uses to land an hour columnar while itself staying
/// payload-agnostic. Implementations are category-specific (the client-event
/// one lives in `uli-core`); the warehouse only defines the contract.
pub trait ColumnarLanding: Send + Sync {
    /// Writes `payloads` as one columnar file at `path`, returning the
    /// indexes of payloads that could not be encoded. The caller lands those
    /// in a row-format sibling file so nothing is lost to the re-encode.
    fn write_file(
        &self,
        warehouse: &Warehouse,
        path: &WhPath,
        payloads: &[Vec<u8>],
    ) -> WarehouseResult<Vec<usize>>;
}

/// Peeks at a file's first block without charging scan counters or touching
/// the cache: `Ok(Some(version))` when it carries the columnar magic,
/// `Ok(None)` for anything else (row-format files, v1 columnar files,
/// garbage — those surface their own errors on their own read paths).
pub fn sniff_columnar(warehouse: &Warehouse, path: &WhPath) -> WarehouseResult<Option<u8>> {
    let data = warehouse.file_data(path)?;
    let Some(block) = data.blocks.first() else {
        return Ok(None);
    };
    let Some(payload) = compress::decompress(&block.compressed) else {
        return Ok(None);
    };
    let mut pos = 0;
    let Some(len) = read_varint(&payload, &mut pos) else {
        return Ok(None);
    };
    let Some(record) = payload.get(pos..pos + len as usize) else {
        return Ok(None);
    };
    if record.len() < COLUMNAR_MAGIC.len() + 1 || record[..4] != COLUMNAR_MAGIC {
        return Ok(None);
    }
    Ok(Some(record[4]))
}

/// One decoded cell of a projected column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnCell<'a> {
    /// The cell's bytes, decoded or stored inline.
    Bytes(&'a [u8]),
    /// A dictionary code; resolve via [`ColumnarFile::dictionary_value`].
    Code(u32),
}

/// Cell offsets into a decoded chunk. `code == 0` marks an inline cell at
/// `start..start+len`; otherwise the cell is dictionary code `code - 1`.
#[derive(Debug, Clone, Copy)]
struct CellRef {
    start: u32,
    len: u32,
    code: u32,
}

/// One projected column's decoded chunk plus per-row cell offsets.
struct ColumnChunk {
    data: Arc<Vec<u8>>,
    cells: Vec<CellRef>,
}

/// One decoded row group: the projected columns' chunks, addressable by
/// `(column, row)`. Unprojected columns answer `None`.
pub struct ColumnGroup {
    rows: usize,
    columns: Vec<Option<ColumnChunk>>,
}

impl ColumnGroup {
    /// Rows in this group.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The cell at `(col, row)`, or `None` when the column was not
    /// projected.
    pub fn cell(&self, col: usize, row: usize) -> Option<ColumnCell<'_>> {
        let chunk = self.columns.get(col)?.as_ref()?;
        let r = chunk.cells[row];
        Some(if r.code != 0 {
            ColumnCell::Code(r.code - 1)
        } else {
            ColumnCell::Bytes(&chunk.data[r.start as usize..(r.start + r.len) as usize])
        })
    }
}

/// Random-access, thread-safe reader of a v2 columnar file — the columnar
/// counterpart of [`FileBlocks`]. Groups can be read from any thread in any
/// order (each group ≈ one map task); every read is charged both to the
/// warehouse-global counters and to a per-handle cell.
///
/// Accounting: reading a group charges one `blocks_read` plus the group
/// envelope's compressed bytes; `uncompressed_bytes_read` counts only the
/// *decoded column chunks* — the bytes a projection actually materializes,
/// and exactly what the chunk cache serves on a hit. A skipped group counts
/// `blocks_skipped` and never consults the cache.
#[derive(Clone)]
pub struct ColumnarFile {
    fb: FileBlocks,
    columns: usize,
    dict_col: Option<usize>,
    dict: Arc<Vec<Vec<u8>>>,
    dict_index: Arc<HashMap<Vec<u8>, u32>>,
}

impl ColumnarFile {
    /// Opens a v2 columnar file, parsing the header block. Rejects files
    /// that lack the magic or declare a format version this build does not
    /// understand.
    pub fn open(warehouse: &Warehouse, path: &WhPath) -> WarehouseResult<ColumnarFile> {
        let fb = warehouse.open_blocks(path)?;
        let block = fb
            .data
            .blocks
            .first()
            .ok_or(WarehouseError::Corrupt("columnar file has no header"))?;
        // The header is file metadata, read once per open: decompressed
        // directly, uncharged, like the block footers the row path reads.
        let payload = compress::decompress(&block.compressed)
            .ok_or(WarehouseError::Corrupt("columnar header decompress"))?;
        let mut pos = 0;
        let len = read_varint(&payload, &mut pos)
            .ok_or(WarehouseError::Corrupt("columnar header framing"))? as usize;
        let record = payload
            .get(pos..pos + len)
            .ok_or(WarehouseError::Corrupt("columnar header framing"))?;
        if record.len() < COLUMNAR_MAGIC.len() + 1 || record[..4] != COLUMNAR_MAGIC {
            return Err(WarehouseError::Corrupt("not a columnar file"));
        }
        if record[4] != COLUMNAR_VERSION {
            return Err(WarehouseError::Corrupt(
                "unsupported columnar format version",
            ));
        }
        let mut pos = 5;
        let columns = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("columnar header column count"))?
            as usize;
        if columns == 0 {
            return Err(WarehouseError::Corrupt("columnar header column count"));
        }
        let dict_tag = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("columnar header dictionary"))?;
        let mut dict_col = None;
        let mut dict: Vec<Vec<u8>> = Vec::new();
        let mut dict_index = HashMap::new();
        if dict_tag != 0 {
            let col = (dict_tag - 1) as usize;
            if col >= columns {
                return Err(WarehouseError::Corrupt("columnar dictionary column"));
            }
            dict_col = Some(col);
            let entries = read_varint(record, &mut pos)
                .ok_or(WarehouseError::Corrupt("columnar header dictionary"))?
                as usize;
            // Every entry costs at least one length byte, so a claimed count
            // beyond the remaining header bytes is structurally impossible —
            // reject before allocating.
            if entries > record.len() - pos {
                return Err(WarehouseError::Corrupt("columnar dictionary entries"));
            }
            dict.reserve(entries);
            for code in 0..entries {
                let len = read_varint(record, &mut pos)
                    .ok_or(WarehouseError::Corrupt("columnar dictionary entry"))?
                    as usize;
                let value = record
                    .get(pos..pos + len)
                    .ok_or(WarehouseError::Corrupt("columnar dictionary entry"))?;
                pos += len;
                dict_index.entry(value.to_vec()).or_insert(code as u32);
                dict.push(value.to_vec());
            }
        }
        Ok(ColumnarFile {
            fb,
            columns,
            dict_col,
            dict: Arc::new(dict),
            dict_index: Arc::new(dict_index),
        })
    }

    /// Number of columns per row.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of row groups (header block excluded).
    pub fn group_count(&self) -> usize {
        self.fb.block_count().saturating_sub(1)
    }

    /// The dictionary-encoded column, if the file has one.
    pub fn dict_column(&self) -> Option<usize> {
        self.dict_col
    }

    /// The code the embedded dictionary assigns `value`, if any.
    pub fn dictionary_code(&self, value: &[u8]) -> Option<u32> {
        self.dict_index.get(value).copied()
    }

    /// The value behind a dictionary code.
    pub fn dictionary_value(&self, code: u32) -> Option<&[u8]> {
        self.dict.get(code as usize).map(Vec::as_slice)
    }

    /// Zone map of group `g`, if it was written fully annotated.
    pub fn zone_map(&self, g: usize) -> Option<ZoneMap> {
        self.fb.zone_map(g + 1)
    }

    /// Records that group `g` was skipped without decompression. Skips never
    /// consult the chunk cache, so a pruned-but-cached group still counts
    /// `blocks_skipped` and never a `cache_hit`.
    pub fn skip_group(&self, g: usize) {
        self.fb.skip_block(g + 1);
    }

    /// Charges pushdown accounting to both the warehouse-global counters and
    /// this handle's local cell.
    pub fn charge_pushdown(&self, records_skipped: u64, fields_skipped: u64) {
        self.fb.charge_pushdown(records_skipped, fields_skipped);
    }

    /// Snapshot of this handle's own counters (shared by its clones).
    pub fn local_stats(&self) -> ScanStats {
        self.fb.local_stats()
    }

    /// Reads group `g`, decoding only the columns whose entry in
    /// `projection` is true (`projection.len()` must equal the column
    /// count). Unprojected columns charge `fields_skipped` for every row.
    pub fn read_group(&self, g: usize, projection: &[bool]) -> WarehouseResult<ColumnGroup> {
        assert_eq!(projection.len(), self.columns, "projection width");
        let idx = g + 1;
        let block = self
            .fb
            .data
            .blocks
            .get(idx)
            .ok_or(WarehouseError::Corrupt("row group out of range"))?;
        if fnv1a64(&block.compressed) != block.checksum {
            return Err(WarehouseError::ChecksumMismatch {
                path: self.fb.path.clone(),
                block: idx,
            });
        }
        let payload = compress::decompress(&block.compressed)
            .ok_or(WarehouseError::Corrupt("block failed to decompress"))?;
        if payload.len() as u64 != block.uncompressed_len {
            return Err(WarehouseError::Corrupt("block length mismatch"));
        }
        // The envelope pass: one logical block read, compressed bytes off
        // "disk". Decoded bytes are charged per projected chunk below.
        self.fb.stats.block_read(block.compressed.len() as u64, 0);
        self.fb.local.block_read(block.compressed.len() as u64, 0);

        let mut pos = 0;
        let len = read_varint(&payload, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group framing"))? as usize;
        let record = payload
            .get(pos..pos + len)
            .ok_or(WarehouseError::Corrupt("row group framing"))?;
        if pos + len != payload.len() {
            return Err(WarehouseError::Corrupt("row group framing"));
        }
        let mut pos = 0;
        let rows = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group header"))? as usize;
        let cols = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group header"))? as usize;
        if cols != self.columns {
            return Err(WarehouseError::Corrupt("row group column count"));
        }
        let mut columns: Vec<Option<ColumnChunk>> = Vec::with_capacity(cols);
        let mut fields_skipped = 0u64;
        for (c, &projected) in projection.iter().enumerate().take(cols) {
            let len = read_varint(record, &mut pos)
                .ok_or(WarehouseError::Corrupt("column length"))? as usize;
            let chunk = record
                .get(pos..pos + len)
                .ok_or(WarehouseError::Corrupt("column body"))?;
            pos += len;
            if !projected {
                fields_skipped += rows as u64;
                columns.push(None);
                continue;
            }
            let data = self.chunk_payload(chunk)?;
            let dict_len = (Some(c) == self.dict_col).then(|| self.dict.len() as u64);
            let cells = split_cells(&data, rows, dict_len)?;
            columns.push(Some(ColumnChunk { data, cells }));
        }
        self.fb.stats.records_read_n(rows as u64);
        self.fb.local.records_read_n(rows as u64);
        if fields_skipped > 0 {
            self.charge_pushdown(0, fields_skipped);
        }
        Ok(ColumnGroup { rows, columns })
    }

    /// Fetches one column chunk's decoded bytes — content-addressed from the
    /// shared cache when hot, decompressing (and populating the cache) when
    /// cold. Hits charge decoded bytes but no `blocks_read` (the group
    /// envelope already counted) and no compressed traffic.
    fn chunk_payload(&self, chunk: &[u8]) -> WarehouseResult<Arc<Vec<u8>>> {
        // The ulz stream's varint prefix declares the decoded length, so the
        // cache key is known without decompressing.
        let mut pos = 0;
        let decoded_len =
            read_varint(chunk, &mut pos).ok_or(WarehouseError::Corrupt("column chunk header"))?;
        let key = BlockKey {
            checksum: fnv1a64(chunk),
            uncompressed_len: decoded_len,
        };
        if let Some(data) = self.fb.cache.get(key) {
            self.fb.stats.chunk_cache_hit(data.len() as u64);
            self.fb.local.chunk_cache_hit(data.len() as u64);
            return Ok(data);
        }
        let decoded = compress::decompress(chunk)
            .ok_or(WarehouseError::Corrupt("column chunk decompress"))?;
        self.fb.stats.chunk_cache_miss(decoded.len() as u64);
        self.fb.local.chunk_cache_miss(decoded.len() as u64);
        let data = Arc::new(decoded);
        self.fb.cache.insert(key, Arc::clone(&data));
        Ok(data)
    }
}

/// Splits a decoded chunk into exactly `rows` cell references, validating
/// the whole chunk (trailing garbage is corruption, not slack). For a
/// dictionary column, `dict_len` bounds the codes a cell may carry.
fn split_cells(data: &[u8], rows: usize, dict_len: Option<u64>) -> WarehouseResult<Vec<CellRef>> {
    // Every cell costs at least one byte, so `rows` beyond the chunk length
    // is structurally impossible — reject before allocating.
    if rows > data.len() {
        return Err(WarehouseError::Corrupt("cell count"));
    }
    let mut cells = Vec::with_capacity(rows);
    let mut pos = 0;
    for _ in 0..rows {
        if let Some(dict_len) = dict_len {
            let v = read_varint(data, &mut pos).ok_or(WarehouseError::Corrupt("cell code"))?;
            if v != 0 {
                if v > dict_len {
                    return Err(WarehouseError::Corrupt("cell code"));
                }
                cells.push(CellRef {
                    start: 0,
                    len: 0,
                    code: v as u32,
                });
                continue;
            }
        }
        let len = read_varint(data, &mut pos).ok_or(WarehouseError::Corrupt("cell length"))?;
        let len = usize::try_from(len).map_err(|_| WarehouseError::Corrupt("cell length"))?;
        if data.len() - pos < len {
            return Err(WarehouseError::Corrupt("cell body"));
        }
        cells.push(CellRef {
            start: pos as u32,
            len: len as u32,
            code: 0,
        });
        pos += len;
    }
    if pos != data.len() {
        return Err(WarehouseError::Corrupt("cell trailing bytes"));
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> WhPath {
        WhPath::parse(s).unwrap()
    }

    fn write_fixture(wh: &Warehouse, rows: usize, group: usize) {
        let mut w = ColumnarWriter::create(wh, &p("/col"), 3, group).unwrap();
        for i in 0..rows {
            let a = format!("user-{}", i % 7);
            let b = format!("action-{}", i % 3);
            let c = format!("payload-{i}-{}", "x".repeat(40));
            w.append_row(&[a.as_bytes(), b.as_bytes(), c.as_bytes()]);
        }
        w.finish().unwrap();
    }

    #[test]
    fn full_projection_round_trips() {
        let wh = Warehouse::new();
        write_fixture(&wh, 250, 64);
        let mut r = ColumnarReader::open(&wh, &p("/col"), &[0, 1, 2]).unwrap();
        let mut n = 0;
        while let Some(row) = r.next_row().unwrap() {
            assert_eq!(row.len(), 3);
            assert_eq!(row[0], format!("user-{}", n % 7).into_bytes());
            assert_eq!(row[1], format!("action-{}", n % 3).into_bytes());
            n += 1;
        }
        assert_eq!(n, 250);
        assert_eq!(r.stats().row_groups, 4); // ceil(250/64)
    }

    #[test]
    fn narrow_projection_decompresses_less_but_visits_all_groups() {
        let wh = Warehouse::new();
        write_fixture(&wh, 500, 100);

        let mut wide = ColumnarReader::open(&wh, &p("/col"), &[0, 1, 2]).unwrap();
        while wide.next_row().unwrap().is_some() {}
        let mut narrow = ColumnarReader::open(&wh, &p("/col"), &[1]).unwrap();
        while narrow.next_row().unwrap().is_some() {}

        let w = wide.stats();
        let n = narrow.stats();
        assert_eq!(w.rows, 500);
        assert_eq!(n.rows, 500);
        // The paper's point, in two assertions: per-task bytes shrink…
        assert!(
            n.bytes_decompressed * 3 < w.bytes_decompressed,
            "projection must cut decompressed bytes: {} vs {}",
            n.bytes_decompressed,
            w.bytes_decompressed
        );
        assert!(n.bytes_skipped > 0);
        // …but the number of scan units (mappers) does not.
        assert_eq!(n.row_groups, w.row_groups);
    }

    #[test]
    fn projection_order_is_respected() {
        let wh = Warehouse::new();
        write_fixture(&wh, 10, 4);
        let mut r = ColumnarReader::open(&wh, &p("/col"), &[2, 0]).unwrap();
        let row = r.next_row().unwrap().unwrap();
        assert!(row[0].starts_with(b"payload-0"));
        assert_eq!(row[1], b"user-0".to_vec());
    }

    #[test]
    fn empty_file() {
        let wh = Warehouse::new();
        let w = ColumnarWriter::create(&wh, &p("/empty"), 2, 8).unwrap();
        w.finish().unwrap();
        let mut r = ColumnarReader::open(&wh, &p("/empty"), &[0]).unwrap();
        assert!(r.next_row().unwrap().is_none());
        assert_eq!(r.stats().row_groups, 0);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let wh = Warehouse::new();
        let mut w = ColumnarWriter::create(&wh, &p("/x"), 2, 8).unwrap();
        w.append_row(&[b"only-one"]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Arbitrary cell contents round-trip through any projection.
            #[test]
            fn round_trips_any_projection(
                rows in proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..40),
                     proptest::collection::vec(any::<u8>(), 0..40)),
                    0..60,
                ),
                group in 1usize..16,
                project_first in any::<bool>(),
            ) {
                let wh = Warehouse::new();
                let path = WhPath::parse("/prop").unwrap();
                let mut w = ColumnarWriter::create(&wh, &path, 2, group).unwrap();
                for (a, b) in &rows {
                    w.append_row(&[a.as_slice(), b.as_slice()]);
                }
                w.finish().unwrap();
                let projection: Vec<usize> =
                    if project_first { vec![0] } else { vec![0, 1] };
                let mut r = ColumnarReader::open(&wh, &path, &projection).unwrap();
                let mut i = 0;
                while let Some(row) = r.next_row().unwrap() {
                    prop_assert_eq!(&row[0], &rows[i].0);
                    if !project_first {
                        prop_assert_eq!(&row[1], &rows[i].1);
                    }
                    i += 1;
                }
                prop_assert_eq!(i, rows.len());
            }
        }
    }

    #[test]
    fn out_of_range_projection_is_an_error() {
        let wh = Warehouse::new();
        write_fixture(&wh, 10, 4);
        let mut r = ColumnarReader::open(&wh, &p("/col"), &[9]).unwrap();
        assert!(matches!(
            r.next_row(),
            Err(WarehouseError::Corrupt("projection out of range"))
        ));
    }

    mod v2 {
        use super::*;

        /// A 3-column fixture: col 1 is dictionary-encoded over two known
        /// values, with every 10th row carrying a value outside the
        /// dictionary (inline fallback). Rows are zone-annotated with
        /// key = row index and tag = hash of the col-1 value.
        fn write_v2(wh: &Warehouse, path: &str, rows: usize, group: usize) -> Vec<[Vec<u8>; 3]> {
            let dict = vec![b"click".to_vec(), b"view".to_vec()];
            let mut w =
                ColumnarFileWriter::create(wh, &p(path), 3, group, Some((1, &dict))).unwrap();
            let mut expect = Vec::with_capacity(rows);
            for i in 0..rows {
                let a = format!("user-{}", i % 7).into_bytes();
                let b = if i % 10 == 9 {
                    format!("rare-{i}").into_bytes()
                } else if i % 3 == 0 {
                    b"click".to_vec()
                } else {
                    b"view".to_vec()
                };
                let c = format!("payload-{i}-{}", "x".repeat(40)).into_bytes();
                w.append_row_annotated(&[&a, &b, &c], i as i64, crate::zone::tag_hash(&b));
                expect.push([a, b, c]);
            }
            w.finish().unwrap();
            expect
        }

        fn resolve<'a>(f: &'a ColumnarFile, cell: ColumnCell<'a>) -> &'a [u8] {
            match cell {
                ColumnCell::Bytes(b) => b,
                ColumnCell::Code(c) => f.dictionary_value(c).expect("code in range"),
            }
        }

        #[test]
        fn round_trips_with_dictionary_and_inline_fallback() {
            let wh = Warehouse::new();
            let expect = write_v2(&wh, "/v2", 95, 32);
            let f = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            assert_eq!(f.columns(), 3);
            assert_eq!(f.group_count(), 3); // ceil(95/32)
            assert_eq!(f.dict_column(), Some(1));
            assert_eq!(f.dictionary_code(b"click"), Some(0));
            assert_eq!(f.dictionary_code(b"nope"), None);
            let mut i = 0;
            for g in 0..f.group_count() {
                let grp = f.read_group(g, &[true, true, true]).unwrap();
                for r in 0..grp.rows() {
                    for (c, want) in expect[i].iter().enumerate() {
                        let cell = grp.cell(c, r).unwrap();
                        assert_eq!(resolve(&f, cell), want.as_slice(), "row {i} col {c}");
                    }
                    // Dictionary hits come back as codes, misses inline.
                    match grp.cell(1, r).unwrap() {
                        ColumnCell::Code(code) => assert!(code < 2),
                        ColumnCell::Bytes(b) => assert!(b.starts_with(b"rare-")),
                    }
                    i += 1;
                }
            }
            assert_eq!(i, 95);
        }

        #[test]
        fn projection_decodes_only_requested_chunks() {
            let wh = Warehouse::with_config(64 * 1024, 0); // cache off
            write_v2(&wh, "/v2", 200, 64);
            let wide = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            for g in 0..wide.group_count() {
                wide.read_group(g, &[true, true, true]).unwrap();
            }
            let w = wide.local_stats();
            let narrow = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            for g in 0..narrow.group_count() {
                let grp = narrow.read_group(g, &[false, true, false]).unwrap();
                assert!(grp.cell(0, 0).is_none(), "unprojected column");
                assert!(grp.cell(1, 0).is_some());
            }
            let n = narrow.local_stats();
            assert_eq!(n.blocks_read, w.blocks_read, "groups visited unchanged");
            assert_eq!(n.records_read, w.records_read);
            assert_eq!(
                n.compressed_bytes_read, w.compressed_bytes_read,
                "the envelope always comes off disk"
            );
            assert!(
                n.uncompressed_bytes_read * 3 < w.uncompressed_bytes_read,
                "projection must cut decoded bytes: {} vs {}",
                n.uncompressed_bytes_read,
                w.uncompressed_bytes_read
            );
            assert_eq!(n.fields_skipped, 2 * 200, "two columns skipped per row");
        }

        #[test]
        fn chunk_cache_serves_repeat_reads() {
            let wh = Warehouse::new();
            write_v2(&wh, "/v2", 100, 50);
            let f = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            for g in 0..f.group_count() {
                f.read_group(g, &[true, true, true]).unwrap();
            }
            let cold = f.local_stats();
            assert_eq!(cold.cache_hits, 0);
            assert_eq!(cold.cache_misses, 6, "3 chunks × 2 groups");
            let f2 = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            for g in 0..f2.group_count() {
                f2.read_group(g, &[true, true, true]).unwrap();
            }
            let hot = f2.local_stats();
            assert_eq!(hot.cache_hits, 6, "every chunk served from cache");
            assert_eq!(hot.cache_misses, 0);
            assert_eq!(
                hot.uncompressed_bytes_read, cold.uncompressed_bytes_read,
                "hits charge the same decoded bytes"
            );
            assert_eq!(
                hot.compressed_bytes_read, cold.compressed_bytes_read,
                "the envelope is never cached"
            );
        }

        #[test]
        fn zone_maps_cover_groups_and_skips_never_hit_the_cache() {
            let wh = Warehouse::new();
            write_v2(&wh, "/v2", 100, 50);
            let f = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            let z0 = f.zone_map(0).expect("fully annotated group");
            let z1 = f.zone_map(1).expect("fully annotated group");
            assert_eq!((z0.min_key, z0.max_key), (0, 49));
            assert_eq!((z1.min_key, z1.max_key), (50, 99));
            assert!(z0.may_contain_tag(crate::zone::tag_hash(b"click")));

            // Warm the cache with a full read, then prune group 0: it must
            // count blocks_skipped and never cache_hit (PR 2 semantics).
            for g in 0..f.group_count() {
                f.read_group(g, &[true, true, true]).unwrap();
            }
            let f2 = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            f2.skip_group(0);
            f2.read_group(1, &[true, true, true]).unwrap();
            let s = f2.local_stats();
            assert_eq!(s.blocks_skipped, 1);
            assert_eq!(s.blocks_read, 1);
            assert_eq!(s.cache_hits, 3, "only the read group's chunks hit");
        }

        #[test]
        fn pruned_but_cached_group_pins_through_both_obs_exports() {
            let registry = uli_obs::Registry::new();
            let wh = Warehouse::new_with_obs(&registry);
            write_v2(&wh, "/v2", 100, 50);
            let f = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            for g in 0..f.group_count() {
                f.read_group(g, &[true, true, true]).unwrap();
            }
            let hits_before = wh.stats().cache_hits;
            let f2 = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            f2.skip_group(0);
            f2.skip_group(1);
            assert_eq!(wh.stats().blocks_skipped, 2);
            assert_eq!(wh.stats().cache_hits, hits_before, "skips never hit");
            let snap = registry.snapshot();
            assert_eq!(snap.counter_value("warehouse/blocks_skipped"), Some(2));
            assert_eq!(
                snap.counter_value("warehouse/cache_hits"),
                Some(hits_before)
            );
            let json = snap.to_json();
            assert!(
                json.contains(
                    "\"key\": \"warehouse/blocks_skipped\", \"labels\": {}, \"value\": 2}"
                ),
                "{json}"
            );
            let prom = snap.to_prometheus();
            assert!(prom.contains("uli_warehouse_blocks_skipped 2"), "{prom}");
        }

        #[test]
        fn sniff_tells_layouts_apart() {
            let wh = Warehouse::new();
            write_v2(&wh, "/v2", 10, 4);
            assert_eq!(sniff_columnar(&wh, &p("/v2")).unwrap(), Some(2));
            // Row-format file: no magic.
            let mut w = wh.create(&p("/row")).unwrap();
            w.append_record(b"plain record");
            w.finish().unwrap();
            assert_eq!(sniff_columnar(&wh, &p("/row")).unwrap(), None);
            // v1 columnar file: headerless, sniffs as a row file.
            let mut w = ColumnarWriter::create(&wh, &p("/v1"), 2, 4).unwrap();
            w.append_row(&[b"a", b"b"]);
            w.finish().unwrap();
            assert_eq!(sniff_columnar(&wh, &p("/v1")).unwrap(), None);
            // Empty file.
            let w = wh.create(&p("/empty")).unwrap();
            w.finish().unwrap();
            assert_eq!(sniff_columnar(&wh, &p("/empty")).unwrap(), None);
        }

        #[test]
        fn unknown_format_version_is_rejected_cleanly() {
            let wh = Warehouse::new();
            // Forge a header that claims version 9.
            let mut header = Vec::new();
            header.extend_from_slice(&COLUMNAR_MAGIC);
            header.push(9);
            write_varint(&mut header, 3);
            write_varint(&mut header, 0);
            let mut w = wh.create(&p("/future")).unwrap();
            w.append_record_sealed(&header, None);
            w.finish().unwrap();
            assert_eq!(sniff_columnar(&wh, &p("/future")).unwrap(), Some(9));
            assert!(matches!(
                ColumnarFile::open(&wh, &p("/future")),
                Err(WarehouseError::Corrupt(
                    "unsupported columnar format version"
                ))
            ));
            // And a non-columnar file is "not a columnar file", not a panic.
            let mut w = wh.create(&p("/row")).unwrap();
            w.append_record(b"some record");
            w.finish().unwrap();
            assert!(matches!(
                ColumnarFile::open(&wh, &p("/row")),
                Err(WarehouseError::Corrupt("not a columnar file"))
            ));
        }

        #[test]
        fn hostile_row_counts_are_rejected_before_allocation() {
            let wh = Warehouse::new();
            // Valid header, then a group record claiming u64::MAX rows.
            let mut header = Vec::new();
            header.extend_from_slice(&COLUMNAR_MAGIC);
            header.push(COLUMNAR_VERSION);
            write_varint(&mut header, 1);
            write_varint(&mut header, 0);
            let mut group = Vec::new();
            write_varint(&mut group, u64::MAX); // rows
            write_varint(&mut group, 1); // cols
            let chunk = compress::compress(b"\x00");
            write_varint(&mut group, chunk.len() as u64);
            group.extend_from_slice(&chunk);
            let mut w = wh.create(&p("/hostile")).unwrap();
            w.append_record_sealed(&header, None);
            w.append_record_sealed(&group, None);
            w.finish().unwrap();
            let f = ColumnarFile::open(&wh, &p("/hostile")).unwrap();
            assert!(f.read_group(0, &[true]).is_err());
        }

        #[test]
        fn truncated_group_is_rejected_whole() {
            let wh = Warehouse::new();
            write_v2(&wh, "/v2", 40, 20);
            // Drop the tail of group 1's block (checksum recomputed): the
            // read must fail as a unit, not yield a partial group.
            wh.truncate_block(&p("/v2"), 2).unwrap();
            let f = ColumnarFile::open(&wh, &p("/v2")).unwrap();
            assert!(f.read_group(0, &[true, true, true]).is_ok());
            assert!(f.read_group(1, &[true, true, true]).is_err());
        }

        mod hostile_properties {
            use super::*;
            use proptest::prelude::*;

            /// Builds a file whose single "row group" record is `body`,
            /// behind a well-formed v2 header for `cols` columns.
            fn forge(wh: &Warehouse, cols: u64, dict: bool, body: &[u8]) -> WhPath {
                let path = p("/forged");
                let mut header = Vec::new();
                header.extend_from_slice(&COLUMNAR_MAGIC);
                header.push(COLUMNAR_VERSION);
                write_varint(&mut header, cols);
                if dict {
                    write_varint(&mut header, 1); // dictionary on column 0
                    write_varint(&mut header, 2);
                    for v in [b"aa".as_slice(), b"bb".as_slice()] {
                        write_varint(&mut header, v.len() as u64);
                        header.extend_from_slice(v);
                    }
                } else {
                    write_varint(&mut header, 0);
                }
                let mut w = wh.create(&path).unwrap();
                w.append_record_sealed(&header, None);
                w.append_record_sealed(body, None);
                w.finish().unwrap();
                path
            }

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(64))]

                /// Arbitrary bytes in place of a row group must never panic
                /// and never yield a half-decoded group: either a clean
                /// error, or a structurally valid group whose every cell is
                /// addressable.
                #[test]
                fn garbage_groups_never_panic(
                    body in proptest::collection::vec(any::<u8>(), 0..200),
                    dict in any::<bool>(),
                ) {
                    let wh = Warehouse::new();
                    let path = forge(&wh, 2, dict, &body);
                    let f = ColumnarFile::open(&wh, &path).unwrap();
                    if let Ok(g) = f.read_group(0, &[true, true]) {
                        for r in 0..g.rows() {
                            for c in 0..2 {
                                let cell = g.cell(c, r).unwrap();
                                if let ColumnCell::Code(code) = cell {
                                    prop_assert!(f.dictionary_value(code).is_some());
                                }
                            }
                        }
                    }
                }

                /// Truncating a valid group record anywhere must reject the
                /// group whole.
                #[test]
                fn truncated_groups_are_rejected(cut_pct in 0u64..100) {
                    let wh = Warehouse::new();
                    // A valid group: 3 rows × 2 cols, col 0 dictionary.
                    let mut body = Vec::new();
                    write_varint(&mut body, 3);
                    write_varint(&mut body, 2);
                    let mut col0 = Vec::new();
                    for code in [1u64, 2, 0] {
                        write_varint(&mut col0, code);
                        if code == 0 {
                            write_varint(&mut col0, 4);
                            col0.extend_from_slice(b"miss");
                        }
                    }
                    let mut col1 = Vec::new();
                    for v in [b"x".as_slice(), b"yy", b"zzz"] {
                        write_varint(&mut col1, v.len() as u64);
                        col1.extend_from_slice(v);
                    }
                    for chunk in [compress::compress(&col0), compress::compress(&col1)] {
                        write_varint(&mut body, chunk.len() as u64);
                        body.extend_from_slice(&chunk);
                    }
                    let full = body.len();
                    let cut = (full as u64 * cut_pct / 100) as usize;
                    let wh2 = Warehouse::new();
                    let whole = forge(&wh, 2, true, &body);
                    let truncated = forge(&wh2, 2, true, &body[..cut]);
                    let f = ColumnarFile::open(&wh, &whole).unwrap();
                    prop_assert!(f.read_group(0, &[true, true]).is_ok());
                    let t = ColumnarFile::open(&wh2, &truncated).unwrap();
                    if cut < full {
                        prop_assert!(t.read_group(0, &[true, true]).is_err());
                    }
                }

                /// Overlong varints (11+ continuation bytes) anywhere in the
                /// group header are structural errors, not panics or hangs.
                #[test]
                fn overlong_varints_are_rejected(tail in proptest::collection::vec(any::<u8>(), 0..20)) {
                    let wh = Warehouse::new();
                    let mut body = vec![0x80u8; 11]; // overlong rows varint
                    body.extend_from_slice(&tail);
                    let path = forge(&wh, 2, false, &body);
                    let f = ColumnarFile::open(&wh, &path).unwrap();
                    prop_assert!(f.read_group(0, &[true, true]).is_err());
                }
            }
        }
    }
}
