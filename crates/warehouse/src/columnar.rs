//! An RCFile-like columnar layout (§4.2's rejected design alternative).
//!
//! "To mitigate that issue, we could adopt a columnar storage format such
//! as RCFile. However, this solution primarily focuses on reducing the
//! running time of each map task; without modification, RCFiles would not
//! reduce the number of mappers that are spawned for large analytics jobs."
//!
//! The format mirrors RCFile's row-group-of-column-chunks shape: rows are
//! buffered into groups; within a group each column's cells are
//! concatenated and compressed separately, so a projection decompresses
//! only the columns it needs. A row group is the unit of scan (≈ one map
//! task), which is exactly why the paper's mapper-count problem survives
//! this layout — the experiment the `layout` ablation reproduces.

use crate::compress;
use crate::error::{WarehouseError, WarehouseResult};
use crate::path::WhPath;
use crate::store::Warehouse;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Writes rows of `columns` byte-cells into row groups of `rows_per_group`.
pub struct ColumnarWriter {
    inner: crate::file::RecordFileWriter,
    columns: usize,
    rows_per_group: usize,
    /// Per-column buffered cells (length-prefixed concatenation).
    buffers: Vec<Vec<u8>>,
    buffered_rows: usize,
}

impl ColumnarWriter {
    /// Opens a columnar file at `path`.
    pub fn create(
        warehouse: &Warehouse,
        path: &WhPath,
        columns: usize,
        rows_per_group: usize,
    ) -> WarehouseResult<ColumnarWriter> {
        assert!(columns > 0 && rows_per_group > 0);
        Ok(ColumnarWriter {
            inner: warehouse.create(path)?,
            columns,
            rows_per_group,
            buffers: vec![Vec::new(); columns],
            buffered_rows: 0,
        })
    }

    /// Appends one row; `cells.len()` must equal the column count.
    pub fn append_row(&mut self, cells: &[&[u8]]) {
        assert_eq!(cells.len(), self.columns, "row width");
        for (buf, cell) in self.buffers.iter_mut().zip(cells) {
            write_varint(buf, cell.len() as u64);
            buf.extend_from_slice(cell);
        }
        self.buffered_rows += 1;
        if self.buffered_rows >= self.rows_per_group {
            self.seal_group();
        }
    }

    fn seal_group(&mut self) {
        if self.buffered_rows == 0 {
            return;
        }
        // Row group record: varint row count, varint column count, then per
        // column varint compressed length + compressed cells.
        let mut record = Vec::new();
        write_varint(&mut record, self.buffered_rows as u64);
        write_varint(&mut record, self.columns as u64);
        for buf in &mut self.buffers {
            let compressed = compress::compress(buf);
            write_varint(&mut record, compressed.len() as u64);
            record.extend_from_slice(&compressed);
            buf.clear();
        }
        self.inner.append_record(&record);
        self.buffered_rows = 0;
    }

    /// Seals the final group and installs the file.
    pub fn finish(mut self) -> WarehouseResult<()> {
        self.seal_group();
        self.inner.finish()?;
        Ok(())
    }
}

/// Per-scan accounting for columnar reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnarScanStats {
    /// Row groups visited (≈ map tasks — unchanged by projection).
    pub row_groups: u64,
    /// Rows yielded.
    pub rows: u64,
    /// Bytes actually decompressed (only the projected columns).
    pub bytes_decompressed: u64,
    /// Compressed bytes of column chunks that were skipped.
    pub bytes_skipped: u64,
}

/// Reads a projection of columns; yields rows of owned cells.
pub struct ColumnarReader {
    reader: crate::file::RecordFileReader,
    projection: Vec<usize>,
    /// Decoded rows of the current group, reversed for pop().
    pending: Vec<Vec<Vec<u8>>>,
    stats: ColumnarScanStats,
}

impl ColumnarReader {
    /// Opens `path`, reading only the columns in `projection` (indexes).
    pub fn open(
        warehouse: &Warehouse,
        path: &WhPath,
        projection: &[usize],
    ) -> WarehouseResult<ColumnarReader> {
        assert!(!projection.is_empty(), "project at least one column");
        Ok(ColumnarReader {
            reader: warehouse.open(path)?,
            projection: projection.to_vec(),
            pending: Vec::new(),
            stats: ColumnarScanStats::default(),
        })
    }

    /// Scan accounting so far.
    pub fn stats(&self) -> ColumnarScanStats {
        self.stats
    }

    fn load_group(&mut self) -> WarehouseResult<bool> {
        let Some(record) = self.reader.next_record()? else {
            return Ok(false);
        };
        let mut pos = 0;
        let rows = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group header"))? as usize;
        let cols = read_varint(record, &mut pos)
            .ok_or(WarehouseError::Corrupt("row group header"))? as usize;
        if self.projection.iter().any(|p| *p >= cols) {
            return Err(WarehouseError::Corrupt("projection out of range"));
        }
        // Slice out each column chunk; decompress only projected ones.
        let mut columns: Vec<Option<Vec<u8>>> = Vec::with_capacity(cols);
        for c in 0..cols {
            let len = read_varint(record, &mut pos)
                .ok_or(WarehouseError::Corrupt("column length"))? as usize;
            let chunk = record
                .get(pos..pos + len)
                .ok_or(WarehouseError::Corrupt("column body"))?;
            pos += len;
            if self.projection.contains(&c) {
                let cells = compress::decompress(chunk)
                    .ok_or(WarehouseError::Corrupt("column decompress"))?;
                self.stats.bytes_decompressed += cells.len() as u64;
                columns.push(Some(cells));
            } else {
                self.stats.bytes_skipped += len as u64;
                columns.push(None);
            }
        }
        // Decode the projected columns into row-major order.
        let mut cursors = vec![0usize; cols];
        let mut group_rows = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(self.projection.len());
            for &p in &self.projection {
                let cells = columns[p].as_ref().expect("projected column decoded");
                let len = read_varint(cells, &mut cursors[p])
                    .ok_or(WarehouseError::Corrupt("cell length"))?
                    as usize;
                let start = cursors[p];
                let cell = cells
                    .get(start..start + len)
                    .ok_or(WarehouseError::Corrupt("cell body"))?;
                cursors[p] += len;
                row.push(cell.to_vec());
            }
            group_rows.push(row);
        }
        group_rows.reverse();
        self.pending = group_rows;
        self.stats.row_groups += 1;
        Ok(true)
    }

    /// Yields the next projected row, or `None` at end of file.
    pub fn next_row(&mut self) -> WarehouseResult<Option<Vec<Vec<u8>>>> {
        while self.pending.is_empty() {
            if !self.load_group()? {
                return Ok(None);
            }
        }
        self.stats.rows += 1;
        Ok(self.pending.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> WhPath {
        WhPath::parse(s).unwrap()
    }

    fn write_fixture(wh: &Warehouse, rows: usize, group: usize) {
        let mut w = ColumnarWriter::create(wh, &p("/col"), 3, group).unwrap();
        for i in 0..rows {
            let a = format!("user-{}", i % 7);
            let b = format!("action-{}", i % 3);
            let c = format!("payload-{i}-{}", "x".repeat(40));
            w.append_row(&[a.as_bytes(), b.as_bytes(), c.as_bytes()]);
        }
        w.finish().unwrap();
    }

    #[test]
    fn full_projection_round_trips() {
        let wh = Warehouse::new();
        write_fixture(&wh, 250, 64);
        let mut r = ColumnarReader::open(&wh, &p("/col"), &[0, 1, 2]).unwrap();
        let mut n = 0;
        while let Some(row) = r.next_row().unwrap() {
            assert_eq!(row.len(), 3);
            assert_eq!(row[0], format!("user-{}", n % 7).into_bytes());
            assert_eq!(row[1], format!("action-{}", n % 3).into_bytes());
            n += 1;
        }
        assert_eq!(n, 250);
        assert_eq!(r.stats().row_groups, 4); // ceil(250/64)
    }

    #[test]
    fn narrow_projection_decompresses_less_but_visits_all_groups() {
        let wh = Warehouse::new();
        write_fixture(&wh, 500, 100);

        let mut wide = ColumnarReader::open(&wh, &p("/col"), &[0, 1, 2]).unwrap();
        while wide.next_row().unwrap().is_some() {}
        let mut narrow = ColumnarReader::open(&wh, &p("/col"), &[1]).unwrap();
        while narrow.next_row().unwrap().is_some() {}

        let w = wide.stats();
        let n = narrow.stats();
        assert_eq!(w.rows, 500);
        assert_eq!(n.rows, 500);
        // The paper's point, in two assertions: per-task bytes shrink…
        assert!(
            n.bytes_decompressed * 3 < w.bytes_decompressed,
            "projection must cut decompressed bytes: {} vs {}",
            n.bytes_decompressed,
            w.bytes_decompressed
        );
        assert!(n.bytes_skipped > 0);
        // …but the number of scan units (mappers) does not.
        assert_eq!(n.row_groups, w.row_groups);
    }

    #[test]
    fn projection_order_is_respected() {
        let wh = Warehouse::new();
        write_fixture(&wh, 10, 4);
        let mut r = ColumnarReader::open(&wh, &p("/col"), &[2, 0]).unwrap();
        let row = r.next_row().unwrap().unwrap();
        assert!(row[0].starts_with(b"payload-0"));
        assert_eq!(row[1], b"user-0".to_vec());
    }

    #[test]
    fn empty_file() {
        let wh = Warehouse::new();
        let w = ColumnarWriter::create(&wh, &p("/empty"), 2, 8).unwrap();
        w.finish().unwrap();
        let mut r = ColumnarReader::open(&wh, &p("/empty"), &[0]).unwrap();
        assert!(r.next_row().unwrap().is_none());
        assert_eq!(r.stats().row_groups, 0);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let wh = Warehouse::new();
        let mut w = ColumnarWriter::create(&wh, &p("/x"), 2, 8).unwrap();
        w.append_row(&[b"only-one"]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Arbitrary cell contents round-trip through any projection.
            #[test]
            fn round_trips_any_projection(
                rows in proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..40),
                     proptest::collection::vec(any::<u8>(), 0..40)),
                    0..60,
                ),
                group in 1usize..16,
                project_first in any::<bool>(),
            ) {
                let wh = Warehouse::new();
                let path = WhPath::parse("/prop").unwrap();
                let mut w = ColumnarWriter::create(&wh, &path, 2, group).unwrap();
                for (a, b) in &rows {
                    w.append_row(&[a.as_slice(), b.as_slice()]);
                }
                w.finish().unwrap();
                let projection: Vec<usize> =
                    if project_first { vec![0] } else { vec![0, 1] };
                let mut r = ColumnarReader::open(&wh, &path, &projection).unwrap();
                let mut i = 0;
                while let Some(row) = r.next_row().unwrap() {
                    prop_assert_eq!(&row[0], &rows[i].0);
                    if !project_first {
                        prop_assert_eq!(&row[1], &rows[i].1);
                    }
                    i += 1;
                }
                prop_assert_eq!(i, rows.len());
            }
        }
    }

    #[test]
    fn out_of_range_projection_is_an_error() {
        let wh = Warehouse::new();
        write_fixture(&wh, 10, 4);
        let mut r = ColumnarReader::open(&wh, &p("/col"), &[9]).unwrap();
        assert!(matches!(
            r.next_row(),
            Err(WarehouseError::Corrupt("projection out of range"))
        ));
    }
}
