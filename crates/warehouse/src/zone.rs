//! Per-block zone maps: Elephant Twin-style block skipping, built in.
//!
//! §6's Elephant Twin indexes skip input "at the InputFormat level" — before
//! a block is ever decompressed. The external event index (`uli-index`)
//! covers the cases where an index was *built*; zone maps cover every file
//! written through the annotated writer path for free: each sealed block
//! records the min/max of a sort-ish key (the event timestamp) and a 64-bit
//! membership bitmap over a tag dimension (the event name), and a pushed
//! predicate can prove a block irrelevant from the footer alone.
//!
//! Everything here fails open: a block with no zone map (legacy writer, log
//! mover copying opaque bytes) is always read.

use crate::file::fnv1a64;

/// The hash that folds tags (event names) into a zone-map bitmap. Writers
/// and pruners must agree on it, so it is public and the only one used.
pub fn tag_hash(bytes: &[u8]) -> u64 {
    fnv1a64(bytes)
}

/// Summary of one block's annotated records: key min/max, a 64-bit tag
/// bloom bitmap (bit = `tag_hash % 64`), and the record count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest key (event timestamp, millis) in the block.
    pub min_key: i64,
    /// Largest key in the block.
    pub max_key: i64,
    /// Tag membership bitmap: bit `tag_hash(tag) % 64` set for every tag
    /// present. A clear bit proves absence; a set bit proves nothing.
    pub tag_bits: u64,
    /// Annotated records folded in.
    pub records: u64,
}

impl ZoneMap {
    /// A zone map over zero records.
    pub fn empty() -> ZoneMap {
        ZoneMap {
            min_key: i64::MAX,
            max_key: i64::MIN,
            tag_bits: 0,
            records: 0,
        }
    }

    /// Folds one record's key and tag hash into the summary.
    pub fn fold(&mut self, key: i64, tag: u64) {
        self.min_key = self.min_key.min(key);
        self.max_key = self.max_key.max(key);
        self.tag_bits |= 1 << (tag % 64);
        self.records += 1;
    }

    /// True when the block's key range intersects `[min, max]` (either bound
    /// optional).
    pub fn key_overlaps(&self, min: Option<i64>, max: Option<i64>) -> bool {
        min.is_none_or(|lo| self.max_key >= lo) && max.is_none_or(|hi| self.min_key <= hi)
    }

    /// True unless the bitmap proves `tag` absent from the block.
    pub fn may_contain_tag(&self, tag: u64) -> bool {
        self.tag_bits & (1 << (tag % 64)) != 0
    }
}

impl Default for ZoneMap {
    fn default() -> Self {
        ZoneMap::empty()
    }
}

/// The constraints a pushed-down predicate implies on zone-map dimensions.
/// Built by the query planner, checked per block before decompression.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneMapPruner {
    /// Surviving rows have key >= this.
    pub min_key: Option<i64>,
    /// Surviving rows have key <= this.
    pub max_key: Option<i64>,
    /// Surviving rows carry one of these tag hashes. `Some(vec![])` means
    /// the predicate admits no tag at all: every mapped block is skippable.
    pub tags: Option<Vec<u64>>,
}

impl ZoneMapPruner {
    /// True when no constraint was derived (pruning would be a no-op).
    pub fn is_trivial(&self) -> bool {
        self.min_key.is_none() && self.max_key.is_none() && self.tags.is_none()
    }

    /// Decides whether a block must be read. Fails open: `None` (no zone map
    /// for the block) always keeps it.
    pub fn keep(&self, zone: Option<&ZoneMap>) -> bool {
        let Some(z) = zone else { return true };
        if !z.key_overlaps(self.min_key, self.max_key) {
            return false;
        }
        if let Some(tags) = &self.tags {
            if !tags.iter().any(|t| z.may_contain_tag(*t)) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_tracks_range_and_bits() {
        let mut z = ZoneMap::empty();
        z.fold(10, tag_hash(b"a"));
        z.fold(-3, tag_hash(b"b"));
        assert_eq!((z.min_key, z.max_key, z.records), (-3, 10, 2));
        assert!(z.may_contain_tag(tag_hash(b"a")));
        assert!(z.may_contain_tag(tag_hash(b"b")));
    }

    #[test]
    fn key_overlap_bounds() {
        let mut z = ZoneMap::empty();
        z.fold(100, 0);
        z.fold(200, 0);
        assert!(z.key_overlaps(None, None));
        assert!(z.key_overlaps(Some(150), None));
        assert!(z.key_overlaps(None, Some(150)));
        assert!(z.key_overlaps(Some(200), Some(300)));
        assert!(!z.key_overlaps(Some(201), None));
        assert!(!z.key_overlaps(None, Some(99)));
    }

    #[test]
    fn bitmap_proves_absence_not_presence() {
        let mut z = ZoneMap::empty();
        z.fold(0, 5);
        assert!(z.may_contain_tag(5));
        assert!(z.may_contain_tag(5 + 64), "collisions keep the block");
        assert!(!z.may_contain_tag(6));
    }

    #[test]
    fn pruner_fails_open_without_zone() {
        let p = ZoneMapPruner {
            min_key: Some(0),
            max_key: Some(10),
            tags: Some(vec![1]),
        };
        assert!(p.keep(None), "no zone map → must read the block");
    }

    #[test]
    fn pruner_skips_disjoint_blocks() {
        let mut z = ZoneMap::empty();
        z.fold(100, tag_hash(b"click"));
        let in_range = ZoneMapPruner {
            min_key: Some(50),
            max_key: Some(150),
            tags: Some(vec![tag_hash(b"click")]),
        };
        assert!(in_range.keep(Some(&z)));
        let out_of_range = ZoneMapPruner {
            min_key: Some(101),
            ..Default::default()
        };
        assert!(!out_of_range.keep(Some(&z)));
        let wrong_tag = ZoneMapPruner {
            tags: Some(vec![tag_hash(b"impression")]),
            ..Default::default()
        };
        // Skips unless the hashes collide mod 64.
        assert_eq!(
            wrong_tag.keep(Some(&z)),
            tag_hash(b"impression") % 64 == tag_hash(b"click") % 64
        );
        let no_tags = ZoneMapPruner {
            tags: Some(vec![]),
            ..Default::default()
        };
        assert!(!no_tags.keep(Some(&z)), "empty tag set admits nothing");
    }

    #[test]
    fn trivial_pruner_keeps_everything() {
        let p = ZoneMapPruner::default();
        assert!(p.is_trivial());
        let mut z = ZoneMap::empty();
        z.fold(1, 1);
        assert!(p.keep(Some(&z)));
    }
}
