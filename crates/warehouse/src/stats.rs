//! Scan statistics.
//!
//! The paper's performance story is told in scans: session-reconstruction
//! jobs "routinely spawned tens of thousands of mappers … performing large
//! amounts of brute force scans" (§4.1). The warehouse counts every read so
//! experiments can report the same quantities.

use uli_obs::{Counter, Registry};

/// A snapshot of cumulative scan counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Record files opened for reading.
    pub files_opened: u64,
    /// Blocks decompressed. One block ≈ one HDFS block ≈ one map task's
    /// input split in the simulated cost model.
    pub blocks_read: u64,
    /// Compressed bytes read off "disk".
    pub compressed_bytes_read: u64,
    /// Bytes after decompression — what mappers actually process.
    pub uncompressed_bytes_read: u64,
    /// Individual records yielded to readers.
    pub records_read: u64,
    /// Blocks skipped without decompression thanks to index pushdown.
    pub blocks_skipped: u64,
    /// Blocks served from the decompressed-block cache. A hit still counts
    /// in `blocks_read` and `uncompressed_bytes_read`, but charges no
    /// `compressed_bytes_read` (nothing came off "disk").
    pub cache_hits: u64,
    /// Blocks that had to be decompressed because the cache missed.
    pub cache_misses: u64,
    /// Records decoded but dropped by a pushed-down predicate before any
    /// tuple reached the query plan.
    pub records_skipped_by_predicate: u64,
    /// Individual fields a lazy decoder skipped without materializing,
    /// thanks to projection pushdown.
    pub fields_skipped: u64,
    /// Cost-model bytes copied into per-record owned buffers by eager read
    /// paths (`read_all`, `read_block`). The borrowing visitor paths charge
    /// nothing here — the counter measures avoidable allocation churn.
    pub alloc_bytes: u64,
}

impl ScanStats {
    /// Difference of two snapshots (for measuring one query).
    pub fn since(&self, earlier: &ScanStats) -> ScanStats {
        ScanStats {
            files_opened: self.files_opened - earlier.files_opened,
            blocks_read: self.blocks_read - earlier.blocks_read,
            compressed_bytes_read: self.compressed_bytes_read - earlier.compressed_bytes_read,
            uncompressed_bytes_read: self.uncompressed_bytes_read - earlier.uncompressed_bytes_read,
            records_read: self.records_read - earlier.records_read,
            blocks_skipped: self.blocks_skipped - earlier.blocks_skipped,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            records_skipped_by_predicate: self.records_skipped_by_predicate
                - earlier.records_skipped_by_predicate,
            fields_skipped: self.fields_skipped - earlier.fields_skipped,
            alloc_bytes: self.alloc_bytes - earlier.alloc_bytes,
        }
    }

    /// Cache hits as a fraction of blocks read (0.0 when nothing was read).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Thread-safe counters behind the snapshots.
///
/// Every field is a `uli_obs::Counter` handle. A cell built with
/// `Default` holds detached counters (private accounting, exactly the old
/// `AtomicU64` behavior); one built with [`StatsCell::registered`] shares
/// its cells with a [`Registry`], so the exported snapshot and `ScanStats`
/// are two views of the *same* atomics and can never diverge.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    files_opened: Counter,
    blocks_read: Counter,
    compressed_bytes_read: Counter,
    uncompressed_bytes_read: Counter,
    records_read: Counter,
    blocks_skipped: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    records_skipped_by_predicate: Counter,
    fields_skipped: Counter,
    alloc_bytes: Counter,
}

impl StatsCell {
    /// A cell whose counters are registered under `component` in `registry`.
    pub(crate) fn registered(registry: &Registry, component: &str) -> StatsCell {
        StatsCell {
            files_opened: registry.counter(component, "files_opened"),
            blocks_read: registry.counter(component, "blocks_read"),
            compressed_bytes_read: registry.counter(component, "compressed_bytes_read"),
            uncompressed_bytes_read: registry.counter(component, "uncompressed_bytes_read"),
            records_read: registry.counter(component, "records_read"),
            blocks_skipped: registry.counter(component, "blocks_skipped"),
            cache_hits: registry.counter(component, "cache_hits"),
            cache_misses: registry.counter(component, "cache_misses"),
            records_skipped_by_predicate: registry
                .counter(component, "records_skipped_by_predicate"),
            fields_skipped: registry.counter(component, "fields_skipped"),
            alloc_bytes: registry.counter(component, "alloc_bytes"),
        }
    }

    pub(crate) fn snapshot(&self) -> ScanStats {
        ScanStats {
            files_opened: self.files_opened.get(),
            blocks_read: self.blocks_read.get(),
            compressed_bytes_read: self.compressed_bytes_read.get(),
            uncompressed_bytes_read: self.uncompressed_bytes_read.get(),
            records_read: self.records_read.get(),
            blocks_skipped: self.blocks_skipped.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            records_skipped_by_predicate: self.records_skipped_by_predicate.get(),
            fields_skipped: self.fields_skipped.get(),
            alloc_bytes: self.alloc_bytes.get(),
        }
    }

    pub(crate) fn reset(&self) {
        self.files_opened.set_total(0);
        self.blocks_read.set_total(0);
        self.compressed_bytes_read.set_total(0);
        self.uncompressed_bytes_read.set_total(0);
        self.records_read.set_total(0);
        self.blocks_skipped.set_total(0);
        self.cache_hits.set_total(0);
        self.cache_misses.set_total(0);
        self.records_skipped_by_predicate.set_total(0);
        self.fields_skipped.set_total(0);
        self.alloc_bytes.set_total(0);
    }

    pub(crate) fn file_opened(&self) {
        self.files_opened.inc();
    }

    pub(crate) fn block_read(&self, compressed: u64, uncompressed: u64) {
        self.blocks_read.inc();
        self.compressed_bytes_read.add(compressed);
        self.uncompressed_bytes_read.add(uncompressed);
    }

    /// A block served from the decompressed-block cache: logically read
    /// (blocks + uncompressed bytes) but with no compressed disk traffic.
    pub(crate) fn block_cache_hit(&self, uncompressed: u64) {
        self.blocks_read.inc();
        self.uncompressed_bytes_read.add(uncompressed);
        self.cache_hits.inc();
    }

    pub(crate) fn block_cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// A column chunk served from the decompressed-chunk cache: its
    /// uncompressed bytes were logically read, but the chunk came from
    /// memory, so no compressed bytes and — unlike a whole-block hit — no
    /// additional `blocks_read` (the enclosing row group already counted).
    pub(crate) fn chunk_cache_hit(&self, uncompressed: u64) {
        self.uncompressed_bytes_read.add(uncompressed);
        self.cache_hits.inc();
    }

    /// A column chunk that had to be decompressed because the cache missed.
    pub(crate) fn chunk_cache_miss(&self, uncompressed: u64) {
        self.uncompressed_bytes_read.add(uncompressed);
        self.cache_misses.inc();
    }

    pub(crate) fn record_read(&self) {
        self.records_read.inc();
    }

    pub(crate) fn records_read_n(&self, n: u64) {
        self.records_read.add(n);
    }

    pub(crate) fn block_skipped(&self) {
        self.blocks_skipped.inc();
    }

    /// Pushdown accounting: records dropped by a pushed predicate and fields
    /// a lazy decoder never materialized.
    pub(crate) fn pushdown_skips(&self, records_skipped: u64, fields_skipped: u64) {
        self.records_skipped_by_predicate.add(records_skipped);
        self.fields_skipped.add(fields_skipped);
    }

    /// Cost-model bytes copied into per-record owned buffers.
    pub(crate) fn record_alloc(&self, bytes: u64) {
        self.alloc_bytes.add(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let cell = StatsCell::default();
        cell.file_opened();
        cell.block_read(100, 400);
        cell.block_read(50, 200);
        cell.record_read();
        cell.block_skipped();
        let s = cell.snapshot();
        assert_eq!(s.files_opened, 1);
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.compressed_bytes_read, 150);
        assert_eq!(s.uncompressed_bytes_read, 600);
        assert_eq!(s.records_read, 1);
        assert_eq!(s.blocks_skipped, 1);
    }

    #[test]
    fn since_subtracts() {
        let cell = StatsCell::default();
        cell.block_read(10, 20);
        let before = cell.snapshot();
        cell.block_read(5, 9);
        let delta = cell.snapshot().since(&before);
        assert_eq!(delta.blocks_read, 1);
        assert_eq!(delta.compressed_bytes_read, 5);
        assert_eq!(delta.uncompressed_bytes_read, 9);
    }

    #[test]
    fn cache_hits_count_as_logical_reads() {
        let cell = StatsCell::default();
        cell.block_cache_miss();
        cell.block_read(100, 400);
        cell.block_cache_hit(400);
        cell.records_read_n(7);
        let s = cell.snapshot();
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.compressed_bytes_read, 100, "hits charge no disk bytes");
        assert_eq!(s.uncompressed_bytes_read, 800);
        assert_eq!(s.records_read, 7);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pushdown_counters_accumulate_and_subtract() {
        let cell = StatsCell::default();
        cell.pushdown_skips(3, 40);
        let before = cell.snapshot();
        cell.pushdown_skips(2, 2);
        let s = cell.snapshot();
        assert_eq!(s.records_skipped_by_predicate, 5);
        assert_eq!(s.fields_skipped, 42);
        let delta = s.since(&before);
        assert_eq!(delta.records_skipped_by_predicate, 2);
        assert_eq!(delta.fields_skipped, 2);
    }

    #[test]
    fn alloc_bytes_tracks_owned_copies() {
        let cell = StatsCell::default();
        cell.record_alloc(64);
        let before = cell.snapshot();
        cell.record_alloc(36);
        let s = cell.snapshot();
        assert_eq!(s.alloc_bytes, 100);
        assert_eq!(s.since(&before).alloc_bytes, 36);
        cell.reset();
        assert_eq!(cell.snapshot().alloc_bytes, 0);
    }

    #[test]
    fn reset_zeroes() {
        let cell = StatsCell::default();
        cell.file_opened();
        cell.reset();
        assert_eq!(cell.snapshot(), ScanStats::default());
    }

    #[test]
    fn registered_cell_shares_atomics_with_registry() {
        let registry = Registry::new();
        let cell = StatsCell::registered(&registry, "warehouse");
        cell.block_read(100, 400);
        cell.block_skipped();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("warehouse/blocks_read"), Some(1));
        assert_eq!(
            snap.counter_value("warehouse/compressed_bytes_read"),
            Some(100)
        );
        assert_eq!(snap.counter_value("warehouse/blocks_skipped"), Some(1));
        assert_eq!(cell.snapshot().blocks_read, 1, "same cells, same numbers");
        assert!(registry.duplicate_registrations().is_empty());
        cell.reset();
        assert_eq!(
            registry.snapshot().counter_value("warehouse/blocks_read"),
            Some(0)
        );
    }
}
