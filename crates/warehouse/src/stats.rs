//! Scan statistics.
//!
//! The paper's performance story is told in scans: session-reconstruction
//! jobs "routinely spawned tens of thousands of mappers … performing large
//! amounts of brute force scans" (§4.1). The warehouse counts every read so
//! experiments can report the same quantities.

use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of cumulative scan counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Record files opened for reading.
    pub files_opened: u64,
    /// Blocks decompressed. One block ≈ one HDFS block ≈ one map task's
    /// input split in the simulated cost model.
    pub blocks_read: u64,
    /// Compressed bytes read off "disk".
    pub compressed_bytes_read: u64,
    /// Bytes after decompression — what mappers actually process.
    pub uncompressed_bytes_read: u64,
    /// Individual records yielded to readers.
    pub records_read: u64,
    /// Blocks skipped without decompression thanks to index pushdown.
    pub blocks_skipped: u64,
    /// Blocks served from the decompressed-block cache. A hit still counts
    /// in `blocks_read` and `uncompressed_bytes_read`, but charges no
    /// `compressed_bytes_read` (nothing came off "disk").
    pub cache_hits: u64,
    /// Blocks that had to be decompressed because the cache missed.
    pub cache_misses: u64,
    /// Records decoded but dropped by a pushed-down predicate before any
    /// tuple reached the query plan.
    pub records_skipped_by_predicate: u64,
    /// Individual fields a lazy decoder skipped without materializing,
    /// thanks to projection pushdown.
    pub fields_skipped: u64,
}

impl ScanStats {
    /// Difference of two snapshots (for measuring one query).
    pub fn since(&self, earlier: &ScanStats) -> ScanStats {
        ScanStats {
            files_opened: self.files_opened - earlier.files_opened,
            blocks_read: self.blocks_read - earlier.blocks_read,
            compressed_bytes_read: self.compressed_bytes_read - earlier.compressed_bytes_read,
            uncompressed_bytes_read: self.uncompressed_bytes_read - earlier.uncompressed_bytes_read,
            records_read: self.records_read - earlier.records_read,
            blocks_skipped: self.blocks_skipped - earlier.blocks_skipped,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            records_skipped_by_predicate: self.records_skipped_by_predicate
                - earlier.records_skipped_by_predicate,
            fields_skipped: self.fields_skipped - earlier.fields_skipped,
        }
    }

    /// Cache hits as a fraction of blocks read (0.0 when nothing was read).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Thread-safe counters behind the snapshots.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    files_opened: AtomicU64,
    blocks_read: AtomicU64,
    compressed_bytes_read: AtomicU64,
    uncompressed_bytes_read: AtomicU64,
    records_read: AtomicU64,
    blocks_skipped: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    records_skipped_by_predicate: AtomicU64,
    fields_skipped: AtomicU64,
}

impl StatsCell {
    pub(crate) fn snapshot(&self) -> ScanStats {
        ScanStats {
            files_opened: self.files_opened.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            compressed_bytes_read: self.compressed_bytes_read.load(Ordering::Relaxed),
            uncompressed_bytes_read: self.uncompressed_bytes_read.load(Ordering::Relaxed),
            records_read: self.records_read.load(Ordering::Relaxed),
            blocks_skipped: self.blocks_skipped.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            records_skipped_by_predicate: self.records_skipped_by_predicate.load(Ordering::Relaxed),
            fields_skipped: self.fields_skipped.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.files_opened.store(0, Ordering::Relaxed);
        self.blocks_read.store(0, Ordering::Relaxed);
        self.compressed_bytes_read.store(0, Ordering::Relaxed);
        self.uncompressed_bytes_read.store(0, Ordering::Relaxed);
        self.records_read.store(0, Ordering::Relaxed);
        self.blocks_skipped.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.records_skipped_by_predicate
            .store(0, Ordering::Relaxed);
        self.fields_skipped.store(0, Ordering::Relaxed);
    }

    pub(crate) fn file_opened(&self) {
        self.files_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn block_read(&self, compressed: u64, uncompressed: u64) {
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.compressed_bytes_read
            .fetch_add(compressed, Ordering::Relaxed);
        self.uncompressed_bytes_read
            .fetch_add(uncompressed, Ordering::Relaxed);
    }

    /// A block served from the decompressed-block cache: logically read
    /// (blocks + uncompressed bytes) but with no compressed disk traffic.
    pub(crate) fn block_cache_hit(&self, uncompressed: u64) {
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.uncompressed_bytes_read
            .fetch_add(uncompressed, Ordering::Relaxed);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn block_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_read(&self) {
        self.records_read.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn records_read_n(&self, n: u64) {
        self.records_read.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn block_skipped(&self) {
        self.blocks_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Pushdown accounting: records dropped by a pushed predicate and fields
    /// a lazy decoder never materialized.
    pub(crate) fn pushdown_skips(&self, records_skipped: u64, fields_skipped: u64) {
        self.records_skipped_by_predicate
            .fetch_add(records_skipped, Ordering::Relaxed);
        self.fields_skipped
            .fetch_add(fields_skipped, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let cell = StatsCell::default();
        cell.file_opened();
        cell.block_read(100, 400);
        cell.block_read(50, 200);
        cell.record_read();
        cell.block_skipped();
        let s = cell.snapshot();
        assert_eq!(s.files_opened, 1);
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.compressed_bytes_read, 150);
        assert_eq!(s.uncompressed_bytes_read, 600);
        assert_eq!(s.records_read, 1);
        assert_eq!(s.blocks_skipped, 1);
    }

    #[test]
    fn since_subtracts() {
        let cell = StatsCell::default();
        cell.block_read(10, 20);
        let before = cell.snapshot();
        cell.block_read(5, 9);
        let delta = cell.snapshot().since(&before);
        assert_eq!(delta.blocks_read, 1);
        assert_eq!(delta.compressed_bytes_read, 5);
        assert_eq!(delta.uncompressed_bytes_read, 9);
    }

    #[test]
    fn cache_hits_count_as_logical_reads() {
        let cell = StatsCell::default();
        cell.block_cache_miss();
        cell.block_read(100, 400);
        cell.block_cache_hit(400);
        cell.records_read_n(7);
        let s = cell.snapshot();
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.compressed_bytes_read, 100, "hits charge no disk bytes");
        assert_eq!(s.uncompressed_bytes_read, 800);
        assert_eq!(s.records_read, 7);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pushdown_counters_accumulate_and_subtract() {
        let cell = StatsCell::default();
        cell.pushdown_skips(3, 40);
        let before = cell.snapshot();
        cell.pushdown_skips(2, 2);
        let s = cell.snapshot();
        assert_eq!(s.records_skipped_by_predicate, 5);
        assert_eq!(s.fields_skipped, 42);
        let delta = s.since(&before);
        assert_eq!(delta.records_skipped_by_predicate, 2);
        assert_eq!(delta.fields_skipped, 2);
    }

    #[test]
    fn reset_zeroes() {
        let cell = StatsCell::default();
        cell.file_opened();
        cell.reset();
        assert_eq!(cell.snapshot(), ScanStats::default());
    }
}
