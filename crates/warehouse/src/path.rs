//! Warehouse paths.

use crate::error::{WarehouseError, WarehouseResult};

/// A validated absolute warehouse path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WhPath(String);

impl WhPath {
    /// Parses and validates: absolute, `/`-separated, non-empty segments,
    /// no `.`/`..`, no trailing slash (except the root itself).
    pub fn parse(path: &str) -> WarehouseResult<WhPath> {
        if path == "/" {
            return Ok(WhPath("/".to_string()));
        }
        if !path.starts_with('/') || path.ends_with('/') {
            return Err(WarehouseError::BadPath(path.to_string()));
        }
        for seg in path[1..].split('/') {
            if seg.is_empty() || seg == "." || seg == ".." {
                return Err(WarehouseError::BadPath(path.to_string()));
            }
        }
        Ok(WhPath(path.to_string()))
    }

    /// The root path `/`.
    pub fn root() -> WhPath {
        WhPath("/".to_string())
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The parent directory; `None` for the root.
    pub fn parent(&self) -> Option<WhPath> {
        if self.0 == "/" {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(WhPath("/".to_string())),
            Some(i) => Some(WhPath(self.0[..i].to_string())),
            None => None,
        }
    }

    /// Final segment name; empty for the root.
    pub fn name(&self) -> &str {
        if self.0 == "/" {
            return "";
        }
        &self.0[self.0.rfind('/').map_or(0, |i| i + 1)..]
    }

    /// Joins a child segment.
    pub fn child(&self, name: &str) -> WarehouseResult<WhPath> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(WarehouseError::BadPath(format!("{}/{}", self.0, name)));
        }
        if self.0 == "/" {
            Ok(WhPath(format!("/{name}")))
        } else {
            Ok(WhPath(format!("{}/{}", self.0, name)))
        }
    }

    /// All ancestor directories from the root down, excluding `self`.
    pub fn ancestors(&self) -> Vec<WhPath> {
        let mut out = Vec::new();
        let mut cur = self.parent();
        while let Some(p) = cur {
            cur = p.parent();
            out.push(p);
        }
        out.reverse();
        out
    }

    /// True if `self` equals `dir` or lives underneath it.
    pub fn starts_with(&self, dir: &WhPath) -> bool {
        if dir.0 == "/" {
            return true;
        }
        self.0 == dir.0 || self.0.starts_with(&format!("{}/", dir.0))
    }
}

impl std::fmt::Display for WhPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_validates() {
        assert!(WhPath::parse("/logs/client_events/2012/08/21/14").is_ok());
        assert!(WhPath::parse("/").is_ok());
        for bad in ["", "logs", "/a/", "/a//b", "/a/../b", "/./a"] {
            assert!(WhPath::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parent_name_child() {
        let p = WhPath::parse("/logs/ce/part-0").unwrap();
        assert_eq!(p.name(), "part-0");
        assert_eq!(p.parent().unwrap().as_str(), "/logs/ce");
        assert_eq!(WhPath::root().child("logs").unwrap().as_str(), "/logs");
        assert!(p.child("a/b").is_err());
    }

    #[test]
    fn ancestors_in_order() {
        let p = WhPath::parse("/a/b/c").unwrap();
        let anc: Vec<String> = p
            .ancestors()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(anc, vec!["/", "/a", "/a/b"]);
    }

    #[test]
    fn starts_with_prefix_semantics() {
        let p = WhPath::parse("/logs/ce/file").unwrap();
        assert!(p.starts_with(&WhPath::parse("/logs").unwrap()));
        assert!(p.starts_with(&WhPath::root()));
        assert!(p.starts_with(&p.clone()));
        // Segment-aware: /logs/ce2 is not a prefix of /logs/ce/file.
        assert!(!p.starts_with(&WhPath::parse("/logs/c").unwrap()));
        assert!(!WhPath::parse("/logs2")
            .unwrap()
            .starts_with(&WhPath::parse("/logs").unwrap()));
    }
}
