//! An HDFS-lite data warehouse.
//!
//! In the paper, aggregated logs land on per-datacenter staging Hadoop
//! clusters and are then moved into the main Hadoop data warehouse, deposited
//! in "per-category, per-hour directories (e.g. `/logs/category/YYYY/MM/DD/HH/`)"
//! with "log messages bundled in a small number of large files" (§2). This
//! crate provides that substrate, scaled to a single process:
//!
//! * a hierarchical, in-memory filesystem ([`store::Warehouse`]) with the
//!   **atomic rename** the log-mover pipeline relies on to "atomically slide
//!   an hour's worth of logs into the main data warehouse";
//! * **block-structured record files** (the [`mod@file`] module): records are packed into
//!   fixed-capacity blocks, each independently compressed and checksummed —
//!   a block stands in for an HDFS block and hence for one map task;
//! * our own LZ-style compression ([`compress`]), standing in for the
//!   "compressing data on the fly" the aggregators perform; and
//! * **scan statistics** ([`stats::ScanStats`]): files opened, blocks read,
//!   compressed/uncompressed bytes — the currency in which the paper's
//!   performance arguments (brute-force scans, mapper counts) are expressed.
//!
//! # Example
//!
//! ```
//! use uli_warehouse::{Warehouse, WhPath};
//!
//! let wh = Warehouse::with_block_capacity(1 << 16);
//! let path = WhPath::parse("/logs/client_events/2012/08/21/14/part-00000.ulz").unwrap();
//! let mut w = wh.create(&path).unwrap();
//! for i in 0..1000u32 {
//!     w.append_record(format!("record {i}").as_bytes());
//! }
//! w.finish().unwrap();
//!
//! let mut records = 0;
//! let mut reader = wh.open(&path).unwrap();
//! while let Some(rec) = reader.next_record().unwrap() {
//!     assert!(rec.starts_with(b"record "));
//!     records += 1;
//! }
//! assert_eq!(records, 1000);
//! assert!(wh.stats().uncompressed_bytes_read > 0);
//! ```

pub mod cache;
pub mod columnar;
pub mod compress;
pub mod error;
pub mod file;
pub mod hourly;
pub mod path;
pub mod pool;
pub mod spill;
pub mod stats;
pub mod store;
pub mod zone;

pub use cache::{BlockCache, CacheStats, DEFAULT_CACHE_CAPACITY};
pub use columnar::{
    sniff_columnar, ColumnCell, ColumnGroup, ColumnarFile, ColumnarFileWriter, ColumnarLanding,
    ColumnarReader, ColumnarScanStats, ColumnarWriter, COLUMNAR_MAGIC, COLUMNAR_VERSION,
};
pub use compress::CompressorPool;
pub use error::{WarehouseError, WarehouseResult};
pub use file::{FileBlocks, RecordFileReader, RecordFileWriter};
pub use hourly::HourlyPartition;
pub use path::WhPath;
pub use pool::{Parallelism, ScanPool};
pub use spill::{
    scratch_dir, spill_root, ExternalByteSorter, MemoryTracker, SortedRuns, SpillDirGuard,
    ENTRY_OVERHEAD,
};
pub use stats::ScanStats;
pub use store::{FileMeta, Warehouse};
pub use zone::{tag_hash, ZoneMap, ZoneMapPruner};
