//! Per-category, per-hour partition naming.
//!
//! "Logs arrive in the main data warehouse and are deposited in per-category,
//! per-hour directories (e.g., `/logs/category/YYYY/MM/DD/HH/`)" (§2).

use crate::error::{WarehouseError, WarehouseResult};
use crate::path::WhPath;

/// Identifies one hour of one log category.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HourlyPartition {
    /// Scribe category, e.g. `client_events`.
    pub category: String,
    /// Year (e.g. 2012).
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
}

impl HourlyPartition {
    /// Builds a partition, validating the calendar fields.
    pub fn new(
        category: impl Into<String>,
        year: u16,
        month: u8,
        day: u8,
        hour: u8,
    ) -> WarehouseResult<Self> {
        let category = category.into();
        if category.is_empty()
            || category.contains('/')
            || !(1..=12).contains(&month)
            || !(1..=31).contains(&day)
            || hour > 23
        {
            return Err(WarehouseError::BadPath(format!(
                "{category}/{year}/{month}/{day}/{hour}"
            )));
        }
        Ok(HourlyPartition {
            category,
            year,
            month,
            day,
            hour,
        })
    }

    /// Builds a partition from an hour index (hours since epoch hour zero in
    /// a simplified 30-day-month calendar used by the simulation clock).
    ///
    /// The simulation timestamps are milliseconds since an arbitrary origin;
    /// we map them to a synthetic calendar starting 2012-08-01 00:00.
    pub fn from_hour_index(category: impl Into<String>, hour_index: u64) -> Self {
        let hour = (hour_index % 24) as u8;
        let days = hour_index / 24;
        let day = (days % 30 + 1) as u8;
        let months = days / 30;
        let month = ((7 + months) % 12 + 1) as u8;
        let year = (2012 + (7 + months) / 12) as u16;
        HourlyPartition {
            category: category.into(),
            year,
            month,
            day,
            hour,
        }
    }

    /// The hour index this partition covers — the inverse of
    /// [`HourlyPartition::from_hour_index`] under the same synthetic
    /// 30-day-month calendar.
    pub fn hour_index(&self) -> u64 {
        let months = (self.year as u64 - 2012) * 12 + self.month as u64 - 1 - 7;
        ((months * 30 + self.day as u64 - 1) * 24) + self.hour as u64
    }

    /// The directory under the main warehouse: `/logs/<cat>/YYYY/MM/DD/HH`.
    pub fn main_dir(&self) -> WhPath {
        WhPath::parse(&format!(
            "/logs/{}/{:04}/{:02}/{:02}/{:02}",
            self.category, self.year, self.month, self.day, self.hour
        ))
        .expect("constructed path is valid")
    }

    /// The staging directory used while an hour is being assembled, sibling
    /// to the final location so the final move is a pure rename.
    pub fn staging_dir(&self) -> WhPath {
        WhPath::parse(&format!(
            "/staging/{}/{:04}/{:02}/{:02}/{:02}",
            self.category, self.year, self.month, self.day, self.hour
        ))
        .expect("constructed path is valid")
    }

    /// Next hour, rolling over day/month/year in the simplified calendar.
    pub fn next_hour(&self) -> Self {
        let mut p = self.clone();
        p.hour += 1;
        if p.hour == 24 {
            p.hour = 0;
            p.day += 1;
            if p.day > 30 {
                p.day = 1;
                p.month += 1;
                if p.month > 12 {
                    p.month = 1;
                    p.year += 1;
                }
            }
        }
        p
    }
}

impl std::fmt::Display for HourlyPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{:04}/{:02}/{:02}/{:02}",
            self.category, self.year, self.month, self.day, self.hour
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_calendar_fields() {
        assert!(HourlyPartition::new("ce", 2012, 8, 21, 14).is_ok());
        assert!(HourlyPartition::new("", 2012, 8, 21, 14).is_err());
        assert!(HourlyPartition::new("a/b", 2012, 8, 21, 14).is_err());
        assert!(HourlyPartition::new("ce", 2012, 0, 21, 14).is_err());
        assert!(HourlyPartition::new("ce", 2012, 13, 21, 14).is_err());
        assert!(HourlyPartition::new("ce", 2012, 8, 0, 14).is_err());
        assert!(HourlyPartition::new("ce", 2012, 8, 32, 14).is_err());
        assert!(HourlyPartition::new("ce", 2012, 8, 21, 24).is_err());
    }

    #[test]
    fn directory_layout_matches_paper() {
        let p = HourlyPartition::new("client_events", 2012, 8, 21, 9).unwrap();
        assert_eq!(p.main_dir().as_str(), "/logs/client_events/2012/08/21/09");
        assert_eq!(
            p.staging_dir().as_str(),
            "/staging/client_events/2012/08/21/09"
        );
    }

    #[test]
    fn hour_index_mapping_is_stable() {
        let p = HourlyPartition::from_hour_index("ce", 0);
        assert_eq!((p.year, p.month, p.day, p.hour), (2012, 8, 1, 0));
        let p = HourlyPartition::from_hour_index("ce", 25);
        assert_eq!((p.year, p.month, p.day, p.hour), (2012, 8, 2, 1));
        // 30 synthetic days later: next month.
        let p = HourlyPartition::from_hour_index("ce", 24 * 30);
        assert_eq!((p.year, p.month, p.day), (2012, 9, 1));
    }

    #[test]
    fn hour_index_round_trips() {
        for idx in [0u64, 1, 23, 24, 25, 24 * 30, 24 * 30 * 5 + 7, 24 * 365] {
            let p = HourlyPartition::from_hour_index("ce", idx);
            assert_eq!(p.hour_index(), idx, "round trip at {idx}");
        }
    }

    #[test]
    fn next_hour_rolls_over() {
        let p = HourlyPartition::new("ce", 2012, 12, 30, 23).unwrap();
        let n = p.next_hour();
        assert_eq!((n.year, n.month, n.day, n.hour), (2013, 1, 1, 0));
    }
}
