//! Worker-pool parallelism for scans.
//!
//! The paper's query layer owes its throughput to fan-out: "tens of
//! thousands of mappers" chew through blocks in parallel (§4.1). This module
//! is the single-process analogue — a [`ScanPool`] that maps a function over
//! a work list on `N` OS threads while keeping results in **deterministic
//! input order**, so parallel scans produce byte-identical output to serial
//! ones.
//!
//! [`Parallelism`] is the knob threaded through every layer that scans
//! (dataflow engine, sessionizer, benches): `Parallelism::serial()` restores
//! the original single-threaded code paths exactly; the default follows the
//! host's available parallelism.

use parking_lot::Mutex;

/// How many worker threads a scan may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// One worker: scans run inline on the calling thread, exactly as they
    /// did before the pool existed.
    pub fn serial() -> Self {
        Parallelism(1)
    }

    /// Exactly `workers` threads (clamped up to 1).
    pub fn fixed(workers: usize) -> Self {
        Parallelism(workers.max(1))
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Parallelism(n)
    }

    /// The worker count.
    pub fn workers(self) -> usize {
        self.0
    }

    /// True when scans run inline on the calling thread.
    pub fn is_serial(self) -> bool {
        self.0 == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl From<usize> for Parallelism {
    fn from(workers: usize) -> Self {
        Parallelism::fixed(workers)
    }
}

/// A scoped worker pool that maps a function over a work list.
///
/// Work items are handed out dynamically (a shared queue, not static
/// striping) so a straggler block cannot idle the other workers, but results
/// are returned **in input order** regardless of completion order.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanPool {
    parallelism: Parallelism,
}

impl ScanPool {
    /// A pool that uses `parallelism` workers per [`ScanPool::map`] call.
    /// Threads are scoped to each call; nothing lingers between calls.
    pub fn new(parallelism: Parallelism) -> Self {
        ScanPool { parallelism }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.parallelism.workers()
    }

    /// Applies `f` to every item and returns the results in input order.
    ///
    /// `f` receives `(input_index, item)`. With one worker (or one item) the
    /// map runs inline on the calling thread — no threads are spawned, no
    /// ordering differences are possible. A panic in any worker propagates
    /// to the caller.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n_workers = self.workers().min(items.len());
        if n_workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }
        let len = items.len();
        let queue = Mutex::new(items.into_iter().enumerate());
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, T)> = Vec::new();
                        loop {
                            // Take one item per lock so big items don't
                            // serialize behind the queue.
                            let next = queue.lock().next();
                            match next {
                                Some((idx, item)) => done.push((idx, f(idx, item))),
                                None => return done,
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("scan worker panicked"))
                .collect::<Vec<_>>()
        });
        // Re-sequence by input index: completion order is nondeterministic,
        // output order must not be.
        let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
        for (idx, value) in collected {
            debug_assert!(slots[idx].is_none(), "duplicate work item {idx}");
            slots[idx] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("worker dropped an item"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallelism_clamps_and_defaults() {
        assert_eq!(Parallelism::serial().workers(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::fixed(0).workers(), 1);
        assert_eq!(Parallelism::fixed(6).workers(), 6);
        assert!(Parallelism::auto().workers() >= 1);
        assert_eq!(Parallelism::from(4), Parallelism::fixed(4));
    }

    #[test]
    fn map_preserves_input_order() {
        let pool = ScanPool::new(Parallelism::fixed(4));
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map(items, |idx, x| {
            assert_eq!(idx as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let serial = ScanPool::new(Parallelism::serial()).map(items.clone(), |i, s| (i, s));
        let parallel = ScanPool::new(Parallelism::fixed(8)).map(items, |i, s| (i, s));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn work_is_shared_across_threads() {
        let pool = ScanPool::new(Parallelism::fixed(4));
        let seen = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        pool.map(items, |_, _| {
            seen.lock().insert(std::thread::current().id());
            // Give other workers a chance to grab queue items.
            std::thread::yield_now();
        });
        // With 4 workers and 64 items at least two threads should have
        // participated; exact count is scheduler-dependent.
        assert!(seen.lock().len() >= 2, "work never left one thread");
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = ScanPool::new(Parallelism::fixed(8));
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(empty, |_, x| x).is_empty());
        assert_eq!(pool.map(vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let pool = ScanPool::new(Parallelism::fixed(3));
        let calls = AtomicUsize::new(0);
        let out = pool.map((0..500usize).collect(), |_, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }
}
