//! `ulz`: a small LZ-style block compressor.
//!
//! The aggregators "write the merged results to HDFS … compressing data on
//! the fly" (§2). The approved dependency set has no compression crate, so we
//! implement a simple byte-oriented LZ77 variant: greedy matching against a
//! 64 KiB window via a 4-byte hash table, literals in runs, matches as
//! (length, distance) tokens with varint distances.
//!
//! ## Format
//!
//! A compressed buffer is `varint(uncompressed_len)` followed by tokens:
//!
//! * `0x00..=0x7f`: literal run; token value + 1 literal bytes follow.
//! * `0x80..=0xff`: match; length = `(token & 0x7f) + MIN_MATCH`, followed by
//!   a varint distance (≥ 1). Distances may be smaller than the length
//!   (overlapping copy), which encodes runs cheaply.
//!
//! The format is deliberately simple; the point is realistic compression
//! *behaviour* (repetitive log text shrinks a lot, random bytes do not), not
//! a competitive ratio.

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length a single token can express.
const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Window size: matches may reach at most this far back.
const WINDOW: usize = 1 << 16;
/// Hash table size (power of two).
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Compresses `input`, returning the `ulz` byte stream.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_varint(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0;
    let mut literal_start = 0;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;

        let found = candidate != usize::MAX
            && pos - candidate <= WINDOW
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if found {
            // Extend the match.
            let mut len = MIN_MATCH;
            let max = (input.len() - pos).min(MAX_MATCH);
            while len < max && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            flush_literals(&mut out, &input[literal_start..pos]);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            write_varint(&mut out, (pos - candidate) as u64);
            // Seed the table inside the match so later data can refer to it.
            let end = pos + len;
            pos += 1;
            while pos < end && pos + MIN_MATCH <= input.len() {
                table[hash4(&input[pos..])] = pos;
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, &input[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

/// A streaming `ulz` compressor that owns its hash table and buffers, so a
/// writer sealing many blocks reuses one allocation set instead of paying a
/// fresh 32 K-entry table plus output buffer per block.
///
/// Feed bytes with [`Compressor::write`]; tokens are emitted incrementally,
/// but only for positions whose greedy outcome is already fixed — a match
/// can extend up to [`MAX_MATCH`] bytes and seeds the hash table up to
/// [`MIN_MATCH`] bytes short of its end, so a position is deferred until
/// `MAX_MATCH + MIN_MATCH` lookahead bytes exist (or the block is being
/// finished). That margin makes the token stream, and the hash-table state
/// it leaves behind, byte-for-byte identical to running [`compress`] on the
/// concatenated input, regardless of how the input was chunked.
#[derive(Debug)]
pub struct Compressor {
    table: Vec<usize>,
    /// Uncompressed bytes of the current block — also the match window.
    input: Vec<u8>,
    /// Token stream; the length header is prepended at `finish_block`.
    tokens: Vec<u8>,
    pos: usize,
    literal_start: usize,
}

impl Default for Compressor {
    fn default() -> Self {
        Compressor::new()
    }
}

impl Compressor {
    /// A fresh compressor with an empty current block.
    pub fn new() -> Self {
        Compressor {
            table: vec![usize::MAX; 1 << HASH_BITS],
            input: Vec::new(),
            tokens: Vec::new(),
            pos: 0,
            literal_start: 0,
        }
    }

    /// Appends `bytes` to the current block and compresses as far as the
    /// greedy matcher's outcome is already final.
    pub fn write(&mut self, bytes: &[u8]) {
        self.input.extend_from_slice(bytes);
        self.advance(false);
    }

    /// Uncompressed bytes buffered in the current block so far.
    pub fn pending_len(&self) -> usize {
        self.input.len()
    }

    /// True when nothing has been written since the last `finish_block`.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// Seals the current block: drains the remaining input, prepends the
    /// length header, and returns the complete `ulz` stream. The compressor
    /// resets (reusing its allocations) and is ready for the next block.
    pub fn finish_block(&mut self) -> Vec<u8> {
        self.advance(true);
        flush_literals(&mut self.tokens, &self.input[self.literal_start..]);
        let mut out = Vec::with_capacity(self.tokens.len() + 10);
        write_varint(&mut out, self.input.len() as u64);
        out.extend_from_slice(&self.tokens);
        self.table.fill(usize::MAX);
        self.input.clear();
        self.tokens.clear();
        self.pos = 0;
        self.literal_start = 0;
        out
    }

    /// The incremental core: the same greedy matcher as [`compress`], run
    /// only over positions whose outcome no future input can change (unless
    /// `finalize`, when the whole tail is drained).
    fn advance(&mut self, finalize: bool) {
        let Compressor {
            table,
            input,
            tokens,
            pos,
            literal_start,
        } = self;
        let len = input.len();
        while *pos + MIN_MATCH <= len {
            // A match starting here could reach MAX_MATCH bytes and seed
            // the table for positions needing MIN_MATCH of lookahead; defer
            // until that horizon is buffered so the outcome is final.
            if !finalize && *pos + MAX_MATCH + MIN_MATCH > len {
                break;
            }
            let h = hash4(&input[*pos..]);
            let candidate = table[h];
            table[h] = *pos;

            let found = candidate != usize::MAX
                && *pos - candidate <= WINDOW
                && input[candidate..candidate + MIN_MATCH] == input[*pos..*pos + MIN_MATCH];
            if found {
                let mut mlen = MIN_MATCH;
                let max = (len - *pos).min(MAX_MATCH);
                while mlen < max && input[candidate + mlen] == input[*pos + mlen] {
                    mlen += 1;
                }
                flush_literals(tokens, &input[*literal_start..*pos]);
                tokens.push(0x80 | (mlen - MIN_MATCH) as u8);
                write_varint(tokens, (*pos - candidate) as u64);
                let end = *pos + mlen;
                *pos += 1;
                while *pos < end && *pos + MIN_MATCH <= len {
                    table[hash4(&input[*pos..])] = *pos;
                    *pos += 1;
                }
                *pos = end;
                *literal_start = end;
            } else {
                *pos += 1;
            }
        }
    }
}

/// Initial decompression buffer: grown to the declared length only once the
/// stream has actually produced this much output, so a hostile header can
/// never force a large allocation up front.
const DECOMPRESS_PREALLOC: usize = 64 * 1024;

/// Decompresses a `ulz` stream. Returns `None` on any structural error.
/// Hostile input never panics, never produces more than the declared
/// uncompressed length, and never allocates past it either: the output
/// buffer starts small and is grown with `reserve_exact` toward the
/// declared length only as real output accumulates.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0;
    let expected = read_varint(input, &mut pos)? as usize;
    // Sanity bound: refuse to produce more than 1 GiB for one block.
    if expected > (1 << 30) {
        return None;
    }
    let mut out = Vec::with_capacity(expected.min(DECOMPRESS_PREALLOC));
    let grow = |out: &mut Vec<u8>, n: usize| -> Option<()> {
        // Reject streams that overrun the declared length before writing a
        // byte past it (the one-shot final check would catch them anyway,
        // but bailing early bounds both memory and work).
        if expected - out.len() < n {
            return None;
        }
        if out.capacity() - out.len() < n {
            out.reserve_exact(expected - out.len());
        }
        Some(())
    };
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        if token < 0x80 {
            let n = usize::from(token) + 1;
            let lits = input.get(pos..pos + n)?;
            grow(&mut out, n)?;
            out.extend_from_slice(lits);
            pos += n;
        } else {
            let len = usize::from(token & 0x7f) + MIN_MATCH;
            let dist = read_varint(input, &mut pos)? as usize;
            if dist == 0 || dist > out.len() {
                return None;
            }
            grow(&mut out, len)?;
            let start = out.len() - dist;
            // Overlapping copies must proceed byte by byte.
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    (out.len() == expected).then_some(out)
}

/// A pool of reusable [`Compressor`] instances for multi-worker writers.
///
/// A fresh `Compressor` pays a 32 K-entry hash table plus buffer growth; a
/// delivery worker sealing dozens of files per hour would re-pay that per
/// file. The pool hands out reset compressors (`checkout`) and takes them
/// back (`recycle`) so each worker converges on one warm allocation set that
/// survives across blocks, files, and hours. Checkout never blocks: if the
/// pool is empty a new compressor is built on the spot.
#[derive(Debug, Default)]
pub struct CompressorPool {
    idle: parking_lot::Mutex<Vec<Compressor>>,
}

impl CompressorPool {
    /// An empty pool; compressors are created lazily on first checkout.
    pub fn new() -> Self {
        CompressorPool::default()
    }

    /// Takes an idle compressor, or builds a fresh one if none is available.
    pub fn checkout(&self) -> Compressor {
        self.idle.lock().pop().unwrap_or_default()
    }

    /// Returns a compressor to the pool for reuse. Any half-written block is
    /// discarded so the next checkout starts clean.
    pub fn recycle(&self, mut compressor: Compressor) {
        if !compressor.is_empty() {
            let _ = compressor.finish_block();
        }
        self.idle.lock().push(compressor);
    }

    /// Number of compressors currently idle in the pool.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).as_deref(), Some(data));
    }

    #[test]
    fn pool_recycles_and_reused_compressor_is_byte_identical() {
        let pool = CompressorPool::new();
        assert_eq!(pool.idle_len(), 0);
        let mut c = pool.checkout();
        let data = b"the quick brown fox jumps over the quick brown fox".repeat(20);
        c.write(&data);
        let first = c.finish_block();
        pool.recycle(c);
        assert_eq!(pool.idle_len(), 1);
        // A recycled compressor produces the same stream as a fresh one.
        let mut c = pool.checkout();
        assert_eq!(pool.idle_len(), 0);
        c.write(&data);
        assert_eq!(c.finish_block(), first);
        assert_eq!(first, compress(&data));
        // Recycling a dirty compressor discards the half-written block.
        c.write(b"leftover");
        pool.recycle(c);
        let mut c = pool.checkout();
        assert!(c.is_empty());
        c.write(&data);
        assert_eq!(c.finish_block(), first);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_text_shrinks() {
        let line = b"web:home:mentions:stream:avatar:profile_click\tuid=12345\n";
        let mut data = Vec::new();
        for _ in 0..500 {
            data.extend_from_slice(line);
        }
        let c = compress(&data);
        assert!(
            c.len() * 10 < data.len(),
            "repetitive logs should compress >10x, got {} / {}",
            c.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn run_of_one_byte_uses_overlapping_copy() {
        let data = vec![b'x'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200, "run should be tiny, got {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        // A pseudo-random, non-repeating sequence.
        let mut state = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let c = compress(&data);
        // Worst case: 1 token byte per 128 literals plus the length prefix.
        assert!(c.len() <= data.len() + data.len() / 128 + 16);
        round_trip(&data);
    }

    #[test]
    fn corrupt_stream_is_rejected_not_panicking() {
        let c = compress(b"hello hello hello hello hello");
        // Truncations.
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut]); // must not panic
        }
        // Bit flips.
        for i in 0..c.len() {
            let mut bad = c.clone();
            bad[i] ^= 0xff;
            let _ = decompress(&bad); // must not panic
        }
    }

    #[test]
    fn invalid_distance_is_rejected() {
        let mut bad = Vec::new();
        write_varint(&mut bad, 8);
        bad.push(0x00); // literal run of 1
        bad.push(b'a');
        bad.push(0x80); // match of MIN_MATCH
        write_varint(&mut bad, 99); // distance beyond output
        assert_eq!(decompress(&bad), None);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut bad = Vec::new();
        write_varint(&mut bad, 100); // claims 100 bytes
        bad.push(0x00);
        bad.push(b'a'); // delivers 1
        assert_eq!(decompress(&bad), None);
    }

    /// Feeds `data` to a streaming compressor in the given chunk sizes and
    /// returns the sealed block.
    fn stream_compress(c: &mut Compressor, data: &[u8], chunks: &[usize]) -> Vec<u8> {
        let mut rest = data;
        for &n in chunks {
            let n = n.min(rest.len());
            c.write(&rest[..n]);
            rest = &rest[n..];
        }
        c.write(rest);
        c.finish_block()
    }

    #[test]
    fn streaming_matches_one_shot_on_fixtures() {
        let line = b"web:home:mentions:stream:avatar:profile_click\tuid=12345\n";
        let mut data = Vec::new();
        for _ in 0..300 {
            data.extend_from_slice(line);
        }
        let mut c = Compressor::new();
        for chunks in [&[][..], &[1][..], &[7, 13, 1000][..], &[56][..]] {
            assert_eq!(
                stream_compress(&mut c, &data, chunks),
                compress(&data),
                "chunking {chunks:?} must not change the token stream"
            );
        }
        // The reset compressor handles an empty block like the one-shot.
        assert_eq!(c.finish_block(), compress(b""));
        assert_eq!(stream_compress(&mut c, b"abcd", &[2]), compress(b"abcd"));
    }

    #[test]
    fn compressor_resets_between_blocks() {
        let a = vec![b'x'; 5000];
        let b: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut c = Compressor::new();
        // Sealing `a` first must not let its window leak into `b`.
        assert_eq!(stream_compress(&mut c, &a, &[17]), compress(&a));
        assert_eq!(stream_compress(&mut c, &b, &[17]), compress(&b));
        assert!(c.is_empty());
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn huge_declared_length_fails_fast_without_allocating() {
        // Claims just under the 1 GiB sanity bound but delivers one byte;
        // the initial buffer must stay small and the stream must fail.
        let mut bad = Vec::new();
        write_varint(&mut bad, 1 << 30);
        bad.push(0x00);
        bad.push(b'a');
        assert_eq!(decompress(&bad), None);
        // Over the bound is rejected outright.
        let mut worse = Vec::new();
        write_varint(&mut worse, (1 << 30) + 1);
        assert_eq!(decompress(&worse), None);
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes: shift exceeds 63 before terminating.
        let bad = vec![0xffu8; 11];
        assert_eq!(decompress(&bad), None);
        // An overlong varint in a match distance, too.
        let mut c = compress(b"hello hello hello hello hello");
        c.extend_from_slice(&[0x80]);
        c.extend_from_slice(&[0xff; 11]);
        assert_eq!(decompress(&c), None);
    }

    proptest! {
        #[test]
        fn random_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            round_trip(&data);
        }

        #[test]
        fn structured_round_trips(
            words in proptest::collection::vec("[a-e]{1,8}", 0..256)
        ) {
            let data = words.join(":").into_bytes();
            round_trip(&data);
        }

        /// The tentpole equivalence claim: any input, chunked any way,
        /// streams to the exact bytes of the one-shot compressor — per
        /// block, across reuse of one compressor.
        #[test]
        fn streaming_equals_one_shot_under_random_chunking(
            words in proptest::collection::vec("[a-f]{1,10}", 0..512),
            chunks in proptest::collection::vec(1usize..400, 0..24),
        ) {
            let data = words.join("|").into_bytes();
            let mut c = Compressor::new();
            let streamed = stream_compress(&mut c, &data, &chunks);
            prop_assert_eq!(&streamed, &compress(&data));
            prop_assert_eq!(decompress(&streamed).as_deref(), Some(&data[..]));
            // Reuse after reset must stay equivalent as well.
            let again = stream_compress(&mut c, &data, &[3]);
            prop_assert_eq!(&again, &compress(&data));
        }

        /// Hostile input: arbitrary bytes must never panic, and any output
        /// accepted must respect the declared length — including the
        /// buffer's capacity (no over-allocation past the header's claim).
        #[test]
        fn hostile_streams_never_panic_or_overallocate(
            data in proptest::collection::vec(any::<u8>(), 0..512)
        ) {
            if let Some(out) = decompress(&data) {
                let mut pos = 0;
                let declared = read_varint(&data, &mut pos).unwrap() as usize;
                prop_assert_eq!(out.len(), declared);
                prop_assert!(out.capacity() <= declared.max(DECOMPRESS_PREALLOC));
            }
        }

        /// Every strict truncation of a valid stream is rejected: tokens
        /// only ever add output, so a cut stream can never reach the
        /// declared length.
        #[test]
        fn truncations_of_valid_streams_are_rejected(
            words in proptest::collection::vec("[a-d]{1,6}", 1..128)
        ) {
            let data = words.join(":").into_bytes();
            let c = compress(&data);
            for cut in 0..c.len() {
                prop_assert_eq!(decompress(&c[..cut]), None, "cut at {}", cut);
            }
        }
    }
}
