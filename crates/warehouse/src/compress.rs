//! `ulz`: a small LZ-style block compressor.
//!
//! The aggregators "write the merged results to HDFS … compressing data on
//! the fly" (§2). The approved dependency set has no compression crate, so we
//! implement a simple byte-oriented LZ77 variant: greedy matching against a
//! 64 KiB window via a 4-byte hash table, literals in runs, matches as
//! (length, distance) tokens with varint distances.
//!
//! ## Format
//!
//! A compressed buffer is `varint(uncompressed_len)` followed by tokens:
//!
//! * `0x00..=0x7f`: literal run; token value + 1 literal bytes follow.
//! * `0x80..=0xff`: match; length = `(token & 0x7f) + MIN_MATCH`, followed by
//!   a varint distance (≥ 1). Distances may be smaller than the length
//!   (overlapping copy), which encodes runs cheaply.
//!
//! The format is deliberately simple; the point is realistic compression
//! *behaviour* (repetitive log text shrinks a lot, random bytes do not), not
//! a competitive ratio.

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Maximum match length a single token can express.
const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Window size: matches may reach at most this far back.
const WINDOW: usize = 1 << 16;
/// Hash table size (power of two).
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Compresses `input`, returning the `ulz` byte stream.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_varint(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0;
    let mut literal_start = 0;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;

        let found = candidate != usize::MAX
            && pos - candidate <= WINDOW
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if found {
            // Extend the match.
            let mut len = MIN_MATCH;
            let max = (input.len() - pos).min(MAX_MATCH);
            while len < max && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            flush_literals(&mut out, &input[literal_start..pos]);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            write_varint(&mut out, (pos - candidate) as u64);
            // Seed the table inside the match so later data can refer to it.
            let end = pos + len;
            pos += 1;
            while pos < end && pos + MIN_MATCH <= input.len() {
                table[hash4(&input[pos..])] = pos;
                pos += 1;
            }
            pos = end;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, &input[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(128);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

/// Decompresses a `ulz` stream. Returns `None` on any structural error.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0;
    let expected = read_varint(input, &mut pos)? as usize;
    // Sanity bound: refuse to allocate more than 1 GiB for one block.
    if expected > (1 << 30) {
        return None;
    }
    let mut out = Vec::with_capacity(expected);
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        if token < 0x80 {
            let n = usize::from(token) + 1;
            let lits = input.get(pos..pos + n)?;
            out.extend_from_slice(lits);
            pos += n;
        } else {
            let len = usize::from(token & 0x7f) + MIN_MATCH;
            let dist = read_varint(input, &mut pos)? as usize;
            if dist == 0 || dist > out.len() {
                return None;
            }
            let start = out.len() - dist;
            // Overlapping copies must proceed byte by byte.
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        }
    }
    (out.len() == expected).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).as_deref(), Some(data));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_text_shrinks() {
        let line = b"web:home:mentions:stream:avatar:profile_click\tuid=12345\n";
        let mut data = Vec::new();
        for _ in 0..500 {
            data.extend_from_slice(line);
        }
        let c = compress(&data);
        assert!(
            c.len() * 10 < data.len(),
            "repetitive logs should compress >10x, got {} / {}",
            c.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn run_of_one_byte_uses_overlapping_copy() {
        let data = vec![b'x'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200, "run should be tiny, got {}", c.len());
        round_trip(&data);
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        // A pseudo-random, non-repeating sequence.
        let mut state = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let c = compress(&data);
        // Worst case: 1 token byte per 128 literals plus the length prefix.
        assert!(c.len() <= data.len() + data.len() / 128 + 16);
        round_trip(&data);
    }

    #[test]
    fn corrupt_stream_is_rejected_not_panicking() {
        let c = compress(b"hello hello hello hello hello");
        // Truncations.
        for cut in 0..c.len() {
            let _ = decompress(&c[..cut]); // must not panic
        }
        // Bit flips.
        for i in 0..c.len() {
            let mut bad = c.clone();
            bad[i] ^= 0xff;
            let _ = decompress(&bad); // must not panic
        }
    }

    #[test]
    fn invalid_distance_is_rejected() {
        let mut bad = Vec::new();
        write_varint(&mut bad, 8);
        bad.push(0x00); // literal run of 1
        bad.push(b'a');
        bad.push(0x80); // match of MIN_MATCH
        write_varint(&mut bad, 99); // distance beyond output
        assert_eq!(decompress(&bad), None);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut bad = Vec::new();
        write_varint(&mut bad, 100); // claims 100 bytes
        bad.push(0x00);
        bad.push(b'a'); // delivers 1
        assert_eq!(decompress(&bad), None);
    }

    proptest! {
        #[test]
        fn random_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            round_trip(&data);
        }

        #[test]
        fn structured_round_trips(
            words in proptest::collection::vec("[a-e]{1,8}", 0..256)
        ) {
            let data = words.join(":").into_bytes();
            round_trip(&data);
        }
    }
}
