//! Bounded-memory operator support: deterministic memory accounting,
//! temporary run files, and an external merge sort over byte keys.
//!
//! The paper's jobs run on clusters where no operator may assume a day of
//! logs fits in RAM. This module is the single-process analogue: operators
//! account every buffered byte against a [`MemoryTracker`] (the same
//! deterministic cost-counter currency as `ScanStats::alloc_bytes` — wire
//! sizes, not allocator telemetry, so the numbers are identical at any
//! worker count), and when a configurable budget would be exceeded they
//! *spill*: the buffer is sorted and written to a temporary **run file** in
//! ordinary warehouse record-file format, then the runs are k-way merged
//! back into one ordered stream. Spill scratch space lives under
//! [`spill_root`] and is removed by an RAII [`SpillDirGuard`] on success
//! and error paths alike (including panics mid-query).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::WarehouseResult;
use crate::path::WhPath;
use crate::store::Warehouse;

/// Root directory for spill scratch space inside a warehouse: `$TMPDIR`
/// (default `/tmp`) plus a per-process `spill-<pid>` component, so
/// parallel test runs sharing a warehouse namespace — or a host `TMPDIR`
/// convention — never collide on scratch paths. A `TMPDIR` that is not a
/// clean absolute path falls back to `/tmp`.
pub fn spill_root() -> WhPath {
    let base = std::env::var("TMPDIR")
        .ok()
        .map(|t| t.trim_end_matches('/').to_string())
        .filter(|t| !t.is_empty())
        .and_then(|t| WhPath::parse(&t).ok())
        .unwrap_or_else(|| WhPath::parse("/tmp").expect("static path"));
    base.child(&format!("spill-{}", std::process::id()))
        .expect("pid segment is a valid path component")
}

/// Per-entry accounting overhead (pointers, lengths) charged on top of the
/// payload bytes. A fixed constant keeps the accounting deterministic.
pub const ENTRY_OVERHEAD: u64 = 32;

#[derive(Debug, Default)]
struct TrackerInner {
    budget: Option<u64>,
    current: AtomicU64,
    high_water: AtomicU64,
    spill_runs: AtomicU64,
    spill_bytes: AtomicU64,
    gauge: Option<uli_obs::Gauge>,
}

/// Deterministic operator-memory accounting shared by every spilling
/// operator of one job.
///
/// `current` is the bytes presently buffered across operators; `high_water`
/// is its peak. Both are *cost-model* quantities — computed from wire sizes
/// at deterministic points in the (serial) reduce phase — so they are
/// byte-identical across worker counts and hosts. When a budget is set,
/// operators consult [`MemoryTracker::would_exceed`] *before* buffering and
/// spill first, so `high_water` never exceeds the budget as long as a
/// single entry fits in it.
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    inner: Arc<TrackerInner>,
}

impl MemoryTracker {
    /// A tracker with no budget: nothing ever spills, but the high-water
    /// mark is still maintained.
    pub fn unbounded() -> MemoryTracker {
        MemoryTracker::default()
    }

    /// A tracker that asks operators to spill before `budget` bytes of
    /// buffered state are exceeded.
    pub fn with_budget(budget: u64) -> MemoryTracker {
        MemoryTracker {
            inner: Arc::new(TrackerInner {
                budget: Some(budget),
                ..Default::default()
            }),
        }
    }

    /// Attaches an observability gauge that mirrors the high-water mark
    /// (raise-only, so concurrent jobs sharing a registry keep the max).
    pub fn with_gauge(self, gauge: uli_obs::Gauge) -> MemoryTracker {
        let inner = TrackerInner {
            budget: self.inner.budget,
            gauge: Some(gauge),
            ..Default::default()
        };
        MemoryTracker {
            inner: Arc::new(inner),
        }
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.inner.budget
    }

    /// True when buffering `incoming` more bytes would exceed the budget.
    pub fn would_exceed(&self, incoming: u64) -> bool {
        match self.inner.budget {
            Some(b) => self.inner.current.load(Ordering::Relaxed) + incoming > b,
            None => false,
        }
    }

    /// Accounts `bytes` of newly buffered state and updates the peak.
    pub fn grow(&self, bytes: u64) {
        let now = self.inner.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.high_water.fetch_max(now, Ordering::Relaxed);
        if let Some(g) = &self.inner.gauge {
            g.raise(now.min(i64::MAX as u64) as i64);
        }
    }

    /// Releases `bytes` of buffered state (spilled or consumed).
    pub fn shrink(&self, bytes: u64) {
        let cur = self.inner.current.load(Ordering::Relaxed);
        self.inner
            .current
            .store(cur.saturating_sub(bytes), Ordering::Relaxed);
    }

    /// Records one spilled run of `run_bytes`.
    pub fn note_spill(&self, run_bytes: u64) {
        self.inner.spill_runs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .spill_bytes
            .fetch_add(run_bytes, Ordering::Relaxed);
    }

    /// Bytes currently buffered.
    pub fn current(&self) -> u64 {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// Peak buffered bytes seen so far.
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Run files spilled so far.
    pub fn spill_runs(&self) -> u64 {
        self.inner.spill_runs.load(Ordering::Relaxed)
    }

    /// Total bytes written to run files so far.
    pub fn spill_bytes(&self) -> u64 {
        self.inner.spill_bytes.load(Ordering::Relaxed)
    }
}

/// Process-wide scratch-dir counter: spill directories only need to be
/// unique, not deterministic — they are removed before a job finishes.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory path under [`spill_root`] (`label` is a short
/// human hint, e.g. the operator name).
pub fn scratch_dir(label: &str) -> WhPath {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    spill_root()
        .child(&format!("{label}-{n}"))
        .expect("scratch path is valid")
}

/// RAII guard for a spill scratch directory: dropping it deletes the
/// directory (and every run file in it) from the warehouse, whether the
/// query finished, errored, or panicked.
pub struct SpillDirGuard {
    warehouse: Warehouse,
    dir: WhPath,
}

impl SpillDirGuard {
    /// Guards `dir` in `warehouse`. The directory need not exist yet; run
    /// files are created lazily beneath it.
    pub fn new(warehouse: Warehouse, dir: WhPath) -> SpillDirGuard {
        SpillDirGuard { warehouse, dir }
    }

    /// The guarded directory.
    pub fn dir(&self) -> &WhPath {
        &self.dir
    }
}

impl Drop for SpillDirGuard {
    fn drop(&mut self) {
        // Never propagate cleanup errors (we may be unwinding already); a
        // missing directory just means nothing was ever spilled.
        let _ = self.warehouse.delete_dir(&self.dir);
    }
}

/// An external merge sort over `(key, payload)` byte pairs.
///
/// Keys order lexicographically (callers needing composite keys encode
/// them order-preservingly); equal keys preserve **insertion order** — the
/// in-memory sort is stable, runs spill in insertion order, and the merge
/// breaks ties by run index — so the output is byte-identical to what a
/// stable in-memory sort of the whole input would produce, at any budget.
pub struct ExternalByteSorter {
    warehouse: Warehouse,
    guard: SpillDirGuard,
    tracker: MemoryTracker,
    buf: Vec<(Vec<u8>, Vec<u8>)>,
    buf_bytes: u64,
    runs: Vec<WhPath>,
    entries: u64,
}

impl ExternalByteSorter {
    /// A sorter spilling into a fresh scratch directory of `warehouse`,
    /// budgeted by `tracker`.
    pub fn new(warehouse: Warehouse, tracker: MemoryTracker, label: &str) -> ExternalByteSorter {
        let dir = scratch_dir(label);
        let guard = SpillDirGuard::new(warehouse.clone(), dir);
        ExternalByteSorter {
            warehouse,
            guard,
            tracker,
            buf: Vec::new(),
            buf_bytes: 0,
            runs: Vec::new(),
            entries: 0,
        }
    }

    /// The deterministic cost charged for one entry.
    fn entry_cost(key: &[u8], payload: &[u8]) -> u64 {
        key.len() as u64 + payload.len() as u64 + ENTRY_OVERHEAD
    }

    /// Adds one entry, spilling the buffer first if the budget would be
    /// exceeded.
    pub fn push(&mut self, key: Vec<u8>, payload: Vec<u8>) -> WarehouseResult<()> {
        let cost = Self::entry_cost(&key, &payload);
        if self.tracker.would_exceed(cost) && !self.buf.is_empty() {
            self.spill()?;
        }
        self.tracker.grow(cost);
        self.buf_bytes += cost;
        self.buf.push((key, payload));
        self.entries += 1;
        Ok(())
    }

    /// Entries pushed so far.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Run files spilled by this sorter so far.
    pub fn runs_spilled(&self) -> u64 {
        self.runs.len() as u64
    }

    /// Sorts the buffer and writes it out as one run file.
    fn spill(&mut self) -> WarehouseResult<()> {
        self.buf.sort_by(|a, b| a.0.cmp(&b.0)); // stable: ties keep order
        let path = self
            .guard
            .dir()
            .child(&format!("run-{:05}", self.runs.len()))
            .expect("valid run name");
        let mut w = self.warehouse.create(&path)?;
        let mut record = Vec::new();
        for (key, payload) in &self.buf {
            record.clear();
            record.extend_from_slice(&(key.len() as u32).to_be_bytes());
            record.extend_from_slice(key);
            record.extend_from_slice(payload);
            w.append_record(&record);
        }
        let meta = w.finish()?;
        self.tracker.note_spill(meta.compressed_bytes);
        self.tracker.shrink(self.buf_bytes);
        self.buf_bytes = 0;
        self.buf.clear();
        self.runs.push(path);
        Ok(())
    }

    /// Finishes the sort, returning the merged ordered stream. The scratch
    /// directory lives as long as the returned iterator and is deleted when
    /// it drops.
    pub fn finish(mut self) -> WarehouseResult<SortedRuns> {
        self.buf.sort_by(|a, b| a.0.cmp(&b.0));
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            let mut reader = RunReader::open(&self.warehouse, path)?;
            reader.advance()?;
            readers.push(reader);
        }
        Ok(SortedRuns {
            readers,
            tail: self.buf.into_iter(),
            tail_next: None,
            tail_bytes: self.buf_bytes,
            tracker: self.tracker.clone(),
            _guard: self.guard,
        })
    }
}

/// A streaming reader over one run file.
struct RunReader {
    reader: crate::file::RecordFileReader,
    next: Option<(Vec<u8>, Vec<u8>)>,
}

impl RunReader {
    fn open(warehouse: &Warehouse, path: &WhPath) -> WarehouseResult<RunReader> {
        Ok(RunReader {
            reader: warehouse.open(path)?,
            next: None,
        })
    }

    fn advance(&mut self) -> WarehouseResult<()> {
        self.next = match self.reader.next_record()? {
            Some(record) => {
                let key_len = u32::from_be_bytes(record[..4].try_into().expect("run header"));
                let key_end = 4 + key_len as usize;
                Some((record[4..key_end].to_vec(), record[key_end..].to_vec()))
            }
            None => None,
        };
        Ok(())
    }
}

/// The merged output of an [`ExternalByteSorter`]: an ordered stream of
/// `(key, payload)` pairs. Holds the scratch-dir guard, so the run files
/// disappear when the stream is dropped.
pub struct SortedRuns {
    readers: Vec<RunReader>,
    tail: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
    tail_next: Option<(Vec<u8>, Vec<u8>)>,
    tail_bytes: u64,
    tracker: MemoryTracker,
    _guard: SpillDirGuard,
}

impl SortedRuns {
    /// The next entry in key order (ties resolve to the earliest-spilled
    /// run, then the in-memory tail — i.e. insertion order).
    pub fn next_entry(&mut self) -> WarehouseResult<Option<(Vec<u8>, Vec<u8>)>> {
        if self.tail_next.is_none() {
            self.tail_next = self.tail.next();
        }
        // Pick the smallest key; scan order makes ties stable.
        let mut best: Option<usize> = None; // index into readers, or tail
        for (i, r) in self.readers.iter().enumerate() {
            if let Some((key, _)) = &r.next {
                let better = match best {
                    None => true,
                    Some(b) => key < &self.readers[b].next.as_ref().expect("peeked").0,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let tail_wins = match (&self.tail_next, best) {
            (Some((tk, _)), Some(b)) => tk < &self.readers[b].next.as_ref().expect("peeked").0,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if tail_wins {
            return Ok(self.tail_next.take());
        }
        match best {
            Some(i) => {
                let entry = self.readers[i].next.take();
                self.readers[i].advance()?;
                Ok(entry)
            }
            None => Ok(None),
        }
    }
}

impl Drop for SortedRuns {
    fn drop(&mut self) {
        self.tracker.shrink(self.tail_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64, tag: &str) -> (Vec<u8>, Vec<u8>) {
        (
            i.to_be_bytes().to_vec(),
            format!("p-{tag}-{i}").into_bytes(),
        )
    }

    fn drain(mut runs: SortedRuns) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(e) = runs.next_entry().unwrap() {
            out.push(e);
        }
        out
    }

    #[test]
    fn tracker_accounts_and_peaks() {
        let t = MemoryTracker::with_budget(100);
        assert!(!t.would_exceed(100));
        assert!(t.would_exceed(101));
        t.grow(80);
        assert!(t.would_exceed(30));
        t.shrink(50);
        assert_eq!(t.current(), 30);
        assert_eq!(t.high_water(), 80, "peak survives shrink");
        t.note_spill(1234);
        assert_eq!(t.spill_runs(), 1);
        assert_eq!(t.spill_bytes(), 1234);
    }

    #[test]
    fn tracker_mirrors_gauge() {
        let registry = uli_obs::Registry::new();
        let gauge = registry.gauge("dataflow", "memory_high_water_bytes");
        let t = MemoryTracker::with_budget(1 << 20).with_gauge(gauge.clone());
        t.grow(4096);
        t.shrink(4096);
        t.grow(100);
        assert_eq!(gauge.get(), 4096, "gauge keeps the peak");
    }

    #[test]
    fn unbudgeted_sorter_never_spills() {
        let wh = Warehouse::new();
        let mut s = ExternalByteSorter::new(wh.clone(), MemoryTracker::unbounded(), "t");
        for i in (0..100u64).rev() {
            s.push(i.to_be_bytes().to_vec(), vec![i as u8]).unwrap();
        }
        assert_eq!(s.runs_spilled(), 0);
        let out = drain(s.finish().unwrap());
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
        let spill_root = spill_root();
        assert!(
            !wh.exists(&spill_root) || wh.list_files_recursive(&spill_root).unwrap().is_empty(),
            "no run files without a budget"
        );
    }

    #[test]
    fn spilled_merge_matches_in_memory_sort_and_cleans_up() {
        // Pseudo-random but deterministic insertion order.
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e3779b9) % 97)
            .collect();
        let reference = {
            let mut entries: Vec<_> = keys.iter().map(|&k| entry(k, "a")).collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0)); // stable
            entries
        };
        let wh = Warehouse::new();
        let tracker = MemoryTracker::with_budget(2048);
        let mut s = ExternalByteSorter::new(wh.clone(), tracker.clone(), "t");
        for &k in &keys {
            let (key, payload) = entry(k, "a");
            s.push(key, payload).unwrap();
        }
        assert!(s.runs_spilled() > 1, "budget must force several runs");
        assert!(
            tracker.high_water() <= 2048,
            "peak {} exceeded budget",
            tracker.high_water()
        );
        let runs = s.finish().unwrap();
        assert!(tracker.spill_runs() > 1);
        assert!(tracker.spill_bytes() > 0);
        let out = drain(runs);
        assert_eq!(out, reference, "spilled output must match stable sort");
        // Guard dropped with the stream: scratch space is gone.
        let spill_root = spill_root();
        assert!(
            !wh.exists(&spill_root) || wh.list_files_recursive(&spill_root).unwrap().is_empty(),
            "run files must be deleted when the stream drops"
        );
        assert_eq!(tracker.current(), 0, "all tracked bytes released");
    }

    #[test]
    fn equal_keys_keep_insertion_order_across_spills() {
        let wh = Warehouse::new();
        let mut s = ExternalByteSorter::new(wh, MemoryTracker::with_budget(256), "t");
        for i in 0..64u64 {
            // Two keys only: every run holds both; the merge must still
            // replay payloads in insertion order within each key.
            s.push(vec![(i % 2) as u8], format!("{i}").into_bytes())
                .unwrap();
        }
        let out = drain(s.finish().unwrap());
        let ordered = |key: u8| -> Vec<u64> {
            out.iter()
                .filter(|(k, _)| k == &vec![key])
                .map(|(_, p)| String::from_utf8_lossy(p).parse::<u64>().unwrap())
                .collect()
        };
        assert_eq!(
            ordered(0),
            (0..64).filter(|i| i % 2 == 0).collect::<Vec<_>>()
        );
        assert_eq!(
            ordered(1),
            (0..64).filter(|i| i % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn spill_root_is_per_process_and_respects_tmpdir() {
        let root = spill_root();
        let pid = std::process::id();
        assert!(
            root.as_str().ends_with(&format!("/spill-{pid}")),
            "root {} must carry the pid",
            root.as_str()
        );
        // A clean TMPDIR is honored; a malformed one falls back to /tmp.
        // (Set/restore around the calls: the var is only read inside
        // spill_root, and scratch dirs are unique regardless of root.)
        let saved = std::env::var("TMPDIR").ok();
        std::env::set_var("TMPDIR", "/custom-scratch/");
        assert_eq!(
            spill_root().as_str(),
            format!("/custom-scratch/spill-{pid}")
        );
        std::env::set_var("TMPDIR", "not-absolute");
        assert_eq!(spill_root().as_str(), format!("/tmp/spill-{pid}"));
        match saved {
            Some(v) => std::env::set_var("TMPDIR", v),
            None => std::env::remove_var("TMPDIR"),
        }
    }

    #[test]
    fn concurrent_sorters_never_share_scratch() {
        // Two sorters spilling at once in one warehouse: distinct scratch
        // dirs, both outputs correct, and the shared root is empty after
        // both streams drop.
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b, "scratch dirs must be unique within a process");
        let wh = Warehouse::new();
        let handles: Vec<_> = (0..2)
            .map(|lane: u64| {
                let wh = wh.clone();
                std::thread::spawn(move || {
                    let tracker = MemoryTracker::with_budget(512);
                    let mut s = ExternalByteSorter::new(wh, tracker, "conc");
                    for i in (0..200u64).rev() {
                        let (key, payload) = entry(i, &format!("lane{lane}"));
                        s.push(key, payload).unwrap();
                    }
                    assert!(s.runs_spilled() > 1, "budget must force spills");
                    drain(s.finish().unwrap())
                })
            })
            .collect();
        for (lane, h) in handles.into_iter().enumerate() {
            let out = h.join().unwrap();
            assert_eq!(out.len(), 200);
            assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
            // Payloads stayed in-lane: no cross-talk through shared scratch.
            assert!(out
                .iter()
                .all(|(_, p)| String::from_utf8_lossy(p).contains(&format!("lane{lane}"))));
        }
        let spill_root = spill_root();
        assert!(
            !wh.exists(&spill_root) || wh.list_files_recursive(&spill_root).unwrap().is_empty(),
            "scratch must be empty once both sorters finish"
        );
    }

    #[test]
    fn mid_query_panic_leaves_no_debris() {
        let wh = Warehouse::new();
        let wh2 = wh.clone();
        let result = std::panic::catch_unwind(move || {
            let mut s = ExternalByteSorter::new(wh2, MemoryTracker::with_budget(128), "t");
            for i in 0..64u64 {
                s.push(i.to_be_bytes().to_vec(), vec![0u8; 16]).unwrap();
            }
            assert!(s.runs_spilled() > 0, "panic test must spill first");
            panic!("simulated mid-query failure");
        });
        assert!(result.is_err());
        let spill_root = spill_root();
        assert!(
            !wh.exists(&spill_root) || wh.list_files_recursive(&spill_root).unwrap().is_empty(),
            "panic unwound without deleting spill files"
        );
    }
}
