//! Warehouse errors.

use std::fmt;

/// Errors returned by warehouse operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarehouseError {
    /// The target path does not exist.
    NotFound(String),
    /// A file or directory already exists at the target path.
    AlreadyExists(String),
    /// The path failed syntactic validation.
    BadPath(String),
    /// A file operation was attempted on a directory or vice versa.
    NotAFile(String),
    /// Directory operation on a file.
    NotADirectory(String),
    /// A block failed its checksum — simulated disk corruption surfaced.
    ChecksumMismatch {
        /// File containing the corrupt block.
        path: String,
        /// Index of the corrupt block.
        block: usize,
    },
    /// A block or record was structurally malformed.
    Corrupt(&'static str),
    /// The warehouse is unavailable (fault injection: simulated HDFS outage).
    Unavailable,
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::NotFound(p) => write!(f, "not found: {p}"),
            WarehouseError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            WarehouseError::BadPath(p) => write!(f, "invalid path: {p:?}"),
            WarehouseError::NotAFile(p) => write!(f, "not a file: {p}"),
            WarehouseError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            WarehouseError::ChecksumMismatch { path, block } => {
                write!(f, "checksum mismatch in {path} block {block}")
            }
            WarehouseError::Corrupt(what) => write!(f, "corrupt data: {what}"),
            WarehouseError::Unavailable => write!(f, "warehouse unavailable"),
        }
    }
}

impl std::error::Error for WarehouseError {}

/// Convenience alias.
pub type WarehouseResult<T> = Result<T, WarehouseError>;
