//! Block-structured record files.
//!
//! A record file is a sequence of blocks; each block holds many
//! varint-length-prefixed records and is independently compressed and
//! checksummed. A block models an HDFS block: it is the unit of scan cost
//! (one simulated map task per block) and the unit an index can skip.

use std::sync::Arc;

use crate::cache::{BlockCache, BlockKey};
use crate::compress;
use crate::error::{WarehouseError, WarehouseResult};
use crate::stats::{ScanStats, StatsCell};
use crate::zone::ZoneMap;

/// FNV-1a 64-bit hash, used as a block checksum.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Encodes `v` as a varint into `buf` (which must hold 10 bytes), returning
/// the encoded length. Writing into a stack array keeps the record-append
/// hot path free of intermediate heap buffers.
fn encode_varint(buf: &mut [u8; 10], mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = b;
            return n + 1;
        }
        buf[n] = b | 0x80;
        n += 1;
    }
}

fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// One sealed block.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    pub(crate) compressed: Vec<u8>,
    pub(crate) uncompressed_len: u64,
    pub(crate) checksum: u64,
    pub(crate) num_records: u64,
    /// Zone-map footer entry. Present only when *every* record in the block
    /// was appended with annotations; absent zones fail open (always read).
    pub(crate) zone: Option<ZoneMap>,
}

/// Immutable contents of a finished file.
#[derive(Debug, Default, Clone)]
pub(crate) struct FileData {
    pub(crate) blocks: Vec<Block>,
    pub(crate) total_records: u64,
    pub(crate) total_compressed: u64,
    pub(crate) total_uncompressed: u64,
}

/// Summary metadata of a stored file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMeta {
    /// Number of blocks (= simulated map tasks to scan the file).
    pub blocks: u64,
    /// Records across all blocks.
    pub records: u64,
    /// Compressed (on-disk) size.
    pub compressed_bytes: u64,
    /// Uncompressed (logical) size.
    pub uncompressed_bytes: u64,
}

impl FileData {
    pub(crate) fn meta(&self) -> FileMeta {
        FileMeta {
            blocks: self.blocks.len() as u64,
            records: self.total_records,
            compressed_bytes: self.total_compressed,
            uncompressed_bytes: self.total_uncompressed,
        }
    }
}

/// Streaming writer: records are fed straight into a reusable
/// [`compress::Compressor`], which compresses incrementally as they append
/// (no buffer-then-compress); a block is sealed whenever the buffered
/// uncompressed bytes reach the configured capacity, and the file is
/// atomically installed on [`RecordFileWriter::finish`]. The token stream
/// is byte-identical to one-shot compression of the block, so on-disk files
/// do not depend on how records were chunked into appends.
pub struct RecordFileWriter {
    pub(crate) install: Box<dyn FnOnce(FileData) -> WarehouseResult<()> + Send>,
    pub(crate) block_capacity: usize,
    pub(crate) compressor: compress::Compressor,
    /// Pool the compressor came from; `finish` hands it back so concurrent
    /// writers converge on one warm allocation set per worker instead of
    /// paying a fresh hash table per file.
    pub(crate) recycle: Option<std::sync::Arc<compress::CompressorPool>>,
    pub(crate) pending_records: u64,
    pub(crate) pending_zone: ZoneMap,
    pub(crate) pending_annotated: u64,
    pub(crate) data: FileData,
}

impl RecordFileWriter {
    /// Appends one record.
    pub fn append_record(&mut self, record: &[u8]) {
        let mut prefix = [0u8; 10];
        let n = encode_varint(&mut prefix, record.len() as u64);
        self.compressor.write(&prefix[..n]);
        self.compressor.write(record);
        self.pending_records += 1;
        if self.compressor.pending_len() >= self.block_capacity {
            self.seal_block();
        }
    }

    /// Appends one record with zone-map annotations: the block being built
    /// folds `key` into its min/max range and `tag` into its membership
    /// bitmap. A block sealed with every record annotated gets a zone map in
    /// the file footer; mixing annotated and plain appends leaves the block
    /// unmapped (fail open).
    pub fn append_record_annotated(&mut self, record: &[u8], key: i64, tag: u64) {
        self.pending_zone.fold(key, tag);
        self.pending_annotated += 1;
        self.append_record(record);
    }

    /// Number of records appended so far.
    pub fn records_written(&self) -> u64 {
        self.data.total_records + self.pending_records
    }

    /// Appends one record and seals it into a block of its own, carrying the
    /// caller-computed zone map verbatim. The columnar writer uses this to
    /// map one row group onto exactly one block, so group-level skipping
    /// rides the ordinary block machinery (`zone_map`, `skip_block`).
    pub(crate) fn append_record_sealed(&mut self, record: &[u8], zone: Option<ZoneMap>) {
        if !self.compressor.is_empty() {
            self.seal_block();
        }
        let mut prefix = [0u8; 10];
        let n = encode_varint(&mut prefix, record.len() as u64);
        self.compressor.write(&prefix[..n]);
        self.compressor.write(record);
        self.pending_records = 1;
        match zone {
            Some(z) => {
                self.pending_zone = z;
                self.pending_annotated = 1;
            }
            None => self.pending_annotated = 0,
        }
        self.seal_block();
    }

    fn seal_block(&mut self) {
        if self.compressor.is_empty() {
            return;
        }
        let uncompressed_len = self.compressor.pending_len() as u64;
        let compressed = self.compressor.finish_block();
        let checksum = fnv1a64(&compressed);
        self.data.total_compressed += compressed.len() as u64;
        self.data.total_uncompressed += uncompressed_len;
        self.data.total_records += self.pending_records;
        let zone = (self.pending_records > 0 && self.pending_annotated == self.pending_records)
            .then_some(self.pending_zone);
        self.data.blocks.push(Block {
            compressed,
            uncompressed_len,
            checksum,
            num_records: self.pending_records,
            zone,
        });
        self.pending_records = 0;
        self.pending_zone = ZoneMap::empty();
        self.pending_annotated = 0;
    }

    /// Seals the final block and installs the file in the warehouse. The
    /// writer's compressor (now reset) returns to the warehouse pool for the
    /// next writer to reuse.
    pub fn finish(mut self) -> WarehouseResult<FileMeta> {
        self.seal_block();
        let meta = self.data.meta();
        let data = std::mem::take(&mut self.data);
        if let Some(pool) = self.recycle.take() {
            pool.recycle(std::mem::take(&mut self.compressor));
        }
        (self.install)(data)?;
        Ok(meta)
    }
}

/// Streaming reader over a file's records, decompressing block by block and
/// charging every read to the warehouse scan counters.
pub struct RecordFileReader {
    pub(crate) path: String,
    pub(crate) data: Arc<FileData>,
    pub(crate) stats: Arc<StatsCell>,
    pub(crate) cache: Arc<BlockCache>,
    pub(crate) block_filter: Option<Vec<bool>>,
    next_block: usize,
    cur_block: Option<usize>,
    buf: Arc<Vec<u8>>,
    buf_pos: usize,
}

impl RecordFileReader {
    pub(crate) fn new(
        path: String,
        data: Arc<FileData>,
        stats: Arc<StatsCell>,
        cache: Arc<BlockCache>,
        block_filter: Option<Vec<bool>>,
    ) -> Self {
        stats.file_opened();
        RecordFileReader {
            path,
            data,
            stats,
            cache,
            block_filter,
            next_block: 0,
            cur_block: None,
            buf: Arc::new(Vec::new()),
            buf_pos: 0,
        }
    }

    /// Number of blocks in the file (before any filter).
    pub fn block_count(&self) -> usize {
        self.data.blocks.len()
    }

    /// Number of records stored in block `idx`. Index builders use this to
    /// map record offsets back to blocks without decompressing.
    pub fn block_records(&self, idx: usize) -> u64 {
        self.data.blocks[idx].num_records
    }

    /// Index of the block the most recent record came from (`None` before
    /// the first record). Index builders use this to attribute records to
    /// blocks while scanning.
    pub fn current_block(&self) -> Option<usize> {
        self.cur_block
    }

    /// Restricts reading to blocks whose entry in `keep` is true — the
    /// index-pushdown hook used by Elephant Twin-style scans. Skipped blocks
    /// are never decompressed and count as `blocks_skipped`.
    pub fn set_block_filter(&mut self, keep: Vec<bool>) {
        assert_eq!(keep.len(), self.data.blocks.len(), "filter length mismatch");
        self.block_filter = Some(keep);
    }

    fn load_next_block(&mut self) -> WarehouseResult<bool> {
        loop {
            if self.next_block >= self.data.blocks.len() {
                return Ok(false);
            }
            let idx = self.next_block;
            self.next_block += 1;
            if let Some(filter) = &self.block_filter {
                if !filter[idx] {
                    self.stats.block_skipped();
                    continue;
                }
            }
            let block = &self.data.blocks[idx];
            self.buf = read_block_payload(&self.path, block, idx, &self.cache, &[&self.stats])?;
            self.cur_block = Some(idx);
            self.buf_pos = 0;
            return Ok(true);
        }
    }

    /// Yields the next record, or `None` at end of file.
    pub fn next_record(&mut self) -> WarehouseResult<Option<&[u8]>> {
        while self.buf_pos >= self.buf.len() {
            if !self.load_next_block()? {
                return Ok(None);
            }
        }
        let len = read_varint(&self.buf, &mut self.buf_pos)
            .ok_or(WarehouseError::Corrupt("record length"))? as usize;
        if self.buf_pos + len > self.buf.len() {
            return Err(WarehouseError::Corrupt("record body"));
        }
        let start = self.buf_pos;
        self.buf_pos += len;
        self.stats.record_read();
        Ok(Some(&self.buf[start..start + len]))
    }

    /// Convenience: collects all remaining records as owned vectors. Each
    /// record costs one heap allocation, charged to the cost model's
    /// `alloc_bytes` counter; hot paths should prefer [`Self::next_record`]
    /// or [`FileBlocks::for_each_record`], which borrow from the block
    /// payload instead.
    pub fn read_all(mut self) -> WarehouseResult<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            let owned = rec.to_vec();
            self.stats.record_alloc(owned.len() as u64);
            out.push(owned);
        }
        Ok(out)
    }
}

/// Fetches one block's decompressed payload — from the cache when hot,
/// verifying + decompressing (and populating the cache) when cold — and
/// charges every supplied stats cell identically.
///
/// Hit accounting: the block and its uncompressed bytes are charged (the
/// scan logically read them) but no compressed bytes are (nothing came off
/// disk). Cold blocks are charged exactly as before the cache existed.
fn read_block_payload(
    path: &str,
    block: &Block,
    idx: usize,
    cache: &BlockCache,
    cells: &[&StatsCell],
) -> WarehouseResult<Arc<Vec<u8>>> {
    let key = BlockKey {
        checksum: block.checksum,
        uncompressed_len: block.uncompressed_len,
    };
    if let Some(data) = cache.get(key) {
        for cell in cells {
            cell.block_cache_hit(data.len() as u64);
        }
        return Ok(data);
    }
    if fnv1a64(&block.compressed) != block.checksum {
        return Err(WarehouseError::ChecksumMismatch {
            path: path.to_string(),
            block: idx,
        });
    }
    let decompressed = compress::decompress(&block.compressed)
        .ok_or(WarehouseError::Corrupt("block failed to decompress"))?;
    if decompressed.len() as u64 != block.uncompressed_len {
        return Err(WarehouseError::Corrupt("block length mismatch"));
    }
    for cell in cells {
        cell.block_read(block.compressed.len() as u64, decompressed.len() as u64);
        cell.block_cache_miss();
    }
    let data = Arc::new(decompressed);
    cache.insert(key, Arc::clone(&data));
    Ok(data)
}

/// Splits a decompressed block payload into owned records.
fn decode_records(payload: &[u8]) -> WarehouseResult<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    visit_records(payload, |rec| out.push(rec.to_vec()))?;
    Ok(out)
}

/// Walks the varint-framed records of a decompressed block payload, handing
/// each to `f` as a borrowed slice — no per-record allocation.
fn visit_records(payload: &[u8], mut f: impl FnMut(&[u8])) -> WarehouseResult<u64> {
    let mut pos = 0usize;
    let mut count = 0u64;
    while pos < payload.len() {
        let len = read_varint(payload, &mut pos).ok_or(WarehouseError::Corrupt("record length"))?
            as usize;
        if pos + len > payload.len() {
            return Err(WarehouseError::Corrupt("record body"));
        }
        f(&payload[pos..pos + len]);
        pos += len;
        count += 1;
    }
    Ok(count)
}

/// Random-access, thread-safe view of a file's blocks — the parallel-scan
/// counterpart of [`RecordFileReader`]. Blocks can be read from any thread
/// in any order (each block ≈ one map task), and every read is charged both
/// to the warehouse-global counters and to a per-handle cell so one query's
/// cost can be attributed exactly even while other scans run concurrently.
#[derive(Clone)]
pub struct FileBlocks {
    pub(crate) path: String,
    pub(crate) data: Arc<FileData>,
    pub(crate) stats: Arc<StatsCell>,
    pub(crate) local: Arc<StatsCell>,
    pub(crate) cache: Arc<BlockCache>,
}

impl FileBlocks {
    pub(crate) fn new(
        path: String,
        data: Arc<FileData>,
        stats: Arc<StatsCell>,
        cache: Arc<BlockCache>,
    ) -> Self {
        let local = Arc::new(StatsCell::default());
        stats.file_opened();
        local.file_opened();
        FileBlocks {
            path,
            data,
            stats,
            local,
            cache,
        }
    }

    /// Number of blocks in the file.
    pub fn block_count(&self) -> usize {
        self.data.blocks.len()
    }

    /// Number of records stored in block `idx`.
    pub fn block_records(&self, idx: usize) -> u64 {
        self.data.blocks[idx].num_records
    }

    /// Summary metadata of the whole file.
    pub fn meta(&self) -> FileMeta {
        self.data.meta()
    }

    /// Reads and decodes block `idx` into owned records, charging the scan
    /// counters (cache-aware, like the streaming reader). Each record is an
    /// owned `Vec`, charged to the cost model's `alloc_bytes` counter;
    /// [`Self::for_each_record`] avoids that churn entirely.
    pub fn read_block(&self, idx: usize) -> WarehouseResult<Vec<Vec<u8>>> {
        let payload = self.block_payload(idx)?;
        let records = decode_records(&payload)?;
        let alloc: u64 = records.iter().map(|r| r.len() as u64).sum();
        self.stats.records_read_n(records.len() as u64);
        self.stats.record_alloc(alloc);
        self.local.records_read_n(records.len() as u64);
        self.local.record_alloc(alloc);
        Ok(records)
    }

    /// Streams the records of block `idx` to `f` as borrowed slices — the
    /// allocation-free counterpart of [`Self::read_block`]: same cache-aware
    /// payload fetch and record accounting, but nothing is copied out of the
    /// decompressed payload, so `alloc_bytes` is never charged.
    pub fn for_each_record(&self, idx: usize, f: impl FnMut(&[u8])) -> WarehouseResult<()> {
        let payload = self.block_payload(idx)?;
        let count = visit_records(&payload, f)?;
        self.stats.records_read_n(count);
        self.local.records_read_n(count);
        Ok(())
    }

    fn block_payload(&self, idx: usize) -> WarehouseResult<Arc<Vec<u8>>> {
        let block = self
            .data
            .blocks
            .get(idx)
            .ok_or(WarehouseError::Corrupt("block index out of range"))?;
        read_block_payload(
            &self.path,
            block,
            idx,
            &self.cache,
            &[&self.stats, &self.local],
        )
    }

    /// Zone map of block `idx`, if the block was written fully annotated.
    pub fn zone_map(&self, idx: usize) -> Option<ZoneMap> {
        self.data.blocks.get(idx).and_then(|b| b.zone)
    }

    /// Records that block `idx` was skipped without decompression (index
    /// pushdown in a parallel scan).
    pub fn skip_block(&self, _idx: usize) {
        self.stats.block_skipped();
        self.local.block_skipped();
    }

    /// Charges pushdown accounting (records dropped by a pushed predicate,
    /// fields a lazy decoder never materialized) to both the warehouse-global
    /// counters and this handle's local cell.
    pub fn charge_pushdown(&self, records_skipped: u64, fields_skipped: u64) {
        self.stats.pushdown_skips(records_skipped, fields_skipped);
        self.local.pushdown_skips(records_skipped, fields_skipped);
    }

    /// Snapshot of this handle's own counters (shared by its clones):
    /// exactly what reads through this handle cost, regardless of what other
    /// scans did to the warehouse-global counters meanwhile.
    pub fn local_stats(&self) -> ScanStats {
        self.local.snapshot()
    }
}
