//! Decompressed-block cache.
//!
//! Repeated queries over the same hour re-decompress the same blocks — in
//! the paper's terms, every brute-force scan pays the full I/O and codec
//! cost even when the working set is hot. This module adds a bounded,
//! byte-capacity LRU cache of **decompressed** block payloads shared by all
//! readers of a [`crate::Warehouse`].
//!
//! Entries are keyed by `(checksum, uncompressed_len)` — content-addressed,
//! so renames and deletes need no invalidation, and a re-written block with
//! different bytes can never alias a stale entry (up to FNV-64 collision,
//! which also bounds the existing checksum verification). Payloads are
//! handed out as `Arc<Vec<u8>>`, so concurrent scans share one copy.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Default cache capacity: big enough to hold a laptop-scale hot hour,
/// small enough to be invisible next to the datasets the benches build.
pub const DEFAULT_CACHE_CAPACITY: usize = 64 * 1024 * 1024;

/// Content address of a block: its compressed-payload checksum plus the
/// decompressed length (cheap extra guard against checksum collisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BlockKey {
    pub(crate) checksum: u64,
    pub(crate) uncompressed_len: u64,
}

struct CacheEntry {
    data: Arc<Vec<u8>>,
    /// Recency stamp; also the entry's key in `CacheInner::order`.
    tick: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<BlockKey, CacheEntry>,
    /// Recency order: lowest tick = least recently used.
    order: BTreeMap<u64, BlockKey>,
    bytes: usize,
    next_tick: u64,
}

/// Cumulative cache counters plus a point-in-time occupancy snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Blocks currently resident.
    pub entries: u64,
    /// Decompressed bytes currently resident.
    pub bytes: u64,
    /// Configured capacity in bytes (0 = disabled).
    pub capacity: u64,
}

impl CacheStats {
    /// Hits as a fraction of lookups (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU cache of decompressed block payloads. Thread-safe; one
/// instance is shared by every reader of a warehouse.
pub struct BlockCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// A cache holding at most `capacity` decompressed bytes. Capacity 0
    /// disables caching entirely (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn get(&self, key: BlockKey) -> Option<Arc<Vec<u8>>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                // Touch: move to the most-recent end of the order map.
                inner.order.remove(&entry.tick);
                entry.tick = inner.next_tick;
                inner.next_tick += 1;
                inner.order.insert(entry.tick, key);
                let data = Arc::clone(&entry.data);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(data)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(crate) fn insert(&self, key: BlockKey, data: Arc<Vec<u8>>) {
        if data.len() > self.capacity {
            // Never evict the whole cache for one oversized block.
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&key) {
            return; // Racing reader already inserted the same content.
        }
        let mut evicted = 0u64;
        while inner.bytes + data.len() > self.capacity {
            let (&tick, &victim) = inner.order.iter().next().expect("bytes>0 implies entries");
            inner.order.remove(&tick);
            let gone = inner.map.remove(&victim).expect("order and map agree");
            inner.bytes -= gone.data.len();
            evicted += 1;
        }
        let tick = inner.next_tick;
        inner.next_tick += 1;
        inner.bytes += data.len();
        inner.order.insert(tick, key);
        inner.map.insert(key, CacheEntry { data, tick });
        drop(inner);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock();
            (inner.map.len() as u64, inner.bytes as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            capacity: self.capacity as u64,
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> BlockKey {
        BlockKey {
            checksum: n,
            uncompressed_len: 10,
        }
    }

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0u8; n])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = BlockCache::new(1024);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), block(10));
        let got = c.get(key(1)).expect("hit");
        assert_eq!(got.len(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!((s.entries, s.bytes), (1, 10));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let c = BlockCache::new(30);
        c.insert(key(1), block(10));
        c.insert(key(2), block(10));
        c.insert(key(3), block(10));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(key(1)).is_some());
        c.insert(key(4), block(10));
        assert!(c.get(key(2)).is_none(), "LRU entry should be evicted");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert!(c.get(key(4)).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, 30);
    }

    #[test]
    fn capacity_is_a_byte_budget() {
        let c = BlockCache::new(25);
        c.insert(key(1), block(10));
        c.insert(key(2), block(10));
        // 10+10+10 > 25: inserting a third evicts until it fits (two go).
        c.insert(key(3), block(20));
        let s = c.stats();
        assert!(s.bytes <= 25, "occupancy {} exceeds capacity", s.bytes);
        assert!(c.get(key(3)).is_some());
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let c = BlockCache::new(16);
        c.insert(key(1), block(17));
        assert_eq!(c.stats().insertions, 0);
        assert!(c.get(key(1)).is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = BlockCache::new(0);
        c.insert(key(1), block(1));
        assert!(c.get(key(1)).is_none());
        let s = c.stats();
        assert_eq!(s.insertions, 0);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let c = BlockCache::new(100);
        c.insert(key(1), block(10));
        assert!(c.get(key(1)).is_some());
        c.clear();
        assert!(c.get(key(1)).is_none());
        let s = c.stats();
        assert_eq!((s.entries, s.bytes), (0, 0));
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let c = BlockCache::new(100);
        c.insert(key(1), block(10));
        c.insert(key(1), block(10));
        let s = c.stats();
        assert_eq!(s.insertions, 1);
        assert_eq!(s.bytes, 10);
    }
}
