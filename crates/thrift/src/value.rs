//! Wire types and the dynamic value model.
//!
//! [`TValue`] lets tooling that has no compiled schema — the client event
//! catalog's sampler, ad hoc log scrapers — decode, inspect, and re-encode
//! arbitrary messages. This mirrors how the paper's analytics engineers
//! "induced the message format manually by writing Pig jobs that scraped
//! large numbers of messages" before unified logging made it unnecessary.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{ThriftError, ThriftResult};

/// Thrift wire types carried in field headers (compact-protocol numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TType {
    /// Boolean `true` (compact protocol folds the value into the type nibble).
    BoolTrue = 0x01,
    /// Boolean `false`.
    BoolFalse = 0x02,
    /// 8-bit signed integer.
    I8 = 0x03,
    /// 16-bit signed integer (zigzag varint on the wire).
    I16 = 0x04,
    /// 32-bit signed integer (zigzag varint on the wire).
    I32 = 0x05,
    /// 64-bit signed integer (zigzag varint on the wire).
    I64 = 0x06,
    /// IEEE-754 double, fixed 8 bytes little-endian.
    Double = 0x07,
    /// Length-prefixed UTF-8 string or binary blob.
    Binary = 0x08,
    /// Homogeneous list.
    List = 0x09,
    /// Set (encoded identically to a list).
    Set = 0x0a,
    /// Map with homogeneous key and value types.
    Map = 0x0b,
    /// Nested struct.
    Struct = 0x0c,
}

impl TType {
    /// Decodes a type nibble from the wire.
    pub fn from_wire(b: u8) -> ThriftResult<TType> {
        Ok(match b {
            0x01 => TType::BoolTrue,
            0x02 => TType::BoolFalse,
            0x03 => TType::I8,
            0x04 => TType::I16,
            0x05 => TType::I32,
            0x06 => TType::I64,
            0x07 => TType::Double,
            0x08 => TType::Binary,
            0x09 => TType::List,
            0x0a => TType::Set,
            0x0b => TType::Map,
            0x0c => TType::Struct,
            other => return Err(ThriftError::InvalidType(other)),
        })
    }

    /// True for the two boolean wire types.
    pub fn is_bool(self) -> bool {
        matches!(self, TType::BoolTrue | TType::BoolFalse)
    }
}

impl fmt::Display for TType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TType::BoolTrue | TType::BoolFalse => "bool",
            TType::I8 => "i8",
            TType::I16 => "i16",
            TType::I32 => "i32",
            TType::I64 => "i64",
            TType::Double => "double",
            TType::Binary => "string",
            TType::List => "list",
            TType::Set => "set",
            TType::Map => "map",
            TType::Struct => "struct",
        };
        f.write_str(name)
    }
}

/// A dynamically-typed Thrift value.
///
/// Field identifiers key the `Struct` variant; map keys are restricted to
/// values with a total order (enforced by construction: `TValue` itself is
/// `Ord` via its derived implementation on the `BTreeMap` contents).
#[derive(Debug, Clone, PartialEq)]
pub enum TValue {
    /// Boolean.
    Bool(bool),
    /// 8-bit integer.
    I8(i8),
    /// 16-bit integer.
    I16(i16),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// Double-precision float.
    Double(f64),
    /// UTF-8 string.
    String(String),
    /// Raw bytes.
    Binary(Vec<u8>),
    /// Homogeneous list.
    List(Vec<TValue>),
    /// Map from string keys to values. The paper's `event_details` field is
    /// exactly this shape, so string keys cover every use in this repo.
    Map(BTreeMap<String, TValue>),
    /// Nested struct: (field id, value) pairs sorted by field id.
    Struct(Vec<(i16, TValue)>),
}

impl TValue {
    /// The wire type this value encodes as.
    pub fn ttype(&self) -> TType {
        match self {
            TValue::Bool(true) => TType::BoolTrue,
            TValue::Bool(false) => TType::BoolFalse,
            TValue::I8(_) => TType::I8,
            TValue::I16(_) => TType::I16,
            TValue::I32(_) => TType::I32,
            TValue::I64(_) => TType::I64,
            TValue::Double(_) => TType::Double,
            TValue::String(_) | TValue::Binary(_) => TType::Binary,
            TValue::List(_) => TType::List,
            TValue::Map(_) => TType::Map,
            TValue::Struct(_) => TType::Struct,
        }
    }

    /// Returns the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload widened to `i64`, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            TValue::I8(v) => Some(i64::from(*v)),
            TValue::I16(v) => Some(i64::from(*v)),
            TValue::I32(v) => Some(i64::from(*v)),
            TValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a struct field by id.
    pub fn field(&self, id: i16) -> Option<&TValue> {
        match self {
            TValue::Struct(fields) => fields.iter().find(|(fid, _)| *fid == id).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl fmt::Display for TValue {
    /// Human-oriented rendering used by the client event catalog's sample
    /// viewer. Not a serialization format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TValue::Bool(v) => write!(f, "{v}"),
            TValue::I8(v) => write!(f, "{v}"),
            TValue::I16(v) => write!(f, "{v}"),
            TValue::I32(v) => write!(f, "{v}"),
            TValue::I64(v) => write!(f, "{v}"),
            TValue::Double(v) => write!(f, "{v}"),
            TValue::String(s) => write!(f, "{s:?}"),
            TValue::Binary(b) => write!(f, "<{} bytes>", b.len()),
            TValue::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            TValue::Map(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                f.write_str("}")
            }
            TValue::Struct(fields) => {
                f.write_str("struct {")?;
                for (i, (id, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{id}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttype_wire_round_trip() {
        for b in 0x01..=0x0cu8 {
            let t = TType::from_wire(b).unwrap();
            assert_eq!(t as u8, b);
        }
        assert!(TType::from_wire(0x00).is_err());
        assert!(TType::from_wire(0x0d).is_err());
        assert!(TType::from_wire(0xff).is_err());
    }

    #[test]
    fn bool_folds_into_type() {
        assert_eq!(TValue::Bool(true).ttype(), TType::BoolTrue);
        assert_eq!(TValue::Bool(false).ttype(), TType::BoolFalse);
        assert!(TType::BoolTrue.is_bool());
        assert!(!TType::I64.is_bool());
    }

    #[test]
    fn field_lookup() {
        let s = TValue::Struct(vec![(1, TValue::I64(7)), (3, TValue::String("x".into()))]);
        assert_eq!(s.field(1).and_then(TValue::as_i64), Some(7));
        assert_eq!(s.field(3).and_then(TValue::as_str), Some("x"));
        assert!(s.field(2).is_none());
        assert!(TValue::I64(0).field(1).is_none());
    }

    #[test]
    fn widening_integer_accessor() {
        assert_eq!(TValue::I8(-5).as_i64(), Some(-5));
        assert_eq!(TValue::I16(300).as_i64(), Some(300));
        assert_eq!(TValue::I32(-70000).as_i64(), Some(-70000));
        assert_eq!(TValue::String("7".into()).as_i64(), None);
    }

    #[test]
    fn display_renders_nested() {
        let mut m = BTreeMap::new();
        m.insert("rank".to_string(), TValue::I32(3));
        let v = TValue::Struct(vec![(7, TValue::Map(m))]);
        assert_eq!(v.to_string(), "struct {7: {\"rank\": 3}}");
    }
}
