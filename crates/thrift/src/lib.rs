//! A Thrift-style serialization substrate.
//!
//! The paper serializes all client events as Thrift messages (§3): a compact,
//! tagged, language-neutral encoding that supports *schema evolution* —
//! messages "can be augmented with additional fields in a completely
//! transparent way". This crate reproduces the properties the logging
//! infrastructure depends on:
//!
//! * a **compact binary protocol** ([`protocol`]) with field-tag deltas,
//!   LEB128 varints and zigzag integers, modeled after the Apache Thrift
//!   compact protocol;
//! * **forward/backward compatibility**: readers skip unknown fields, writers
//!   omit unset optional fields ([`record::ThriftRecord`]);
//! * **lazy, zero-copy decoding** ([`lazy`]): a [`lazy::FieldCursor`] walks
//!   field tags and skips non-requested fields without allocating, so scans
//!   can push column projections down to the decode loop;
//! * a **dynamic value model** ([`value::TValue`]) so tooling (the client
//!   event catalog, log scrapers) can inspect messages without compiled
//!   schemas; and
//! * a **schema registry** ([`schema`]) mapping category names to message
//!   descriptors, standing in for Elephant Bird's generated readers/writers.
//!
//! # Example
//!
//! ```
//! use uli_thrift::protocol::{CompactWriter, CompactReader};
//! use uli_thrift::value::TType;
//!
//! let mut w = CompactWriter::new();
//! w.struct_begin();
//! w.field_i64(1, 42);             // user_id
//! w.field_string(2, "s-abc");     // session_id
//! w.struct_end();
//! let bytes = w.into_bytes();
//!
//! let mut r = CompactReader::new(&bytes);
//! r.struct_begin().unwrap();
//! let f = r.field_begin().unwrap().unwrap();
//! assert_eq!((f.id, f.ttype), (1, TType::I64));
//! assert_eq!(r.read_i64().unwrap(), 42);
//! ```

pub mod error;
pub mod lazy;
pub mod protocol;
pub mod record;
pub mod schema;
pub mod value;
pub mod varint;

pub use error::{ThriftError, ThriftResult};
pub use lazy::{FieldCursor, LazyRecord, Projection};
pub use protocol::{CompactReader, CompactWriter, FieldHeader};
pub use record::ThriftRecord;
pub use schema::{FieldDescriptor, Requiredness, SchemaRegistry, StructDescriptor};
pub use value::{TType, TValue};
