//! Struct descriptors and the schema registry.
//!
//! With application-specific logging, "obtaining a complete catalog of all
//! possible message types is difficult" (§3.1). The registry makes message
//! shapes explicit: each Scribe category maps to a [`StructDescriptor`], and
//! decoded [`TValue`]s can be validated against it. This is the metadata that
//! developers had to "supply … to link their logs to the Thrift object
//! description".

use std::collections::BTreeMap;

use crate::value::{TType, TValue};

/// Whether a field must be present on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requiredness {
    /// Decoding fails if the field is absent.
    Required,
    /// The field may be absent.
    Optional,
}

/// One field of a struct schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDescriptor {
    /// Wire field id.
    pub id: i16,
    /// Human name (snake_case by this repo's convention — §3.1 documents the
    /// chaos that ensues otherwise).
    pub name: String,
    /// Declared type. Booleans are declared as `BoolTrue`.
    pub ttype: TType,
    /// Presence requirement.
    pub required: Requiredness,
}

/// Schema of a struct: ordered fields plus a name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StructDescriptor {
    /// Struct name, e.g. `ClientEvent`.
    pub name: String,
    /// Fields sorted by id.
    pub fields: Vec<FieldDescriptor>,
}

/// A single validation problem found by [`StructDescriptor::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaViolation {
    /// A required field is absent.
    MissingRequired {
        /// Field id from the descriptor.
        id: i16,
        /// Field name from the descriptor.
        name: String,
    },
    /// A present field has a type other than the declared one.
    TypeMismatch {
        /// Field id.
        id: i16,
        /// Declared type.
        expected: TType,
        /// Type found in the value.
        found: TType,
    },
    /// A field id not present in the descriptor (informational: legal under
    /// schema evolution, surfaced so catalogs can flag drift).
    UnknownField {
        /// Field id found in the value.
        id: i16,
    },
}

impl StructDescriptor {
    /// Builds a descriptor from `(id, name, type, requiredness)` tuples.
    pub fn new(
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (i16, &'static str, TType, Requiredness)>,
    ) -> Self {
        let mut fields: Vec<FieldDescriptor> = fields
            .into_iter()
            .map(|(id, name, ttype, required)| FieldDescriptor {
                id,
                name: name.to_string(),
                ttype,
                required,
            })
            .collect();
        fields.sort_by_key(|f| f.id);
        StructDescriptor {
            name: name.into(),
            fields,
        }
    }

    /// Looks up a field by id.
    pub fn field(&self, id: i16) -> Option<&FieldDescriptor> {
        self.fields.iter().find(|f| f.id == id)
    }

    /// Looks up a field by name.
    pub fn field_by_name(&self, name: &str) -> Option<&FieldDescriptor> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Checks a dynamic struct value against this schema.
    ///
    /// Unknown fields are reported but are not errors — that is the point of
    /// extensible messages. Returns all violations rather than failing fast
    /// so catalog tooling can show a complete report.
    pub fn validate(&self, value: &TValue) -> Vec<SchemaViolation> {
        let mut out = Vec::new();
        let fields = match value {
            TValue::Struct(fields) => fields,
            _ => {
                out.push(SchemaViolation::TypeMismatch {
                    id: 0,
                    expected: TType::Struct,
                    found: value.ttype(),
                });
                return out;
            }
        };
        for fd in &self.fields {
            match fields.iter().find(|(id, _)| *id == fd.id) {
                None => {
                    if fd.required == Requiredness::Required {
                        out.push(SchemaViolation::MissingRequired {
                            id: fd.id,
                            name: fd.name.clone(),
                        });
                    }
                }
                Some((_, v)) => {
                    let found = v.ttype();
                    let matches = found == fd.ttype
                        || (found.is_bool() && fd.ttype.is_bool())
                        // Sets and lists share a wire shape.
                        || (found == TType::List && fd.ttype == TType::Set);
                    if !matches {
                        out.push(SchemaViolation::TypeMismatch {
                            id: fd.id,
                            expected: fd.ttype,
                            found,
                        });
                    }
                }
            }
        }
        for (id, _) in fields {
            if self.field(*id).is_none() {
                out.push(SchemaViolation::UnknownField { id: *id });
            }
        }
        out
    }
}

/// Maps Scribe category names to struct descriptors.
///
/// With application-specific logging every category had its own shape; the
/// registry is the single place downstream tooling consults to decode a
/// category's messages.
#[derive(Debug, Default)]
pub struct SchemaRegistry {
    by_category: BTreeMap<String, StructDescriptor>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the schema for `category`.
    pub fn register(&mut self, category: impl Into<String>, schema: StructDescriptor) {
        self.by_category.insert(category.into(), schema);
    }

    /// Returns the schema for `category`, if registered.
    pub fn get(&self, category: &str) -> Option<&StructDescriptor> {
        self.by_category.get(category)
    }

    /// Iterates categories in lexicographic order.
    pub fn categories(&self) -> impl Iterator<Item = &str> {
        self.by_category.keys().map(String::as_str)
    }

    /// Number of registered categories.
    pub fn len(&self) -> usize {
        self.by_category.len()
    }

    /// True if no categories are registered.
    pub fn is_empty(&self) -> bool {
        self.by_category.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_schema() -> StructDescriptor {
        StructDescriptor::new(
            "Point",
            [
                (1, "x", TType::I64, Requiredness::Required),
                (2, "y", TType::I64, Requiredness::Required),
                (3, "label", TType::Binary, Requiredness::Optional),
            ],
        )
    }

    #[test]
    fn lookup_by_id_and_name() {
        let s = point_schema();
        assert_eq!(s.field(1).unwrap().name, "x");
        assert_eq!(s.field_by_name("label").unwrap().id, 3);
        assert!(s.field(9).is_none());
        assert!(s.field_by_name("z").is_none());
    }

    #[test]
    fn valid_struct_passes() {
        let v = TValue::Struct(vec![(1, TValue::I64(1)), (2, TValue::I64(2))]);
        assert!(point_schema().validate(&v).is_empty());
    }

    #[test]
    fn missing_required_is_reported() {
        let v = TValue::Struct(vec![(1, TValue::I64(1))]);
        let viol = point_schema().validate(&v);
        assert_eq!(
            viol,
            vec![SchemaViolation::MissingRequired {
                id: 2,
                name: "y".into()
            }]
        );
    }

    #[test]
    fn missing_optional_is_fine() {
        let v = TValue::Struct(vec![(1, TValue::I64(1)), (2, TValue::I64(2))]);
        assert!(point_schema().validate(&v).is_empty());
    }

    #[test]
    fn type_mismatch_is_reported() {
        let v = TValue::Struct(vec![
            (1, TValue::String("oops".into())),
            (2, TValue::I64(2)),
        ]);
        let viol = point_schema().validate(&v);
        assert_eq!(
            viol,
            vec![SchemaViolation::TypeMismatch {
                id: 1,
                expected: TType::I64,
                found: TType::Binary
            }]
        );
    }

    #[test]
    fn unknown_field_is_informational() {
        let v = TValue::Struct(vec![
            (1, TValue::I64(1)),
            (2, TValue::I64(2)),
            (99, TValue::Bool(true)),
        ]);
        let viol = point_schema().validate(&v);
        assert_eq!(viol, vec![SchemaViolation::UnknownField { id: 99 }]);
    }

    #[test]
    fn non_struct_value_fails() {
        let viol = point_schema().validate(&TValue::I64(1));
        assert_eq!(viol.len(), 1);
        assert!(matches!(viol[0], SchemaViolation::TypeMismatch { .. }));
    }

    #[test]
    fn registry_registers_and_lists() {
        let mut reg = SchemaRegistry::new();
        assert!(reg.is_empty());
        reg.register("client_events", point_schema());
        reg.register("ads_serving", point_schema());
        assert_eq!(reg.len(), 2);
        assert_eq!(
            reg.categories().collect::<Vec<_>>(),
            vec!["ads_serving", "client_events"]
        );
        assert!(reg.get("client_events").is_some());
        assert!(reg.get("nope").is_none());
    }
}
