//! The compact binary protocol: writer and reader.
//!
//! Modeled on the Apache Thrift compact protocol: field headers encode the
//! delta from the previous field id in the high nibble when it fits, integers
//! travel as zigzag varints, booleans fold their value into the type nibble,
//! and structs terminate with a stop byte. Unknown fields can always be
//! skipped structurally ([`CompactReader::skip`]), which is what makes schema
//! evolution "completely transparent" (§3 of the paper).

use std::collections::BTreeMap;

use crate::error::{ThriftError, ThriftResult};
use crate::value::{TType, TValue};
use crate::varint;

/// Stop byte terminating a struct's field list.
const STOP: u8 = 0x00;
/// Maximum nesting depth accepted when decoding (guards hostile input).
const MAX_DEPTH: usize = 64;

/// A decoded field header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldHeader {
    /// Field identifier from the schema.
    pub id: i16,
    /// Wire type of the field's value.
    pub ttype: TType,
}

/// Streaming encoder for the compact protocol.
///
/// The writer is infallible: it only appends to an in-memory buffer.
#[derive(Debug, Default)]
pub struct CompactWriter {
    buf: Vec<u8>,
    last_field_id: Vec<i16>,
}

impl CompactWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with a pre-sized buffer, for hot encode loops.
    pub fn with_capacity(cap: usize) -> Self {
        CompactWriter {
            buf: Vec::with_capacity(cap),
            last_field_id: Vec::new(),
        }
    }

    /// Creates a writer that appends to an existing buffer, so a caller
    /// encoding a stream of records can reuse one allocation throughout.
    /// Existing contents are preserved; [`CompactWriter::into_bytes`] hands
    /// the buffer back.
    pub fn over_buffer(buf: Vec<u8>) -> Self {
        CompactWriter {
            buf,
            last_field_id: Vec::new(),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        debug_assert!(
            self.last_field_id.is_empty(),
            "unbalanced struct_begin/struct_end"
        );
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Begins a struct scope. Field-id deltas reset inside.
    pub fn struct_begin(&mut self) {
        self.last_field_id.push(0);
    }

    /// Ends the current struct scope, emitting the stop byte.
    pub fn struct_end(&mut self) {
        self.buf.push(STOP);
        self.last_field_id
            .pop()
            .expect("struct_end without struct_begin");
    }

    fn field_header(&mut self, id: i16, ttype: TType) {
        let last = self
            .last_field_id
            .last_mut()
            .expect("field outside a struct");
        let delta = i32::from(id) - i32::from(*last);
        if (1..=15).contains(&delta) {
            self.buf.push(((delta as u8) << 4) | ttype as u8);
        } else {
            self.buf.push(ttype as u8);
            varint::write_i64(&mut self.buf, i64::from(id));
        }
        *last = id;
    }

    /// Writes a boolean field; the value lives in the type nibble.
    pub fn field_bool(&mut self, id: i16, value: bool) {
        let t = if value {
            TType::BoolTrue
        } else {
            TType::BoolFalse
        };
        self.field_header(id, t);
    }

    /// Writes an `i8` field.
    pub fn field_i8(&mut self, id: i16, value: i8) {
        self.field_header(id, TType::I8);
        self.buf.push(value as u8);
    }

    /// Writes an `i16` field.
    pub fn field_i16(&mut self, id: i16, value: i16) {
        self.field_header(id, TType::I16);
        varint::write_i64(&mut self.buf, i64::from(value));
    }

    /// Writes an `i32` field.
    pub fn field_i32(&mut self, id: i16, value: i32) {
        self.field_header(id, TType::I32);
        varint::write_i64(&mut self.buf, i64::from(value));
    }

    /// Writes an `i64` field.
    pub fn field_i64(&mut self, id: i16, value: i64) {
        self.field_header(id, TType::I64);
        varint::write_i64(&mut self.buf, value);
    }

    /// Writes a double field (8 bytes, little-endian).
    pub fn field_double(&mut self, id: i16, value: f64) {
        self.field_header(id, TType::Double);
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a UTF-8 string field.
    pub fn field_string(&mut self, id: i16, value: &str) {
        self.field_header(id, TType::Binary);
        self.write_len_prefixed(value.as_bytes());
    }

    /// Writes a binary field.
    pub fn field_binary(&mut self, id: i16, value: &[u8]) {
        self.field_header(id, TType::Binary);
        self.write_len_prefixed(value);
    }

    /// Writes a string→string map field (the shape of `event_details`).
    pub fn field_string_map(&mut self, id: i16, entries: &BTreeMap<String, String>) {
        self.field_header(id, TType::Map);
        self.map_begin(entries.len(), TType::Binary, TType::Binary);
        for (k, v) in entries {
            self.write_len_prefixed(k.as_bytes());
            self.write_len_prefixed(v.as_bytes());
        }
    }

    /// Opens a nested struct field; caller must pair with `struct_end`.
    pub fn field_struct_begin(&mut self, id: i16) {
        self.field_header(id, TType::Struct);
        self.struct_begin();
    }

    /// Opens a list field. Caller then writes `count` raw elements.
    pub fn field_list_begin(&mut self, id: i16, count: usize, elem: TType) {
        self.field_header(id, TType::List);
        self.list_begin(count, elem);
    }

    /// Writes a list header outside any field (for nested collections).
    pub fn list_begin(&mut self, count: usize, elem: TType) {
        if count < 15 {
            self.buf.push(((count as u8) << 4) | elem as u8);
        } else {
            self.buf.push(0xf0 | elem as u8);
            varint::write_u64(&mut self.buf, count as u64);
        }
    }

    /// Writes a map header: varint size, then (if non-empty) a key/value type byte.
    pub fn map_begin(&mut self, count: usize, key: TType, value: TType) {
        varint::write_u64(&mut self.buf, count as u64);
        if count > 0 {
            self.buf.push(((key as u8) << 4) | value as u8);
        }
    }

    /// Writes a bare (element-position) value of each scalar kind.
    pub fn write_raw_i64(&mut self, value: i64) {
        varint::write_i64(&mut self.buf, value);
    }

    /// Writes a bare length-prefixed string.
    pub fn write_raw_string(&mut self, value: &str) {
        self.write_len_prefixed(value.as_bytes());
    }

    fn write_len_prefixed(&mut self, bytes: &[u8]) {
        varint::write_u64(&mut self.buf, bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a dynamic [`TValue`] as field `id`.
    pub fn field_value(&mut self, id: i16, value: &TValue) {
        self.field_header(id, value.ttype());
        self.write_value_body(value);
    }

    fn write_value_body(&mut self, value: &TValue) {
        match value {
            // Booleans in field position carry no body; in element position
            // they are a full byte.
            TValue::Bool(_) => {}
            TValue::I8(v) => self.buf.push(*v as u8),
            TValue::I16(v) => {
                varint::write_i64(&mut self.buf, i64::from(*v));
            }
            TValue::I32(v) => {
                varint::write_i64(&mut self.buf, i64::from(*v));
            }
            TValue::I64(v) => {
                varint::write_i64(&mut self.buf, *v);
            }
            TValue::Double(v) => self.buf.extend_from_slice(&v.to_le_bytes()),
            TValue::String(s) => self.write_len_prefixed(s.as_bytes()),
            TValue::Binary(b) => self.write_len_prefixed(b),
            TValue::List(items) => {
                let elem = items.first().map_or(TType::Binary, TValue::ttype);
                self.list_begin(items.len(), elem);
                for item in items {
                    self.write_element(item);
                }
            }
            TValue::Map(entries) => {
                let vt = entries.values().next().map_or(TType::Binary, TValue::ttype);
                self.map_begin(entries.len(), TType::Binary, vt);
                for (k, v) in entries {
                    self.write_len_prefixed(k.as_bytes());
                    self.write_element(v);
                }
            }
            TValue::Struct(fields) => {
                self.struct_begin();
                for (id, v) in fields {
                    self.field_value(*id, v);
                }
                self.struct_end();
            }
        }
    }

    /// Writes a value in element position (lists/map values), where booleans
    /// occupy a full byte.
    fn write_element(&mut self, value: &TValue) {
        if let TValue::Bool(b) = value {
            self.buf.push(if *b { 1 } else { 0 });
        } else {
            self.write_value_body(value);
        }
    }
}

/// Streaming decoder for the compact protocol.
#[derive(Debug)]
pub struct CompactReader<'a> {
    input: &'a [u8],
    pos: usize,
    last_field_id: Vec<i16>,
}

impl<'a> CompactReader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        CompactReader {
            input,
            pos: 0,
            last_field_id: Vec::new(),
        }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn take(&mut self, n: usize, reading: &'static str) -> ThriftResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ThriftError::UnexpectedEof { reading });
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_byte(&mut self, reading: &'static str) -> ThriftResult<u8> {
        Ok(self.take(1, reading)?[0])
    }

    fn read_varint_u64(&mut self) -> ThriftResult<u64> {
        let (v, n) = varint::read_u64(&self.input[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    fn read_varint_i64(&mut self) -> ThriftResult<i64> {
        let (v, n) = varint::read_i64(&self.input[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Enters a struct scope.
    pub fn struct_begin(&mut self) -> ThriftResult<()> {
        if self.last_field_id.len() >= MAX_DEPTH {
            return Err(ThriftError::DepthLimitExceeded);
        }
        self.last_field_id.push(0);
        Ok(())
    }

    /// Leaves a struct scope. Must be called after `field_begin` returned `None`.
    pub fn struct_end(&mut self) {
        self.last_field_id
            .pop()
            .expect("struct_end without struct_begin");
    }

    /// Reads the next field header, or `None` at the stop byte.
    pub fn field_begin(&mut self) -> ThriftResult<Option<FieldHeader>> {
        let byte = self.take_byte("field header")?;
        if byte == STOP {
            return Ok(None);
        }
        let ttype = TType::from_wire(byte & 0x0f)?;
        let delta = (byte >> 4) as i16;
        let last = self
            .last_field_id
            .last_mut()
            .expect("field_begin outside a struct");
        let id = if delta != 0 {
            *last + delta
        } else {
            let (v, n) = varint::read_i64(&self.input[self.pos..])?;
            self.pos += n;
            i16::try_from(v).map_err(|_| ThriftError::InvalidLength(v))?
        };
        *last = id;
        Ok(Some(FieldHeader { id, ttype }))
    }

    /// Reads an `i8` value.
    pub fn read_i8(&mut self) -> ThriftResult<i8> {
        Ok(self.take_byte("i8")? as i8)
    }

    /// Reads an `i16` value.
    pub fn read_i16(&mut self) -> ThriftResult<i16> {
        let v = self.read_varint_i64()?;
        i16::try_from(v).map_err(|_| ThriftError::InvalidLength(v))
    }

    /// Reads an `i32` value.
    pub fn read_i32(&mut self) -> ThriftResult<i32> {
        let v = self.read_varint_i64()?;
        i32::try_from(v).map_err(|_| ThriftError::InvalidLength(v))
    }

    /// Reads an `i64` value.
    pub fn read_i64(&mut self) -> ThriftResult<i64> {
        self.read_varint_i64()
    }

    /// Reads a double value.
    pub fn read_double(&mut self) -> ThriftResult<f64> {
        let bytes = self.take(8, "double")?;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> ThriftResult<&'a [u8]> {
        let len = self.read_varint_u64()?;
        if len > self.remaining() as u64 {
            return Err(ThriftError::InvalidLength(len as i64));
        }
        self.take(len as usize, "binary body")
    }

    /// Reads a UTF-8 string.
    pub fn read_string(&mut self) -> ThriftResult<&'a str> {
        let bytes = self.read_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| ThriftError::InvalidUtf8)
    }

    /// Reads a list header: (element type, count).
    pub fn list_begin(&mut self) -> ThriftResult<(TType, usize)> {
        let byte = self.take_byte("list header")?;
        let elem = TType::from_wire(byte & 0x0f)?;
        let short = (byte >> 4) as usize;
        let count = if short == 15 {
            let n = self.read_varint_u64()?;
            if n > self.remaining() as u64 {
                return Err(ThriftError::InvalidLength(n as i64));
            }
            n as usize
        } else {
            short
        };
        Ok((elem, count))
    }

    /// Reads a map header: (key type, value type, count). Types are `Binary`
    /// for an empty map (they are absent on the wire).
    pub fn map_begin(&mut self) -> ThriftResult<(TType, TType, usize)> {
        let count = self.read_varint_u64()?;
        if count == 0 {
            return Ok((TType::Binary, TType::Binary, 0));
        }
        if count > self.remaining() as u64 {
            return Err(ThriftError::InvalidLength(count as i64));
        }
        let byte = self.take_byte("map types")?;
        let key = TType::from_wire(byte >> 4)?;
        let value = TType::from_wire(byte & 0x0f)?;
        Ok((key, value, count as usize))
    }

    /// Reads a string→string map (the `event_details` shape).
    pub fn read_string_map(&mut self) -> ThriftResult<BTreeMap<String, String>> {
        let (_, _, count) = self.map_begin()?;
        let mut out = BTreeMap::new();
        for _ in 0..count {
            let k = self.read_string()?.to_owned();
            let v = self.read_string()?.to_owned();
            out.insert(k, v);
        }
        Ok(out)
    }

    /// Skips a value of the given wire type in *field position*.
    ///
    /// This is the mechanism that lets old readers process messages from new
    /// writers: any unrecognized field is structurally skipped.
    pub fn skip(&mut self, ttype: TType) -> ThriftResult<()> {
        self.skip_depth(ttype, 0, true)
    }

    fn skip_depth(&mut self, ttype: TType, depth: usize, field_position: bool) -> ThriftResult<()> {
        if depth > MAX_DEPTH {
            return Err(ThriftError::DepthLimitExceeded);
        }
        match ttype {
            TType::BoolTrue | TType::BoolFalse => {
                // In field position the value is in the header; in element
                // position it is one byte.
                if !field_position {
                    self.take_byte("bool element")?;
                }
            }
            TType::I8 => {
                self.take_byte("i8")?;
            }
            TType::I16 | TType::I32 | TType::I64 => {
                self.read_varint_i64()?;
            }
            TType::Double => {
                self.take(8, "double")?;
            }
            TType::Binary => {
                self.read_bytes()?;
            }
            TType::List | TType::Set => {
                let (elem, count) = self.list_begin()?;
                for _ in 0..count {
                    self.skip_depth(elem, depth + 1, false)?;
                }
            }
            TType::Map => {
                let (k, v, count) = self.map_begin()?;
                for _ in 0..count {
                    self.skip_depth(k, depth + 1, false)?;
                    self.skip_depth(v, depth + 1, false)?;
                }
            }
            TType::Struct => {
                self.struct_begin()?;
                while let Some(h) = self.field_begin()? {
                    self.skip_depth(h.ttype, depth + 1, true)?;
                }
                self.struct_end();
            }
        }
        Ok(())
    }

    /// Decodes a whole struct into a dynamic [`TValue::Struct`].
    pub fn read_struct_value(&mut self) -> ThriftResult<TValue> {
        self.read_value_depth(TType::Struct, 0, true, false)
    }

    fn read_value_depth(
        &mut self,
        ttype: TType,
        depth: usize,
        field_position: bool,
        field_bool_value: bool,
    ) -> ThriftResult<TValue> {
        if depth > MAX_DEPTH {
            return Err(ThriftError::DepthLimitExceeded);
        }
        Ok(match ttype {
            TType::BoolTrue | TType::BoolFalse => {
                if field_position {
                    TValue::Bool(field_bool_value)
                } else {
                    TValue::Bool(self.take_byte("bool element")? != 0)
                }
            }
            TType::I8 => TValue::I8(self.read_i8()?),
            TType::I16 => TValue::I16(self.read_i16()?),
            TType::I32 => TValue::I32(self.read_i32()?),
            TType::I64 => TValue::I64(self.read_i64()?),
            TType::Double => TValue::Double(self.read_double()?),
            TType::Binary => {
                let bytes = self.read_bytes()?;
                match std::str::from_utf8(bytes) {
                    Ok(s) => TValue::String(s.to_owned()),
                    Err(_) => TValue::Binary(bytes.to_vec()),
                }
            }
            TType::List | TType::Set => {
                let (elem, count) = self.list_begin()?;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    items.push(self.read_value_depth(elem, depth + 1, false, false)?);
                }
                TValue::List(items)
            }
            TType::Map => {
                let (kt, vt, count) = self.map_begin()?;
                let mut entries = BTreeMap::new();
                for _ in 0..count {
                    let key = match self.read_value_depth(kt, depth + 1, false, false)? {
                        TValue::String(s) => s,
                        other => other.to_string(),
                    };
                    entries.insert(key, self.read_value_depth(vt, depth + 1, false, false)?);
                }
                TValue::Map(entries)
            }
            TType::Struct => {
                self.struct_begin()?;
                let mut fields = Vec::new();
                while let Some(h) = self.field_begin()? {
                    let v = self.read_value_depth(
                        h.ttype,
                        depth + 1,
                        true,
                        h.ttype == TType::BoolTrue,
                    )?;
                    fields.push((h.id, v));
                }
                self.struct_end();
                TValue::Struct(fields)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &TValue) -> TValue {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_value(1, value);
        w.struct_end();
        let bytes = w.into_bytes();
        let mut r = CompactReader::new(&bytes);
        let decoded = r.read_struct_value().unwrap();
        assert_eq!(r.remaining(), 0, "all bytes consumed");
        decoded.field(1).unwrap().clone()
    }

    #[test]
    fn scalar_fields_round_trip() {
        assert_eq!(round_trip(&TValue::Bool(true)), TValue::Bool(true));
        assert_eq!(round_trip(&TValue::Bool(false)), TValue::Bool(false));
        assert_eq!(round_trip(&TValue::I8(-3)), TValue::I8(-3));
        assert_eq!(round_trip(&TValue::I16(1234)), TValue::I16(1234));
        assert_eq!(round_trip(&TValue::I32(-99999)), TValue::I32(-99999));
        assert_eq!(round_trip(&TValue::I64(1 << 50)), TValue::I64(1 << 50));
        assert_eq!(round_trip(&TValue::Double(3.25)), TValue::Double(3.25));
        assert_eq!(
            round_trip(&TValue::String("héllo".into())),
            TValue::String("héllo".into())
        );
    }

    #[test]
    fn nested_struct_round_trips() {
        let inner = TValue::Struct(vec![(1, TValue::I64(9)), (2, TValue::Bool(true))]);
        let outer = TValue::Struct(vec![(5, inner.clone()), (6, TValue::String("x".into()))]);
        assert_eq!(round_trip(&outer), outer);
    }

    #[test]
    fn list_and_map_round_trip() {
        let list = TValue::List(vec![TValue::I64(1), TValue::I64(2), TValue::I64(3)]);
        assert_eq!(round_trip(&list), list);

        let mut m = BTreeMap::new();
        m.insert("url".to_string(), TValue::String("https://t.co/x".into()));
        m.insert("rank".to_string(), TValue::String("3".into()));
        let map = TValue::Map(m);
        assert_eq!(round_trip(&map), map);
    }

    #[test]
    fn long_list_uses_extended_header() {
        let items: Vec<TValue> = (0..100).map(TValue::I64).collect();
        let list = TValue::List(items);
        assert_eq!(round_trip(&list), list);
    }

    #[test]
    fn field_id_delta_and_long_form() {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i64(1, 10);
        w.field_i64(2, 20); // delta 1
        w.field_i64(100, 30); // delta 98: long form
        w.field_i64(101, 40); // delta 1 again
        w.struct_end();
        let bytes = w.into_bytes();
        let mut r = CompactReader::new(&bytes);
        r.struct_begin().unwrap();
        let mut seen = Vec::new();
        while let Some(h) = r.field_begin().unwrap() {
            seen.push((h.id, r.read_i64().unwrap()));
        }
        r.struct_end();
        assert_eq!(seen, vec![(1, 10), (2, 20), (100, 30), (101, 40)]);
    }

    #[test]
    fn unknown_fields_are_skippable() {
        // "New writer" emits fields 1, 2 (a nested struct), 3.
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i64(1, 7);
        w.field_struct_begin(2);
        w.field_string(1, "nested");
        w.field_list_begin(2, 2, TType::I64);
        w.write_raw_i64(5);
        w.write_raw_i64(6);
        w.struct_end();
        w.field_string(3, "tail");
        w.struct_end();
        let bytes = w.into_bytes();

        // "Old reader" only understands fields 1 and 3.
        let mut r = CompactReader::new(&bytes);
        r.struct_begin().unwrap();
        let mut got_one = None;
        let mut got_three = None;
        while let Some(h) = r.field_begin().unwrap() {
            match h.id {
                1 => got_one = Some(r.read_i64().unwrap()),
                3 => got_three = Some(r.read_string().unwrap().to_owned()),
                _ => r.skip(h.ttype).unwrap(),
            }
        }
        r.struct_end();
        assert_eq!(got_one, Some(7));
        assert_eq!(got_three.as_deref(), Some("tail"));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_struct_errors() {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_string(1, "hello world");
        w.struct_end();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = CompactReader::new(&bytes[..cut]);
            assert!(r.read_struct_value().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_length_is_rejected() {
        // Field header for Binary, then a varint length far beyond the buffer.
        let mut buf = vec![0x18]; // delta 1, type Binary
        varint::write_u64(&mut buf, 1 << 40);
        buf.push(0x00);
        let mut r = CompactReader::new(&buf);
        r.struct_begin().unwrap();
        let h = r.field_begin().unwrap().unwrap();
        assert_eq!(h.ttype, TType::Binary);
        assert!(matches!(r.read_bytes(), Err(ThriftError::InvalidLength(_))));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        // 100 nested structs exceeds MAX_DEPTH = 64.
        let mut buf = vec![0x1c; 100]; // delta 1, type Struct, 100 deep
        buf.extend(std::iter::repeat_n(STOP, 101));
        let mut r = CompactReader::new(&buf);
        assert!(matches!(
            r.read_struct_value(),
            Err(ThriftError::DepthLimitExceeded)
        ));
    }

    #[test]
    fn string_map_helper_round_trips() {
        let mut details = BTreeMap::new();
        details.insert("profile_id".to_string(), "12345".to_string());
        details.insert("rank".to_string(), "2".to_string());
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_string_map(7, &details);
        w.struct_end();
        let bytes = w.into_bytes();
        let mut r = CompactReader::new(&bytes);
        r.struct_begin().unwrap();
        let h = r.field_begin().unwrap().unwrap();
        assert_eq!(h.id, 7);
        assert_eq!(r.read_string_map().unwrap(), details);
    }

    #[test]
    fn empty_map_is_one_byte() {
        let empty = BTreeMap::new();
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_string_map(1, &empty);
        w.struct_end();
        // header + 0x00 size + stop
        assert_eq!(w.into_bytes().len(), 3);
    }
}
