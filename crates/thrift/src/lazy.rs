//! Lazy, zero-copy record decoding for projection pushdown.
//!
//! The paper's session jobs "performing large amounts of brute force scans"
//! (§4.1) decode every field of every message even when a query touches two
//! columns. A [`FieldCursor`] walks a compact-protocol struct field by
//! field, letting the caller *choose* per field whether to materialize it or
//! structurally skip it — no `TValue` tree, no `String`/`Vec` for dropped
//! columns. [`LazyRecord`] layers a [`Projection`] on top: non-requested
//! fields are skipped automatically and only counted.
//!
//! All string/binary reads borrow from the record buffer ([`CompactReader`]
//! is zero-copy), so a caller that projects two columns allocates for those
//! two columns only.

use crate::error::ThriftResult;
use crate::protocol::{CompactReader, FieldHeader};
use crate::value::TType;

/// A set of requested Thrift field ids — the column set a scan pushes down.
///
/// Field ids 1..=64 are tracked exactly in a bitmap. Inserting an id outside
/// that range degrades the projection to "request everything": decoding too
/// much is always correct, silently dropping a requested field is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    bits: u64,
    all: bool,
}

impl Projection {
    /// Requests every field (lazy decoding degenerates to a full walk).
    pub fn all() -> Projection {
        Projection {
            bits: u64::MAX,
            all: true,
        }
    }

    /// Requests no fields (every field is skipped and counted).
    pub fn none() -> Projection {
        Projection {
            bits: 0,
            all: false,
        }
    }

    /// A projection of the given field ids.
    pub fn of(ids: impl IntoIterator<Item = i16>) -> Projection {
        let mut p = Projection::none();
        for id in ids {
            p.insert(id);
        }
        p
    }

    /// Adds a field id to the request set.
    pub fn insert(&mut self, id: i16) {
        if (1..=64).contains(&id) {
            self.bits |= 1 << (id - 1);
        } else {
            // Out-of-range ids cannot be tracked exactly; fail open.
            self.all = true;
        }
    }

    /// True when field `id` is requested.
    pub fn contains(&self, id: i16) -> bool {
        self.all || ((1..=64).contains(&id) && self.bits & (1 << (id - 1)) != 0)
    }

    /// True when every field is requested.
    pub fn is_all(&self) -> bool {
        self.all
    }
}

/// A cursor over the top-level fields of one encoded struct.
///
/// Drives [`CompactReader`] one field at a time: [`next_field`] yields the
/// next header (handling the stop byte), after which the caller must consume
/// the value — either with one of the typed reads or with [`skip_value`].
/// Skipping is structural (nested structs/lists/maps are traversed without
/// building values) and counted in [`fields_skipped`].
///
/// [`next_field`]: FieldCursor::next_field
/// [`skip_value`]: FieldCursor::skip_value
/// [`fields_skipped`]: FieldCursor::fields_skipped
#[derive(Debug)]
pub struct FieldCursor<'a> {
    reader: CompactReader<'a>,
    fields_skipped: u64,
    in_struct: bool,
}

impl<'a> FieldCursor<'a> {
    /// Opens a cursor over `record` (one encoded struct).
    pub fn begin(record: &'a [u8]) -> ThriftResult<FieldCursor<'a>> {
        let mut reader = CompactReader::new(record);
        reader.struct_begin()?;
        Ok(FieldCursor {
            reader,
            fields_skipped: 0,
            in_struct: true,
        })
    }

    /// The next field header, or `None` at the stop byte (which closes the
    /// struct scope).
    pub fn next_field(&mut self) -> ThriftResult<Option<FieldHeader>> {
        match self.reader.field_begin()? {
            Some(h) => Ok(Some(h)),
            None => {
                if self.in_struct {
                    self.reader.struct_end();
                    self.in_struct = false;
                }
                Ok(None)
            }
        }
    }

    /// Structurally skips the current field's value and counts it.
    pub fn skip_value(&mut self, ttype: TType) -> ThriftResult<()> {
        self.reader.skip(ttype)?;
        self.fields_skipped += 1;
        Ok(())
    }

    /// Counts a field as skipped without consuming anything — for callers
    /// that validate a field's bytes cheaply but do not materialize it.
    pub fn note_skipped(&mut self) {
        self.fields_skipped += 1;
    }

    /// Bool fields carry their value in the header; nothing to read.
    pub fn read_bool(&mut self, header: FieldHeader) -> bool {
        matches!(header.ttype, TType::BoolTrue)
    }

    /// Direct access to the underlying reader for typed value reads.
    pub fn reader(&mut self) -> &mut CompactReader<'a> {
        &mut self.reader
    }

    /// Fields skipped (structurally or via [`note_skipped`]) so far.
    ///
    /// [`note_skipped`]: FieldCursor::note_skipped
    pub fn fields_skipped(&self) -> u64 {
        self.fields_skipped
    }
}

/// A record decoded lazily against a [`Projection`]: iterating yields only
/// requested fields; everything else is skipped without allocating.
#[derive(Debug)]
pub struct LazyRecord<'a> {
    cursor: FieldCursor<'a>,
    projection: Projection,
}

impl<'a> LazyRecord<'a> {
    /// Opens `record` for lazy decoding under `projection`.
    pub fn new(record: &'a [u8], projection: Projection) -> ThriftResult<LazyRecord<'a>> {
        Ok(LazyRecord {
            cursor: FieldCursor::begin(record)?,
            projection,
        })
    }

    /// The next *requested* field header; non-requested fields (including
    /// unknown ids from newer writers) are structurally skipped. The caller
    /// must consume the returned field's value from [`cursor`].
    ///
    /// [`cursor`]: LazyRecord::cursor
    pub fn next_requested(&mut self) -> ThriftResult<Option<FieldHeader>> {
        while let Some(h) = self.cursor.next_field()? {
            if self.projection.contains(h.id) {
                return Ok(Some(h));
            }
            self.cursor.skip_value(h.ttype)?;
        }
        Ok(None)
    }

    /// The cursor, for typed reads of the current field's value.
    pub fn cursor(&mut self) -> &mut FieldCursor<'a> {
        &mut self.cursor
    }

    /// Fields skipped so far.
    pub fn fields_skipped(&self) -> u64 {
        self.cursor.fields_skipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CompactWriter;
    use std::collections::BTreeMap;

    /// A struct exercising every shape: ints, strings, bool, map, nested
    /// struct, plus a high unknown id.
    fn sample_bytes() -> Vec<u8> {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_i8(1, 7);
        w.field_string(2, "hello");
        w.field_i64(3, -42);
        w.field_bool(4, true);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), "v".to_string());
        w.field_string_map(5, &m);
        w.field_struct_begin(6);
        w.field_i32(1, 99);
        w.struct_end();
        w.field_string(90, "future field"); // unknown to old readers
        w.struct_end();
        w.into_bytes()
    }

    #[test]
    fn projection_set_semantics() {
        let p = Projection::of([2, 5]);
        assert!(p.contains(2) && p.contains(5));
        assert!(!p.contains(1) && !p.contains(64));
        assert!(Projection::all().contains(33));
        assert!(!Projection::none().contains(1));
        // Out-of-range ids fail open to "all".
        let wide = Projection::of([200]);
        assert!(wide.is_all() && wide.contains(1));
        let mut edge = Projection::none();
        edge.insert(64);
        assert!(edge.contains(64) && !edge.contains(63) && !edge.is_all());
    }

    #[test]
    fn cursor_walks_every_field() {
        let bytes = sample_bytes();
        let mut c = FieldCursor::begin(&bytes).unwrap();
        let mut ids = Vec::new();
        while let Some(h) = c.next_field().unwrap() {
            ids.push(h.id);
            match h.id {
                1 => assert_eq!(c.reader().read_i8().unwrap(), 7),
                2 => assert_eq!(c.reader().read_string().unwrap(), "hello"),
                3 => assert_eq!(c.reader().read_i64().unwrap(), -42),
                4 => assert!(c.read_bool(h)),
                _ => c.skip_value(h.ttype).unwrap(),
            }
        }
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 90]);
        assert_eq!(c.fields_skipped(), 3, "map, nested struct, unknown");
    }

    #[test]
    fn lazy_record_yields_only_requested_fields() {
        let bytes = sample_bytes();
        let mut r = LazyRecord::new(&bytes, Projection::of([2, 3])).unwrap();
        let h = r.next_requested().unwrap().unwrap();
        assert_eq!(h.id, 2);
        assert_eq!(r.cursor().reader().read_string().unwrap(), "hello");
        let h = r.next_requested().unwrap().unwrap();
        assert_eq!(h.id, 3);
        assert_eq!(r.cursor().reader().read_i64().unwrap(), -42);
        assert!(r.next_requested().unwrap().is_none());
        assert_eq!(r.fields_skipped(), 5, "ids 1, 4, 5, 6, 90 skipped");
    }

    #[test]
    fn lazy_decode_agrees_with_full_decode() {
        // Projecting everything must see the same fields, in order, as the
        // eager dynamic decoder.
        let bytes = sample_bytes();
        let mut r = LazyRecord::new(&bytes, Projection::all()).unwrap();
        let mut ids = Vec::new();
        while let Some(h) = r.next_requested().unwrap() {
            ids.push(h.id);
            // Consume via skip: same traversal, no materialization.
            if !matches!(h.ttype, TType::BoolTrue | TType::BoolFalse) {
                r.cursor().reader().skip(h.ttype).unwrap();
            }
        }
        let mut full = CompactReader::new(&bytes);
        let tv = full.read_struct_value().unwrap();
        let crate::value::TValue::Struct(fields) = tv else {
            panic!("expected struct");
        };
        let full_ids: Vec<i16> = fields.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, full_ids);
    }

    #[test]
    fn truncated_record_errors_cleanly() {
        let bytes = sample_bytes();
        let cut = &bytes[..bytes.len() / 2];
        let mut r = LazyRecord::new(cut, Projection::none()).unwrap();
        // An empty projection skips everything in one call, so the first
        // call either reaches the stop byte or trips over the truncation.
        let errored = match r.next_requested() {
            Ok(Some(_)) => unreachable!("empty projection yields nothing"),
            Ok(None) => false,
            Err(_) => true,
        };
        assert!(errored, "truncation must surface as an error");
    }

    #[test]
    fn empty_projection_skips_and_counts_everything() {
        let bytes = sample_bytes();
        let mut r = LazyRecord::new(&bytes, Projection::none()).unwrap();
        assert!(r.next_requested().unwrap().is_none());
        assert_eq!(r.fields_skipped(), 7);
    }
}
