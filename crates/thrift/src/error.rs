//! Error type shared by all encode/decode paths.

use std::fmt;

/// Errors produced while encoding or decoding Thrift data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThriftError {
    /// The input ended before a complete value could be decoded.
    UnexpectedEof {
        /// What the decoder was trying to read.
        reading: &'static str,
    },
    /// A type byte on the wire did not correspond to any known type.
    InvalidType(u8),
    /// A varint ran past its maximum encodable width (corrupt input).
    VarintOverflow,
    /// A length prefix was negative or implausibly large.
    InvalidLength(i64),
    /// String data was not valid UTF-8.
    InvalidUtf8,
    /// A required field was missing when decoding a typed record.
    MissingField {
        /// Struct the field belongs to.
        strukt: &'static str,
        /// Field identifier that was absent.
        field_id: i16,
    },
    /// A field had an unexpected wire type for its declared schema type.
    WrongFieldType {
        /// Field identifier.
        field_id: i16,
        /// Type found on the wire.
        found: u8,
    },
    /// Nesting exceeded the decoder's recursion limit (corrupt or hostile input).
    DepthLimitExceeded,
}

impl fmt::Display for ThriftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThriftError::UnexpectedEof { reading } => {
                write!(f, "unexpected end of input while reading {reading}")
            }
            ThriftError::InvalidType(b) => write!(f, "invalid thrift type byte 0x{b:02x}"),
            ThriftError::VarintOverflow => write!(f, "varint exceeds maximum width"),
            ThriftError::InvalidLength(n) => write!(f, "invalid length prefix {n}"),
            ThriftError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            ThriftError::MissingField { strukt, field_id } => {
                write!(f, "missing required field {field_id} of struct {strukt}")
            }
            ThriftError::WrongFieldType { field_id, found } => {
                write!(f, "field {field_id} has unexpected wire type 0x{found:02x}")
            }
            ThriftError::DepthLimitExceeded => write!(f, "struct nesting depth limit exceeded"),
        }
    }
}

impl std::error::Error for ThriftError {}

/// Convenience alias used throughout the crate.
pub type ThriftResult<T> = Result<T, ThriftError>;
