//! LEB128 varints and zigzag integer coding.
//!
//! The compact protocol stores all integers as unsigned LEB128 varints;
//! signed integers are first zigzag-mapped so that small magnitudes (positive
//! or negative) encode in few bytes. These are the same primitives the
//! session-sequence dictionary relies on for variable-length coding.

use crate::error::{ThriftError, ThriftResult};

/// Maximum number of bytes a 64-bit varint may occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `out` as an unsigned LEB128 varint.
///
/// Returns the number of bytes written (1..=10).
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        n += 1;
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn write_i64(out: &mut Vec<u8>, value: i64) -> usize {
    write_u64(out, zigzag_encode(value))
}

/// Decodes an unsigned LEB128 varint from the front of `input`.
///
/// Returns the decoded value and the number of bytes consumed.
pub fn read_u64(input: &[u8]) -> ThriftResult<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(ThriftError::VarintOverflow);
        }
        let low = u64::from(byte & 0x7f);
        // The 10th byte may only contribute a single bit.
        if shift == 63 && low > 1 {
            return Err(ThriftError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(ThriftError::UnexpectedEof { reading: "varint" })
}

/// Decodes a zigzag-encoded signed varint from the front of `input`.
pub fn read_i64(input: &[u8]) -> ThriftResult<(i64, usize)> {
    let (raw, n) = read_u64(input)?;
    Ok((zigzag_decode(raw), n))
}

/// Maps a signed integer onto an unsigned one with small absolute values
/// mapping to small codes: 0 → 0, -1 → 1, 1 → 2, -2 → 3, …
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] would emit for `value`, without writing.
#[inline]
pub fn encoded_len_u64(value: u64) -> usize {
    // 64 - leading_zeros is the bit width; ceil(width / 7) bytes, min 1.
    let bits = 64 - value.leading_zeros() as usize;
    core::cmp::max(1, bits.div_ceil(7))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            assert_eq!(write_u64(&mut buf, v), 1);
            assert_eq!(read_u64(&buf).unwrap(), (v, 1));
        }
    }

    #[test]
    fn boundary_values_round_trip() {
        for v in [127u64, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(n, encoded_len_u64(v));
            assert_eq!(read_u64(&buf).unwrap(), (v, n));
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(matches!(
                read_u64(&buf[..cut]),
                Err(ThriftError::UnexpectedEof { .. })
            ));
        }
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes can never be a valid u64 varint.
        let buf = [0xffu8; 11];
        assert_eq!(read_u64(&buf), Err(ThriftError::VarintOverflow));
        // A 10-byte varint whose final byte has more than one significant bit
        // would overflow 64 bits.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(read_u64(&buf), Err(ThriftError::VarintOverflow));
    }

    proptest! {
        #[test]
        fn u64_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            prop_assert_eq!(buf.len(), n);
            prop_assert_eq!(read_u64(&buf).unwrap(), (v, n));
        }

        #[test]
        fn i64_round_trips(v in any::<i64>()) {
            let mut buf = Vec::new();
            let n = write_i64(&mut buf, v);
            prop_assert_eq!(read_i64(&buf).unwrap(), (v, n));
        }

        #[test]
        fn zigzag_is_bijective(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn encoded_len_matches(v in any::<u64>()) {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            prop_assert_eq!(encoded_len_u64(v), n);
        }
    }
}
