//! Typed record trait: the contract generated code would fulfill.
//!
//! In the paper, Elephant Bird generates Hadoop readers/writers from Thrift
//! IDL. Here, types implement [`ThriftRecord`] by hand (the codebase is small
//! enough that a codegen step would be ceremony), but the contract is the
//! same: encode to the compact protocol, decode tolerating unknown fields.

use crate::error::ThriftResult;
use crate::protocol::{CompactReader, CompactWriter};

/// A message that can be serialized with the compact protocol.
pub trait ThriftRecord: Sized {
    /// Writes `self` as a struct (including begin/end markers) into `w`.
    fn write(&self, w: &mut CompactWriter);

    /// Reads a struct from `r`, skipping unrecognized fields.
    fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self>;

    /// Serializes to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = CompactWriter::with_capacity(64);
        self.write(&mut w);
        w.into_bytes()
    }

    /// Deserializes from `bytes`, requiring full consumption is *not*
    /// enforced so records can be streamed back to back.
    fn from_bytes(bytes: &[u8]) -> ThriftResult<Self> {
        let mut r = CompactReader::new(bytes);
        Self::read(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ThriftError;

    /// Version 1 of a message: two fields.
    #[derive(Debug, PartialEq)]
    struct PointV1 {
        x: i64,
        y: i64,
    }

    impl ThriftRecord for PointV1 {
        fn write(&self, w: &mut CompactWriter) {
            w.struct_begin();
            w.field_i64(1, self.x);
            w.field_i64(2, self.y);
            w.struct_end();
        }

        fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
            r.struct_begin()?;
            let (mut x, mut y) = (None, None);
            while let Some(h) = r.field_begin()? {
                match h.id {
                    1 => x = Some(r.read_i64()?),
                    2 => y = Some(r.read_i64()?),
                    _ => r.skip(h.ttype)?,
                }
            }
            r.struct_end();
            Ok(PointV1 {
                x: x.ok_or(ThriftError::MissingField {
                    strukt: "PointV1",
                    field_id: 1,
                })?,
                y: y.ok_or(ThriftError::MissingField {
                    strukt: "PointV1",
                    field_id: 2,
                })?,
            })
        }
    }

    /// Version 2 adds an optional label — old readers must still work.
    #[derive(Debug, PartialEq)]
    struct PointV2 {
        x: i64,
        y: i64,
        label: Option<String>,
    }

    impl ThriftRecord for PointV2 {
        fn write(&self, w: &mut CompactWriter) {
            w.struct_begin();
            w.field_i64(1, self.x);
            w.field_i64(2, self.y);
            if let Some(label) = &self.label {
                w.field_string(3, label);
            }
            w.struct_end();
        }

        fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
            r.struct_begin()?;
            let (mut x, mut y, mut label) = (None, None, None);
            while let Some(h) = r.field_begin()? {
                match h.id {
                    1 => x = Some(r.read_i64()?),
                    2 => y = Some(r.read_i64()?),
                    3 => label = Some(r.read_string()?.to_owned()),
                    _ => r.skip(h.ttype)?,
                }
            }
            r.struct_end();
            Ok(PointV2 {
                x: x.unwrap_or(0),
                y: y.unwrap_or(0),
                label,
            })
        }
    }

    #[test]
    fn round_trip_typed_record() {
        let p = PointV1 { x: -4, y: 900 };
        assert_eq!(PointV1::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn new_writer_old_reader() {
        let p2 = PointV2 {
            x: 1,
            y: 2,
            label: Some("home".into()),
        };
        let p1 = PointV1::from_bytes(&p2.to_bytes()).unwrap();
        assert_eq!(p1, PointV1 { x: 1, y: 2 });
    }

    #[test]
    fn old_writer_new_reader() {
        let p1 = PointV1 { x: 1, y: 2 };
        let p2 = PointV2::from_bytes(&p1.to_bytes()).unwrap();
        assert_eq!(
            p2,
            PointV2 {
                x: 1,
                y: 2,
                label: None
            }
        );
    }

    #[test]
    fn missing_required_field_is_an_error() {
        // An empty struct (just the stop byte).
        let bytes = vec![0x00];
        assert!(matches!(
            PointV1::from_bytes(&bytes),
            Err(ThriftError::MissingField { field_id: 1, .. })
        ));
    }

    #[test]
    fn records_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..5 {
            buf.extend_from_slice(&PointV1 { x: i, y: -i }.to_bytes());
        }
        let mut r = CompactReader::new(&buf);
        for i in 0..5 {
            let p = PointV1::read(&mut r).unwrap();
            assert_eq!(p, PointV1 { x: i, y: -i });
        }
        assert_eq!(r.remaining(), 0);
    }
}
