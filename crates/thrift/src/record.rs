//! Typed record trait: the contract generated code would fulfill.
//!
//! In the paper, Elephant Bird generates Hadoop readers/writers from Thrift
//! IDL. Here, types implement [`ThriftRecord`] by hand (the codebase is small
//! enough that a codegen step would be ceremony), but the contract is the
//! same: encode to the compact protocol, decode tolerating unknown fields.

use crate::error::ThriftResult;
use crate::protocol::{CompactReader, CompactWriter};

/// A message that can be serialized with the compact protocol.
pub trait ThriftRecord: Sized {
    /// Writes `self` as a struct (including begin/end markers) into `w`.
    fn write(&self, w: &mut CompactWriter);

    /// Reads a struct from `r`, skipping unrecognized fields.
    fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self>;

    /// Appends the encoding of `self` to `buf` without a fresh allocation —
    /// the hot-loop form: callers encoding a stream of records keep one
    /// buffer (clearing or draining it between uses) instead of paying one
    /// `Vec` per record. The appended bytes are identical to
    /// [`ThriftRecord::to_bytes`].
    fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut w = CompactWriter::over_buffer(std::mem::take(buf));
        self.write(&mut w);
        *buf = w.into_bytes();
    }

    /// Serializes to a fresh byte vector (a thin wrapper over
    /// [`ThriftRecord::encode_into`]).
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_into(&mut buf);
        buf
    }

    /// Deserializes from `bytes`, requiring full consumption is *not*
    /// enforced so records can be streamed back to back.
    fn from_bytes(bytes: &[u8]) -> ThriftResult<Self> {
        let mut r = CompactReader::new(bytes);
        Self::read(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ThriftError;

    /// Version 1 of a message: two fields.
    #[derive(Debug, PartialEq)]
    struct PointV1 {
        x: i64,
        y: i64,
    }

    impl ThriftRecord for PointV1 {
        fn write(&self, w: &mut CompactWriter) {
            w.struct_begin();
            w.field_i64(1, self.x);
            w.field_i64(2, self.y);
            w.struct_end();
        }

        fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
            r.struct_begin()?;
            let (mut x, mut y) = (None, None);
            while let Some(h) = r.field_begin()? {
                match h.id {
                    1 => x = Some(r.read_i64()?),
                    2 => y = Some(r.read_i64()?),
                    _ => r.skip(h.ttype)?,
                }
            }
            r.struct_end();
            Ok(PointV1 {
                x: x.ok_or(ThriftError::MissingField {
                    strukt: "PointV1",
                    field_id: 1,
                })?,
                y: y.ok_or(ThriftError::MissingField {
                    strukt: "PointV1",
                    field_id: 2,
                })?,
            })
        }
    }

    /// Version 2 adds an optional label — old readers must still work.
    #[derive(Debug, PartialEq)]
    struct PointV2 {
        x: i64,
        y: i64,
        label: Option<String>,
    }

    impl ThriftRecord for PointV2 {
        fn write(&self, w: &mut CompactWriter) {
            w.struct_begin();
            w.field_i64(1, self.x);
            w.field_i64(2, self.y);
            if let Some(label) = &self.label {
                w.field_string(3, label);
            }
            w.struct_end();
        }

        fn read(r: &mut CompactReader<'_>) -> ThriftResult<Self> {
            r.struct_begin()?;
            let (mut x, mut y, mut label) = (None, None, None);
            while let Some(h) = r.field_begin()? {
                match h.id {
                    1 => x = Some(r.read_i64()?),
                    2 => y = Some(r.read_i64()?),
                    3 => label = Some(r.read_string()?.to_owned()),
                    _ => r.skip(h.ttype)?,
                }
            }
            r.struct_end();
            Ok(PointV2 {
                x: x.unwrap_or(0),
                y: y.unwrap_or(0),
                label,
            })
        }
    }

    #[test]
    fn round_trip_typed_record() {
        let p = PointV1 { x: -4, y: 900 };
        assert_eq!(PointV1::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn new_writer_old_reader() {
        let p2 = PointV2 {
            x: 1,
            y: 2,
            label: Some("home".into()),
        };
        let p1 = PointV1::from_bytes(&p2.to_bytes()).unwrap();
        assert_eq!(p1, PointV1 { x: 1, y: 2 });
    }

    #[test]
    fn old_writer_new_reader() {
        let p1 = PointV1 { x: 1, y: 2 };
        let p2 = PointV2::from_bytes(&p1.to_bytes()).unwrap();
        assert_eq!(
            p2,
            PointV2 {
                x: 1,
                y: 2,
                label: None
            }
        );
    }

    #[test]
    fn missing_required_field_is_an_error() {
        // An empty struct (just the stop byte).
        let bytes = vec![0x00];
        assert!(matches!(
            PointV1::from_bytes(&bytes),
            Err(ThriftError::MissingField { field_id: 1, .. })
        ));
    }

    #[test]
    fn records_stream_back_to_back() {
        let mut buf = Vec::new();
        for i in 0..5 {
            buf.extend_from_slice(&PointV1 { x: i, y: -i }.to_bytes());
        }
        let mut r = CompactReader::new(&buf);
        for i in 0..5 {
            let p = PointV1::read(&mut r).unwrap();
            assert_eq!(p, PointV1 { x: i, y: -i });
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn encode_into_appends_and_reuses_one_buffer() {
        let mut buf = vec![0xAA, 0xBB];
        let p = PointV1 { x: 7, y: -9 };
        p.encode_into(&mut buf);
        assert_eq!(&buf[..2], &[0xAA, 0xBB], "existing bytes preserved");
        assert_eq!(&buf[2..], p.to_bytes().as_slice());
        // Reuse across a stream: clear between records, capacity persists.
        buf.clear();
        let cap = buf.capacity();
        p.encode_into(&mut buf);
        assert!(buf.capacity() >= cap);
        assert_eq!(PointV1::from_bytes(&buf).unwrap(), p);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn point_v2() -> impl Strategy<Value = PointV2> {
            // An empty generated label stands in for `None`, so both arms of
            // the optional field are exercised.
            (any::<i64>(), any::<i64>(), "[a-z:_]{0,24}").prop_map(|(x, y, label)| PointV2 {
                x,
                y,
                label: (!label.is_empty()).then_some(label),
            })
        }

        proptest! {
            /// `to_bytes` and `encode_into` must produce identical bytes for
            /// any record, including when the buffer is reused mid-stream.
            #[test]
            fn encode_into_matches_to_bytes(points in proptest::collection::vec(point_v2(), 0..16)) {
                let mut streamed = Vec::new();
                let mut scratch = Vec::new();
                let mut concatenated = Vec::new();
                for p in &points {
                    scratch.clear();
                    p.encode_into(&mut scratch);
                    prop_assert_eq!(&scratch, &p.to_bytes());
                    streamed.extend_from_slice(&scratch);
                    // Appending without clearing also matches concatenation.
                    p.encode_into(&mut concatenated);
                }
                prop_assert_eq!(&streamed, &concatenated);
                let mut r = CompactReader::new(&streamed);
                for p in &points {
                    prop_assert_eq!(&PointV2::read(&mut r).unwrap(), p);
                }
                prop_assert_eq!(r.remaining(), 0);
            }
        }
    }
}
