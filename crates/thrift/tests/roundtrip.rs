//! Property tests: arbitrary dynamic values survive the compact protocol,
//! and arbitrary byte soup never panics the decoder.

use std::collections::BTreeMap;

use proptest::prelude::*;

use uli_thrift::{CompactReader, CompactWriter, TValue};

/// Strategy for arbitrary TValue trees of bounded depth.
fn arb_tvalue() -> impl Strategy<Value = TValue> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(TValue::Bool),
        any::<i8>().prop_map(TValue::I8),
        any::<i16>().prop_map(TValue::I16),
        any::<i32>().prop_map(TValue::I32),
        any::<i64>().prop_map(TValue::I64),
        // Doubles: avoid NaN so PartialEq-based round-trip checks hold.
        prop::num::f64::NORMAL.prop_map(TValue::Double),
        "[a-zA-Z0-9 _:-]{0,24}".prop_map(TValue::String),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(|mut b| {
            // Ensure it is NOT valid UTF-8 so decoding keeps it Binary
            // (valid-UTF-8 binary legitimately decodes as String).
            b.insert(0, 0xff);
            TValue::Binary(b)
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Lists must be homogeneous for the wire format: replicate one.
            (inner.clone(), 0usize..4)
                .prop_map(|(v, n)| { TValue::List(std::iter::repeat_n(v, n.max(1)).collect()) }),
            // Maps must be value-homogeneous on the wire: one value type,
            // replicated across keys.
            (
                prop::collection::btree_set("[a-z]{1,6}", 0..4),
                inner.clone()
            )
                .prop_map(|(keys, v)| {
                    TValue::Map(keys.into_iter().map(|k| (k, v.clone())).collect())
                },),
            prop::collection::vec(inner, 1..4).prop_map(|vs| {
                TValue::Struct(
                    vs.into_iter()
                        .enumerate()
                        .map(|(i, v)| (i as i16 + 1, v))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dynamic_values_round_trip(value in arb_tvalue()) {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_value(1, &value);
        w.struct_end();
        let bytes = w.into_bytes();

        let mut r = CompactReader::new(&bytes);
        let decoded = r.read_struct_value().unwrap();
        prop_assert_eq!(r.remaining(), 0);
        let got = decoded.field(1).unwrap();
        // Maps with non-homogeneous value types lose per-element type
        // info only if empty; our strategy always produces decodable
        // shapes, so require exact equality.
        prop_assert_eq!(got, &value);
    }

    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut r = CompactReader::new(&bytes);
        let _ = r.read_struct_value(); // Err is fine; panic is not.
        let mut r2 = CompactReader::new(&bytes);
        if r2.struct_begin().is_ok() {
            while let Ok(Some(h)) = r2.field_begin() {
                if r2.skip(h.ttype).is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn truncations_never_panic(value in arb_tvalue(), cut in any::<prop::sample::Index>()) {
        let mut w = CompactWriter::new();
        w.struct_begin();
        w.field_value(1, &value);
        w.struct_end();
        let bytes = w.into_bytes();
        let cut = cut.index(bytes.len().max(1));
        let mut r = CompactReader::new(&bytes[..cut]);
        let _ = r.read_struct_value();
    }
}

#[test]
fn empty_map_value_round_trips() {
    let value = TValue::Map(BTreeMap::new());
    let mut w = CompactWriter::new();
    w.struct_begin();
    w.field_value(1, &value);
    w.struct_end();
    let bytes = w.into_bytes();
    let mut r = CompactReader::new(&bytes);
    let decoded = r.read_struct_value().unwrap();
    assert_eq!(decoded.field(1), Some(&value));
}
