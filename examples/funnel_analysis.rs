//! Funnel analytics on the signup flow (§5.3).
//!
//! Generates a funnel-heavy day, materializes session sequences, evaluates
//! the `ClientEventsFunnel` UDF over them, and prints the paper's output
//! shape — `(0, 490123) (1, 297071) …` — next to the generator's ground
//! truth and the per-stage abandonment rates.
//!
//! Run with: `cargo run --example funnel_analysis`

use unified_logging::prelude::*;

fn main() {
    let funnel_spec = signup_funnel();
    let config = WorkloadConfig {
        users: 600,
        funnel_fraction: 0.35,
        ..Default::default()
    };
    let day = generate_day(&config, 0);
    println!(
        "day 0: {} sessions, {} entered the signup funnel",
        day.truth.sessions, day.truth.funnel_sessions
    );

    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
    let materializer = Materializer::new(wh.clone());
    materializer.run_day(0).expect("day 0 present");
    let dict = materializer.load_dictionary(0).expect("dictionary written");
    let sequences = load_sequences(&wh, 0).expect("sequences materialized");

    // define Funnel ClientEventsFunnel('$EVENT1', '$EVENT2', ...);
    let funnel = ClientEventsFunnel::new(funnel_spec.stages.clone(), &dict);
    let report = funnel.evaluate(sequences.iter().map(|s| s.sequence.as_str()));

    println!("\nfunnel output (paper's shape: stage, sessions):");
    for (stage, count) in report.rows() {
        println!("({stage}, {count})");
    }

    println!("\nstage                                    measured   truth");
    for (i, stage) in funnel_spec.stages.iter().enumerate() {
        println!(
            "{:<42} {:>7} {:>7}",
            stage.to_string(),
            report.reached[i],
            day.truth.funnel_stage_counts[i]
        );
        assert_eq!(
            report.reached[i], day.truth.funnel_stage_counts[i],
            "sequences must recover the exact funnel counts"
        );
    }

    println!("\nabandonment per stage:");
    for (i, rate) in report.abandonment().iter().enumerate() {
        println!(
            "  after {:<40} {:>5.1}%  (planted: {:.1}%)",
            funnel_spec.stages[i].to_string(),
            rate * 100.0,
            (1.0 - funnel_spec.continue_probability[i]) * 100.0
        );
    }
    println!(
        "\nend-to-end conversion: {:.1}%",
        report.conversion() * 100.0
    );

    // --- §5.3: "Companies typically run A/B tests to optimize the flow."
    // An A/A test first: split users into two arms that saw the SAME flow;
    // a sound harness must find no significant difference.
    use unified_logging::analytics::ab_analyze;
    let completed = |s: &unified_logging::core::session::SessionSequence| {
        funnel.depth(&s.sequence) == funnel.stages().len()
    };
    let aa = ab_analyze("signup_flow_v2", sequences.iter(), completed);
    println!(
        "\nA/A sanity check: arm A {:.2}% vs arm B {:.2}% conversion, z = {:.2} → {}",
        aa.a.rate() * 100.0,
        aa.b.rate() * 100.0,
        aa.z,
        if aa.significant_95() {
            "SIGNIFICANT (bad!)"
        } else {
            "no significant difference (as expected)"
        }
    );
    assert!(!aa.significant_95(), "an A/A test must not fire");
}
