//! The full Figure-1 path with faults injected.
//!
//! Drives the Scribe pipeline — daemons on production hosts in three
//! datacenters, aggregators discovered through the coordination service,
//! staging clusters, the log mover's atomic hourly slide — while crashing
//! an aggregator and taking a staging cluster down, then lets the Oink
//! workflow manager run the daily jobs (roll-ups, dictionary, session
//! sequences) once all hours have landed.
//!
//! Run with: `cargo run --example end_to_end_pipeline`

use uli_thrift::ThriftRecord;
use unified_logging::oink::scheduler::JobStatus;
use unified_logging::prelude::*;
use unified_logging::scribe::message::LogEntry as Entry;

fn main() {
    let config = PipelineConfig {
        datacenters: 3,
        hosts_per_dc: 8,
        aggregators_per_dc: 2,
        records_per_file: 5_000,
        ..Default::default()
    };
    let mut pipe = ScribePipeline::new(config);

    // Synthetic traffic for the first two hours of day 0.
    let day = generate_day(
        &WorkloadConfig {
            users: 150,
            ..Default::default()
        },
        0,
    );
    println!("workload: {} events across the day", day.events.len());

    // Route each event to a host by user id, hour by hour.
    for hour in 0..24u64 {
        for (i, ev) in day
            .events
            .iter()
            .filter(|e| e.timestamp.hour_index() == hour)
            .enumerate()
        {
            let dc = (ev.user_id as usize) % config.datacenters;
            let host = i % config.hosts_per_dc;
            pipe.log(dc, host, Entry::new("client_events", ev.to_bytes()));
        }
        pipe.step();

        // Inject faults mid-morning.
        if hour == 9 {
            let lost = pipe.crash_aggregator(0, 0);
            println!("hour 09: crashed dc0/agg0 — {lost} unflushed entries lost");
            pipe.spawn_aggregator(0, 0);
            pipe.step();
        }
        if hour == 14 {
            println!("hour 14: staging outage in dc1 (aggregators buffer locally)");
            pipe.set_staging_available(1, false);
        }
        if hour == 16 {
            println!("hour 16: dc1 staging recovered");
            pipe.set_staging_available(1, true);
        }

        pipe.flush_hour(hour);
        pipe.seal_hour("client_events", hour);
        match pipe.move_hour("client_events", hour) {
            Ok(report) => {
                if report.records > 0 {
                    println!(
                        "hour {hour:02}: moved {} records ({} small files -> {} big)",
                        report.records, report.input_files, report.output_files
                    );
                }
            }
            Err(e) => println!("hour {hour:02}: mover deferred ({e})"),
        }
    }
    // Retry any hours deferred by the outage, now that staging is back.
    pipe.flush_hour(23);
    for hour in 0..24u64 {
        pipe.seal_hour("client_events", hour);
        if let Ok(report) = pipe.move_hour("client_events", hour) {
            println!("retry hour {hour:02}: moved {} records", report.records);
        }
    }

    let totals = pipe.report();
    println!("\npipeline accounting: {totals:?}");
    assert_eq!(
        totals.moved + totals.lost_in_crashes,
        totals.logged,
        "every entry is moved or accounted as crash loss"
    );

    // Downstream: Oink runs the daily jobs against the main warehouse.
    let wh = pipe.main_warehouse().clone();
    let mut oink = Oink::new();
    let wh1 = wh.clone();
    oink.add_daily("rollups", &[], move |day| {
        compute_rollups(&wh1, day)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    let wh2 = wh.clone();
    oink.add_daily("session_sequences", &[], move |day| {
        Materializer::new(wh2.clone())
            .run_day(day)
            .map(|_| ())
            .map_err(|e| e.to_string())
    });
    oink.advance_hour(23);
    assert_eq!(oink.status("session_sequences", 0), JobStatus::Completed);
    println!("\noink traces:");
    for t in oink.traces() {
        println!("  {} period {} -> {:?}", t.job, t.period, t.status);
    }

    // And the dashboard sees the day.
    let dict = Materializer::new(wh.clone()).load_dictionary(0).unwrap();
    let seqs = load_sequences(&wh, 0).unwrap();
    let summary = DailySummary::compute(0, &seqs, &dict);
    println!("\nBirdBrain:\n{}", summary.render());
}
