//! The §3.1 "before" world, experienced first-hand.
//!
//! Logs the same ground truth the application-specific way (three categories
//! with unintuitive names and three formats), then walks through what a data
//! scientist had to do before unification: find the data, scrape the JSON
//! format, tolerate the quirks — and contrasts it with the unified
//! catalog's one-stop answer.
//!
//! Run with: `cargo run --example legacy_archaeology`

use unified_logging::core::legacy::LegacyCategory;
use unified_logging::core::scrape::FormatScrape;
use unified_logging::core::session::day_dir;
use unified_logging::prelude::*;

fn main() {
    let day = generate_day(
        &WorkloadConfig {
            users: 200,
            ..Default::default()
        },
        0,
    );
    let wh = Warehouse::new();
    write_legacy_events(&wh, &day.events, 4).expect("fresh warehouse");

    // --- Step 1: resource discovery. What's even in /logs? ---
    println!("step 1 — resource discovery. /logs contains:");
    for (name, _) in wh.list(&WhPath::parse("/logs").unwrap()).expect("written") {
        println!("  /logs/{name}    <- which one holds search events?");
    }
    println!(
        "(nothing says: the names are {:?} — §3.1's discovery problem)\n",
        LegacyCategory::ALL.map(|c| c.category_name())
    );

    // --- Step 2: scrape the mystery JSON category to induce its format. ---
    let json_dir = day_dir(LegacyCategory::WebFrontend.category_name(), 0);
    let mut scraper = FormatScrape::new();
    for file in wh.list_files_recursive(&json_dir).expect("exists") {
        let mut reader = wh.open(&file).expect("opens");
        while let Some(record) = reader.next_record().expect("reads") {
            scraper.scan(record);
        }
    }
    println!("step 2 — scrape 'rainbird' to induce its format:");
    print!("{}", scraper.render());
    println!(
        "optional keys (<95% presence): {:?}",
        scraper.optional_keys(0.95)
    );
    println!(
        "type-inconsistent keys: {:?}\n",
        scraper.inconsistent_keys()
    );

    // --- Step 3: discover the quirks the hard way. ---
    let sample_file = wh
        .list_files_recursive(&json_dir)
        .expect("exists")
        .into_iter()
        .next()
        .expect("files exist");
    let sample = wh
        .open(&sample_file)
        .expect("opens")
        .read_all()
        .expect("reads");
    let text = String::from_utf8_lossy(&sample[0]);
    println!("step 3 — a raw message:\n  {text}");
    println!(
        "quirks a scraper can't tell you: 'ts' is SECONDS (most categories\n\
         use milliseconds), 'userId' is camelCase ('user_id' elsewhere),\n\
         and the TSV category never logged a session id at all.\n"
    );

    // --- Step 4: the after picture. ---
    write_client_events(&wh, &day.events, 4).expect("same warehouse");
    let m = Materializer::new(wh.clone());
    m.run_day(0).expect("day present");
    let dict = m.load_dictionary(0).expect("dictionary");
    let samples = m.load_samples(0).expect("samples");
    let catalog = ClientEventCatalog::build(0, &dict, &samples);
    println!(
        "step 4 — with unified logging, one place answers everything:\n\
         /logs/client_events holds all {} event types; the catalog browses\n\
         them hierarchically:",
        catalog.len()
    );
    for (client, count) in catalog.browse(&[]) {
        println!("  client {client}: {count} events");
    }
    let name = &catalog.by_frequency()[0].name.clone();
    println!("\n{}", catalog.render_entry(name).expect("entry exists"));
}
