//! Quickstart: one day of logs, end to end.
//!
//! Generates a synthetic day of client events, lands them in the warehouse
//! in the paper's hourly layout, materializes session sequences (§4), and
//! answers the paper's running example query — "how many profile clicks?" —
//! both over the raw logs and over the sequences, showing the cost gap.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use unified_logging::prelude::*;

fn main() {
    // 1. A synthetic day with known ground truth.
    let config = WorkloadConfig {
        users: 300,
        ..Default::default()
    };
    let day = generate_day(&config, 0);
    println!(
        "generated day 0: {} events, {} sessions, {} distinct event types",
        day.truth.events, day.truth.sessions, day.truth.distinct_events
    );

    // 2. Land the logs in the warehouse: /logs/client_events/YYYY/MM/DD/HH.
    let wh = Warehouse::new();
    write_client_events(&wh, &day.events, 4).expect("warehouse is empty and available");

    // 3. Materialize session sequences (histogram pass + encode pass).
    let materializer = Materializer::new(wh.clone());
    let report = materializer.run_day(0).expect("day 0 exists");
    println!(
        "materialized {} sessions; raw {} KB -> sequences {} KB ({:.0}x smaller)",
        report.sessions,
        report.raw_compressed_bytes / 1024,
        report.sequences_compressed_bytes / 1024,
        report.compression_factor()
    );

    // 4. The paper's counting query over the *raw* client event logs:
    //    load → filter by name → count (a full scan).
    let dict = materializer.load_dictionary(0).expect("pass 1 wrote it");
    let pattern = EventPattern::parse("*:profile_click").expect("valid pattern");
    let engine = Engine::new(wh.clone());

    let raw_dir = unified_logging::core::session::day_dir("client_events", 0);
    let matching: Vec<String> = dict
        .iter()
        .filter(|(_, n, _)| pattern.matches(n))
        .map(|(_, n, _)| n.as_str().to_string())
        .collect();
    let mut predicate = Expr::lit(false);
    for name in &matching {
        predicate = predicate.or(Expr::col(1).eq(Expr::lit(name.as_str())));
    }
    let raw_plan = Plan::load(
        raw_dir,
        Arc::new(ClientEventLoader),
        CLIENT_EVENT_SCHEMA.to_vec(),
    )
    .filter(predicate)
    .aggregate(vec![Agg::count()]);
    let raw = engine.run(&raw_plan).expect("raw scan");

    // 5. The same query over session sequences: the CountClientEvents UDF.
    let udf = CountClientEvents::new(&pattern, &dict);
    let seq_plan = Plan::load(
        unified_logging::core::session::sequences_dir(0),
        Arc::new(SessionSequenceLoader),
        SESSION_SEQUENCE_SCHEMA.to_vec(),
    )
    .foreach(vec![("n", Expr::udf(udf, vec![Expr::col(3)]))])
    .aggregate(vec![Agg::sum(0).named("total")]);
    let seq = engine.run(&seq_plan).expect("sequence scan");

    println!("\nprofile clicks, raw logs        : {}", raw.rows[0][0]);
    println!("profile clicks, session sequences: {}", seq.rows[0][0]);
    assert_eq!(raw.rows[0][0], seq.rows[0][0], "both paths must agree");

    println!(
        "\ncost: raw scan {} mappers / {} KB uncompressed; sequences {} mappers / {} KB",
        raw.stats.map_tasks,
        raw.stats.input_bytes_uncompressed / 1024,
        seq.stats.map_tasks,
        seq.stats.input_bytes_uncompressed / 1024
    );
    println!(
        "estimated cluster time: raw {:.1}s vs sequences {:.1}s",
        raw.estimated_cluster_ms / 1000.0,
        seq.estimated_cluster_ms / 1000.0
    );
}
