//! The paper's Pig scripts, run as written.
//!
//! §5.2 shows the event-counting script and §5.3 the funnel UDF; this
//! example generates a day of traffic, materializes session sequences, and
//! executes both scripts through the Pig front-end, printing the dumped
//! relations and the job statistics the engine accounted.
//!
//! Run with: `cargo run --example pig_script`

use unified_logging::analytics::register_analytics;
use unified_logging::prelude::*;

fn main() {
    // A day of traffic, landed and materialized.
    let wh = Warehouse::new();
    let day = generate_day(
        &WorkloadConfig {
            users: 400,
            funnel_fraction: 0.25,
            ..Default::default()
        },
        0,
    );
    write_client_events(&wh, &day.events, 4).expect("fresh warehouse");
    let materializer = Materializer::new(wh.clone());
    materializer.run_day(0).expect("day 0 present");
    let dict = materializer.load_dictionary(0).expect("dictionary written");

    let mut runner = ScriptRunner::new(Engine::new(wh));
    register_analytics(&mut runner, dict);
    runner.set_param("DATE", "2012/08/01");
    runner.set_param("EVENTS", "web:home:mentions:*");

    // --- §5.2, "A typical Pig script might take the following form" ---
    let counting = "\
define CountClientEvents CountClientEvents('$EVENTS');
raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();
generated = foreach raw generate CountClientEvents(sequence) as n;
grouped = group generated all;
count = foreach grouped generate SUM(n);
dump count;";
    println!("--- running the §5.2 counting script ---\n{counting}\n");
    for out in runner.run(counting).expect("script runs") {
        println!(
            "{} = {:?}   ({} mr jobs, {} mappers, {} records scanned)",
            out.relation,
            out.result.rows,
            out.result.stats.mr_jobs,
            out.result.stats.map_tasks,
            out.result.stats.input_records,
        );
    }

    // --- §5.3, the funnel UDF over the signup flow ---
    let stages: Vec<String> = signup_funnel()
        .stages
        .iter()
        .map(|s| format!("'{s}'"))
        .collect();
    let funnel_script = format!(
        "define Funnel ClientEventsFunnel({});\n\
         raw = load '/session_sequences/$DATE/' using SessionSequencesLoader();\n\
         depths = foreach raw generate Funnel(sequence) as depth;\n\
         per_depth = group depths by depth;\n\
         counts = foreach per_depth generate depth, COUNT(*) as sessions;\n\
         ordered = order counts by depth;\n\
         dump ordered;",
        stages.join(", ")
    );
    println!("\n--- running the §5.3 funnel script ---\n{funnel_script}\n");
    let outputs = runner.run(&funnel_script).expect("script runs");
    println!("(deepest stage reached, sessions):");
    let mut cumulative = vec![0u64; signup_funnel().stages.len() + 1];
    for row in &outputs[0].result.rows {
        let depth = row[0].as_int().expect("int depth") as usize;
        let sessions = row[1].as_int().expect("int count") as u64;
        println!("({depth}, {sessions})");
        for slot in cumulative.iter_mut().take(depth + 1).skip(1) {
            *slot += sessions;
        }
    }
    // The paper reports cumulative per-stage reach; derive and verify it.
    println!("\ncumulative (paper's shape — sessions reaching each stage):");
    for (stage, reached) in cumulative.iter().enumerate().skip(1) {
        println!("({}, {reached})", stage - 1);
        assert_eq!(
            *reached,
            day.truth.funnel_stage_counts[stage - 1],
            "stage {stage} must match generator ground truth"
        );
    }
    println!("\nall funnel stages match the generator's planted ground truth.");
}
