//! Exploratory user modeling (§5.4) and the event catalog (§4.3).
//!
//! Trains n-gram language models of increasing order on one day's session
//! sequences and evaluates them on the next day, showing how much
//! "temporal signal" short context captures; mines activity collocates
//! with PMI and log-likelihood ratio; and browses the automatically
//! generated client event catalog.
//!
//! Run with: `cargo run --example user_modeling`

use unified_logging::prelude::*;

fn main() {
    let config = WorkloadConfig {
        users: 500,
        ..Default::default()
    };
    let wh = Warehouse::new();
    for day in 0..2 {
        let day_events = generate_day(&config, day);
        write_client_events(&wh, &day_events.events, 4).expect("fresh warehouse");
        Materializer::new(wh.clone())
            .run_day(day)
            .expect("day present");
    }
    let materializer = Materializer::new(wh.clone());
    let dict = materializer
        .load_dictionary(0)
        .expect("dictionary for day 0");
    let train = load_sequences(&wh, 0).expect("day 0 sequences");
    let test = load_sequences(&wh, 1).expect("day 1 sequences");
    println!(
        "train: {} sessions (day 0), test: {} sessions (day 1), alphabet {}",
        train.len(),
        test.len(),
        dict.len()
    );

    // --- Language models: cross entropy / perplexity vs n. ---
    println!("\n n   cross-entropy (bits)   perplexity");
    for n in 1..=4 {
        let model =
            NgramModel::train_on_strings(n, 0.05, train.iter().map(|s| s.sequence.as_str()));
        let h = model.cross_entropy_strings(test.iter().map(|s| s.sequence.as_str()));
        println!("{n:>2}   {h:>20.3}   {:>10.1}", 2f64.powf(h));
    }
    println!("(bigram context captures most of the temporal signal — §5.4)");

    // --- Activity collocates. ---
    let mut miner = CollocationMiner::new();
    for s in &train {
        miner.add_string(&s.sequence);
    }
    println!("\ntop activity collocates by log-likelihood ratio:");
    for score in miner.top_by_llr(5, 20) {
        let a = dict
            .name_of(score.a)
            .map(|n| n.to_string())
            .unwrap_or_default();
        let b = dict
            .name_of(score.b)
            .map(|n| n.to_string())
            .unwrap_or_default();
        println!(
            "  G2={:>9.1} pmi={:>5.2} n={:>5}  {a} -> {b}",
            score.llr, score.pmi, score.count
        );
    }

    // --- §6 ongoing work: LifeFlow overview of where sessions diverge. ---
    use unified_logging::analytics::LifeFlow;
    let mut flow = LifeFlow::new(3);
    for s in &train {
        flow.add_string(&s.sequence);
    }
    println!("\nLifeFlow overview (first 3 events, branches ≥ 4% of sessions):");
    print!("{}", flow.render(&dict, 0.04));

    // --- §6 ongoing work: query-by-example via sequence alignment. ---
    use unified_logging::analytics::{query_by_example, AlignScoring};
    let probe = train
        .iter()
        .find(|s| s.len() >= 6)
        .expect("some session has six events");
    let similar = query_by_example(probe, &train, 3, AlignScoring::default());
    println!(
        "\nusers behaving like user {} (session of {} events):",
        probe.user_id,
        probe.len()
    );
    for (idx, score) in similar {
        let s = &train[idx];
        println!(
            "  user {:>6} session {:<14} similarity {:.2}",
            s.user_id, s.session_id, score
        );
    }

    // --- §6 ongoing work: grammar induction over session sequences. ---
    use unified_logging::analytics::Grammar;
    use unified_logging::core::session::dictionary::rank_for_char;
    let corpus: Vec<Vec<u32>> = train
        .iter()
        .map(|s| s.sequence.chars().filter_map(rank_for_char).collect())
        .collect();
    let grammar = Grammar::induce(&corpus, 8);
    println!(
        "\ngrammar induction (Re-Pair): {} rules, corpus compresses {:.2}x",
        grammar.rule_count(),
        grammar.compression_ratio()
    );
    println!("top behavioural motifs (hierarchical decompositions):");
    for (idx, support, yield_syms) in grammar.top_motifs(3) {
        let names: Vec<String> = yield_syms
            .iter()
            .map(|r| {
                dict.name_of(*r)
                    .map(|n| n.action().to_string())
                    .unwrap_or_else(|| format!("rank{r}"))
            })
            .collect();
        println!("  R{idx} (x{support}): {}", names.join(" -> "));
    }

    // --- The client event catalog. ---
    let samples = materializer.load_samples(0).expect("samples written");
    let mut catalog = ClientEventCatalog::build(0, &dict, &samples);
    println!(
        "\ncatalog: {} event types. Browsing clients:",
        catalog.len()
    );
    for (client, count) in catalog.browse(&[]) {
        println!("  {client}: {count} events");
    }
    let top = catalog.by_frequency()[0].name.clone();
    catalog.describe(&top, "The most frequent event of the day.");
    println!("\n{}", catalog.render_entry(&top).expect("entry exists"));
}
