//! Cross-crate property-based tests on the core invariants.

use proptest::prelude::*;

use unified_logging::core::session::dictionary::{char_for_rank, rank_for_char};
use unified_logging::prelude::*;
use unified_logging::thrift::ThriftRecord;

fn arb_action() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "impression",
        "click",
        "profile_click",
        "follow",
        "expand",
        "favorite",
    ])
}

fn arb_event() -> impl Strategy<Value = ClientEvent> {
    (
        0i64..20,
        0u8..4,
        arb_action(),
        0i64..86_400_000,
        prop::collection::btree_map("[a-z]{1,8}", "[a-z0-9]{0,12}", 0..4),
    )
        .prop_map(|(user, sess, action, t, details)| {
            let mut ev = ClientEvent::new(
                EventInitiator::CLIENT_USER,
                EventName::parse(&format!("web:home:home:stream:tweet:{action}")).unwrap(),
                user,
                format!("s-{user}-{sess}"),
                "10.1.2.3",
                Timestamp(t),
            );
            ev.details = details;
            ev
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Thrift round-trip holds for arbitrary client events.
    #[test]
    fn client_event_thrift_round_trips(ev in arb_event()) {
        let back = ClientEvent::from_bytes(&ev.to_bytes()).unwrap();
        prop_assert_eq!(back, ev);
    }

    /// Sessionization conservation: every event lands in exactly one
    /// session; durations are non-negative; events are time-ordered.
    #[test]
    fn sessionizer_conserves_events(events in prop::collection::vec(arb_event(), 0..300)) {
        let n = events.len();
        let sessions = Sessionizer::new().sessionize(events);
        let total: usize = sessions.iter().map(|s| s.events.len()).sum();
        prop_assert_eq!(total, n);
        for s in &sessions {
            prop_assert!(s.duration_secs >= 0);
            prop_assert!(!s.events.is_empty());
        }
    }

    /// Sessionization is insensitive to input order.
    #[test]
    fn sessionizer_is_order_insensitive(
        events in prop::collection::vec(arb_event(), 0..150),
        seed in any::<u64>(),
    ) {
        let mut shuffled = events.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = Sessionizer::new().sessionize(events);
        let b = Sessionizer::new().sessionize(shuffled);
        // Session sets match on (user, session_id, start, event count).
        let key = |s: &unified_logging::core::session::SessionRecord|
            (s.user_id, s.session_id.clone(), s.start, s.events.len());
        let mut ka: Vec<_> = a.iter().map(key).collect();
        let mut kb: Vec<_> = b.iter().map(key).collect();
        ka.sort();
        kb.sort();
        prop_assert_eq!(ka, kb);
    }

    /// Dictionary encode/decode is the identity on any event multiset.
    #[test]
    fn dictionary_round_trips_sequences(
        actions in prop::collection::vec((arb_action(), 1u64..1000), 1..6),
        walk in prop::collection::vec(any::<prop::sample::Index>(), 0..100),
    ) {
        let mut counts: Vec<(EventName, u64)> = actions
            .iter()
            .map(|(a, c)| {
                (EventName::parse(&format!("web:a:b:c:d:{a}")).unwrap(), *c)
            })
            .collect();
        counts.dedup_by(|a, b| a.0 == b.0);
        let dict = EventDictionary::from_counts(counts.clone());
        let names: Vec<&EventName> = walk
            .iter()
            .map(|ix| {
                let rank = ix.index(dict.len());
                dict.name_of(rank as u32).unwrap()
            })
            .collect();
        let encoded = dict.encode_sequence(names.iter().copied()).unwrap();
        let decoded = dict.decode_sequence(&encoded).unwrap();
        prop_assert_eq!(decoded.len(), names.len());
        for (d, n) in decoded.iter().zip(&names) {
            prop_assert_eq!(*d, *n);
        }
    }

    /// The rank↔char mapping is a bijection wherever defined.
    #[test]
    fn rank_char_bijection(rank in 0u32..1_000_000) {
        if let Some(c) = char_for_rank(rank) {
            prop_assert_eq!(rank_for_char(c), Some(rank));
        }
    }

    /// Frequency ordering: a more frequent event never gets a larger
    /// UTF-8 footprint than a less frequent one.
    #[test]
    fn frequent_events_never_encode_longer(counts in prop::collection::vec(1u64..10_000, 2..50)) {
        let names: Vec<(EventName, u64)> = counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (EventName::parse(&format!("web:a:b:c:d:action{i}")).unwrap(), *c)
            })
            .collect();
        let dict = EventDictionary::from_counts(names);
        let mut prev_len = 0;
        for rank in 0..dict.len() as u32 {
            let c = char_for_rank(rank).unwrap();
            prop_assert!(c.len_utf8() >= prev_len);
            prev_len = c.len_utf8();
            let this_count = dict.count_of(rank).unwrap();
            if rank > 0 {
                prop_assert!(dict.count_of(rank - 1).unwrap() >= this_count);
            }
        }
    }

    /// The ulz compressor round-trips structured log-like data.
    #[test]
    fn warehouse_files_round_trip(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..200), 0..100)) {
        let wh = Warehouse::with_block_capacity(512);
        let path = WhPath::parse("/prop/file").unwrap();
        let mut w = wh.create(&path).unwrap();
        for r in &records {
            w.append_record(r);
        }
        w.finish().unwrap();
        let back = wh.open(&path).unwrap().read_all().unwrap();
        prop_assert_eq!(back, records);
    }
}

#[test]
fn materializer_end_to_end_property_smoke() {
    // A fixed-seed version of the heavy property: materialized sequences
    // exactly partition the generated events for several seeds.
    for seed in [1u64, 42, 2012] {
        let day = generate_day(
            &WorkloadConfig {
                seed,
                users: 40,
                ..Default::default()
            },
            0,
        );
        let wh = Warehouse::new();
        write_client_events(&wh, &day.events, 3).unwrap();
        let report = Materializer::new(wh.clone()).run_day(0).unwrap();
        assert_eq!(report.events as usize, day.events.len(), "seed {seed}");
        assert_eq!(report.sessions, day.truth.sessions, "seed {seed}");
        let seqs = load_sequences(&wh, 0).unwrap();
        let total: usize = seqs.iter().map(SessionSequence::len).sum();
        assert_eq!(total, day.events.len(), "seed {seed}");
    }
}
