//! Thread-level stress: the coordination service and warehouse are shared
//! mutable infrastructure; these tests drive them from many threads the way
//! tens of thousands of production daemons would.

use std::sync::Arc;
use std::thread;

use unified_logging::coord::{CoordService, CreateMode};
use unified_logging::prelude::*;
use unified_logging::scribe::message::LogEntry;

#[test]
fn coord_handles_concurrent_ephemeral_churn() {
    let svc = CoordService::new();
    let admin = svc.connect();
    admin
        .create("/aggregators", vec![], CreateMode::Persistent)
        .unwrap();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let svc = svc.clone();
            thread::spawn(move || {
                for round in 0..50 {
                    let session = svc.connect();
                    let path = session
                        .create(
                            "/aggregators/member-",
                            format!("t{t}-r{round}").into_bytes(),
                            CreateMode::EphemeralSequential,
                        )
                        .expect("parent exists");
                    // Another session can observe the member.
                    let observer = svc.connect();
                    let members = observer.get_children("/aggregators").expect("live");
                    assert!(members.iter().any(|m| path.ends_with(m)));
                    drop(session); // ephemeral vanishes
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no panics");
    }
    // All ephemerals are gone; only the parent remains.
    assert!(admin.get_children("/aggregators").unwrap().is_empty());
    assert_eq!(svc.node_count(), 2); // root + /aggregators
}

#[test]
fn coord_sequential_names_are_unique_under_contention() {
    let svc = CoordService::new();
    let admin = svc.connect();
    admin
        .create("/seq", vec![], CreateMode::Persistent)
        .unwrap();
    let created: Vec<String> = {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let svc = svc.clone();
                thread::spawn(move || {
                    let s = svc.connect();
                    (0..100)
                        .map(|_| {
                            s.create("/seq/n-", vec![], CreateMode::PersistentSequential)
                                .expect("parent exists")
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panics"))
            .collect()
    };
    let mut unique = created.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), created.len(), "no duplicate sequence names");
    assert_eq!(created.len(), 800);
}

#[test]
fn warehouse_concurrent_writers_and_readers() {
    let wh = Arc::new(Warehouse::with_block_capacity(4096));
    // Writers create disjoint files while readers scan whatever exists.
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let wh = Arc::clone(&wh);
            thread::spawn(move || {
                for f in 0..20 {
                    let path = WhPath::parse(&format!("/logs/t{t}/file-{f}")).unwrap();
                    let mut w = wh.create(&path).expect("distinct paths");
                    for r in 0..200 {
                        w.append_record(format!("t{t}-f{f}-r{r}").as_bytes());
                    }
                    w.finish().expect("available");
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let wh = Arc::clone(&wh);
            thread::spawn(move || {
                let mut seen = 0u64;
                for _ in 0..50 {
                    let root = WhPath::parse("/logs").unwrap();
                    if !wh.exists(&root) {
                        continue;
                    }
                    let Ok(files) = wh.list_files_recursive(&root) else {
                        continue;
                    };
                    for f in files {
                        // Files are atomic: a visible file is fully readable.
                        let records = wh.open(&f).expect("visible implies complete");
                        seen += records.read_all().expect("no torn reads").len() as u64;
                    }
                }
                seen
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writers never panic");
    }
    for r in readers {
        r.join().expect("readers never panic");
    }
    // Final state: exactly the written records.
    let total: u64 = wh
        .list_files_recursive(&WhPath::parse("/logs").unwrap())
        .unwrap()
        .iter()
        .map(|f| wh.file_meta(f).unwrap().records)
        .sum();
    assert_eq!(total, 4 * 20 * 200);
}

#[test]
fn scribe_network_delivery_from_many_threads() {
    let coord = CoordService::new();
    let net = unified_logging::scribe::Network::new();
    let mut agg = unified_logging::scribe::Aggregator::spawn(&coord, &net, "dc0", Warehouse::new());
    let endpoint = agg.endpoint().to_string();

    let senders: Vec<_> = (0..8)
        .map(|t| {
            let net = net.clone();
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                for i in 0..500 {
                    net.send(
                        &endpoint,
                        LogEntry::new("client_events", format!("t{t}-{i}").into_bytes()),
                    )
                    .expect("aggregator is up");
                }
            })
        })
        .collect();
    for s in senders {
        s.join().expect("no panics");
    }
    assert_eq!(agg.process(), 8 * 500);
    let report = agg.flush(0);
    assert_eq!(report.flushed_records, 8 * 500);
}
